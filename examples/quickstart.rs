//! Quickstart: stand up a `Gateway`, replay a human and a robot through
//! its one entry point, and read the decisions.
//!
//! Run with `cargo run --example quickstart`.

use botwall::gateway::{Decision, Gateway, Origin, PendingServe};
use botwall::http::request::ClientIp;
use botwall::http::{Method, Request};
use botwall::sessions::SimTime;

const HTML: &str = "<html><head><title>demo</title></head><body><p>hello</p></body></html>";

/// Every exchange — page, probe, or beacon — goes through the same door.
/// The origin closure runs with no gateway lock held (a slow origin
/// stalls only its own request); `handle_deferred` below shows the same
/// two phases split apart.
fn fetch(gw: &Gateway, ip: u32, uri: &str, ua: &str, at_secs: u64) -> Decision {
    let req = Request::builder(Method::Get, uri)
        .header("User-Agent", ua)
        .client(ClientIp::new(ip))
        .build()
        .expect("valid uri");
    gw.handle_with(&req, SimTime::from_secs(at_secs), |req| {
        // The origin behind the gateway: one static page at /index.html.
        if req.uri().path() == "/index.html" {
            Origin::Page(HTML.to_string())
        } else {
            Origin::NotFound
        }
    })
}

fn main() {
    let gw = Gateway::builder().seed(2006).build();
    let ua = "Mozilla/5.0 (Windows; U) Firefox/1.5";
    let page = "http://www.example.com/index.html";

    // Client 1 (a human) fetches the page; the gateway rewrites it in
    // flight, planting the probes.
    let Decision::Serve { body, manifest, .. } = fetch(&gw, 1, page, ua, 0) else {
        panic!("fresh sessions are served");
    };
    let human_probes = manifest.expect("page was instrumented");
    let rewritten = body.expect("page body");
    println!(
        "instrumented page grew by {} bytes",
        human_probes.html_overhead
    );
    println!(
        "injected handler: {}",
        &rewritten[rewritten.find("onmousemove").unwrap()..]
            .chars()
            .take(40)
            .collect::<String>()
    );

    // The human's browser fetches the CSS probe, runs the script, and the
    // user moves the mouse — firing the keyed beacon.
    let css = human_probes.css_probe.as_ref().unwrap().to_string();
    fetch(&gw, 1, &css, ua, 1);
    let beacon = human_probes.mouse_beacon.as_ref().unwrap().to_string();
    let verdict = fetch(&gw, 1, &beacon, ua, 3).verdict();
    println!("\nhuman session verdict:  {verdict:?}");

    // Client 2 (a robot) fetches the page, scans the script, and blindly
    // fetches a beacon-looking URL — picking a decoy.
    let Decision::Serve { manifest, .. } = fetch(&gw, 2, page, ua, 0) else {
        panic!("undecided sessions are served");
    };
    let robot_probes = manifest.expect("page was instrumented");
    let decoy = robot_probes.decoy_beacons[0].to_string();
    let verdict = fetch(&gw, 2, &decoy, ua, 1).verdict();
    println!("robot session verdict:  {verdict:?}");

    // Flush everything and show the gateway's view of the deployment.
    let completed = gw.drain();
    println!("\ncompleted sessions:");
    for cs in &completed {
        println!(
            "  {}  label={:?} reason={:?}",
            cs.session.key(),
            cs.label,
            cs.reason
        );
    }
    let stats = gw.stats();
    println!(
        "\ngateway stats: {} requests ({} probe), {} bytes ({} instrumentation)",
        stats.requests, stats.probe_requests, stats.total_bytes, stats.instrumentation_bytes
    );

    // The same request path, split for async/executor embedders: gate
    // now, fetch the origin whenever (no lock is held while the token
    // is outstanding), commit later.
    let gw = Gateway::builder().seed(2006).build();
    let req = Request::builder(Method::Get, page)
        .header("User-Agent", ua)
        .client(ClientIp::new(3))
        .build()
        .expect("valid uri");
    match gw.handle_deferred(&req, SimTime::ZERO) {
        PendingServe::AwaitingOrigin(pending) => {
            // ...origin fetch happens here, on any thread...
            let d = gw.complete(pending, Origin::Page(HTML.to_string()), SimTime::ZERO);
            println!("\ndeferred serve: {:?}", d.status());
        }
        PendingServe::Ready(d) => println!("\ndecided without the origin: {:?}", d.status()),
    }
}
