//! Quickstart: instrument a page, replay a human and a robot against the
//! detector, and read the verdicts.
//!
//! Run with `cargo run --example quickstart`.

use botwall::detect::{Detector, DetectorConfig, Verdict};
use botwall_http::request::ClientIp;
use botwall_http::{Method, Request, Response, StatusCode, Uri};
use botwall_instrument::{InstrumentConfig, Instrumenter};
use botwall_sessions::SimTime;

fn fetch(
    ins: &mut Instrumenter,
    det: &mut Detector,
    ip: u32,
    uri: &str,
    ua: &str,
    at_secs: u64,
) -> Verdict {
    let req = Request::builder(Method::Get, uri)
        .header("User-Agent", ua)
        .client(ClientIp::new(ip))
        .build()
        .expect("valid uri");
    let now = SimTime::from_secs(at_secs);
    let classified = ins.classify(&req, now);
    let response = ins
        .respond(&classified)
        .unwrap_or_else(|| Response::empty(StatusCode::OK));
    det.observe(&req, &response, &classified, now).verdict
}

fn main() {
    let mut ins = Instrumenter::new(InstrumentConfig::default(), 2006);
    let mut det = Detector::new(DetectorConfig::default());

    // The server rewrites a page on its way to client 1 (a human) and
    // client 2 (a robot).
    let page: Uri = "http://www.example.com/index.html".parse().unwrap();
    let html = "<html><head><title>demo</title></head><body><p>hello</p></body></html>";
    let (rewritten, human_probes) =
        ins.instrument_page(html, &page, ClientIp::new(1), SimTime::ZERO);
    let (_, robot_probes) = ins.instrument_page(html, &page, ClientIp::new(2), SimTime::ZERO);
    println!(
        "instrumented page grew by {} bytes",
        human_probes.html_overhead
    );
    println!(
        "injected handler: {}",
        &rewritten[rewritten.find("onmousemove").unwrap()..]
            .chars()
            .take(40)
            .collect::<String>()
    );

    // The human's browser fetches the CSS probe, runs the script, and the
    // user moves the mouse — firing the keyed beacon.
    let ua = "Mozilla/5.0 (Windows; U) Firefox/1.5";
    fetch(&mut ins, &mut det, 1, &page.to_string(), ua, 0);
    let css = human_probes.css_probe.as_ref().unwrap().to_string();
    fetch(&mut ins, &mut det, 1, &css, ua, 1);
    let beacon = human_probes.mouse_beacon.as_ref().unwrap().to_string();
    let verdict = fetch(&mut ins, &mut det, 1, &beacon, ua, 3);
    println!("\nhuman session verdict:  {verdict:?}");

    // The robot scans the script, blindly fetches a beacon-looking URL —
    // and picks a decoy.
    let decoy = robot_probes.decoy_beacons[0].to_string();
    fetch(&mut ins, &mut det, 2, &page.to_string(), ua, 0);
    let verdict = fetch(&mut ins, &mut det, 2, &decoy, ua, 1);
    println!("robot session verdict:  {verdict:?}");
}
