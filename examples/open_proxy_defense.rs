//! The CoDeeN scenario: a mixed population of humans and robots hits an
//! open-proxy network with detection + enforcement deployed; the run
//! reports who got classified as what, how much abuse was squelched, and
//! the instrumentation bandwidth bill.
//!
//! Run with `cargo run --release --example open_proxy_defense`.

use botwall_agents::Population;
use botwall_codeen::network::{Network, NetworkConfig};
use botwall_codeen::node::Deployment;
use botwall_core::Label;
use botwall_webgraph::{SiteConfig, WebConfig};
use std::collections::BTreeMap;

fn main() {
    let config = NetworkConfig {
        nodes: 6,
        web: WebConfig {
            sites: 6,
            site: SiteConfig {
                pages: 30,
                ..SiteConfig::default()
            },
        },
        deployment: Deployment::full(),
        sessions: 400,
        session_gap_ms: 400,
    };
    let report = Network::run(&config, &Population::table1(), 7);

    let mut per_kind: BTreeMap<&'static str, (u32, u32)> = BTreeMap::new();
    for cs in &report.completed {
        if !cs.classifiable {
            continue;
        }
        let Some(kind) = report.truth_of(cs.session.key()) else {
            continue;
        };
        let entry = per_kind.entry(kind.name()).or_default();
        entry.1 += 1;
        let truth = if kind.is_human() {
            Label::Human
        } else {
            Label::Robot
        };
        if cs.label == truth {
            entry.0 += 1;
        }
    }
    println!(
        "{:<20}{:>10}{:>12}",
        "ground truth", "sessions", "correct %"
    );
    for (name, (right, total)) in &per_kind {
        println!(
            "{:<20}{:>10}{:>11.1}%",
            name,
            total,
            *right as f64 * 100.0 / *total as f64
        );
    }
    println!(
        "\nrequests: {} allowed, {} throttled, {} blocked",
        report.stats.allowed, report.stats.throttled, report.stats.blocked
    );
    let delivered: u64 = report.summaries.iter().map(|s| s.abusive_delivered()).sum();
    println!("abusive requests delivered: {delivered}");
    println!(
        "instrumentation overhead: {:.2}% of {} total bytes",
        report.bandwidth.overhead_pct(),
        report.bandwidth.total_bytes
    );
}
