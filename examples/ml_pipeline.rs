//! The §4.2 machine-learning pipeline end to end: generate a labelled
//! corpus, train AdaBoost on the Table-2 features, inspect accuracy and
//! the attribute-importance ranking, then plug the model into the staged
//! pipeline as the boundary-case classifier.
//!
//! Run with `cargo run --release --example ml_pipeline`.

use botwall_bench::{build_ml_corpus, CorpusConfig};
use botwall_core::staged::{StagedConfig, StagedPipeline};
use botwall_ml::{evaluate, AdaBoostBoundary, AdaBoostConfig, AdaBoostModel};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (corpus, (humans, robots)) = build_ml_corpus(&CorpusConfig {
        sessions: 400,
        ..CorpusConfig::default()
    });
    println!("corpus: {humans} human / {robots} robot sessions");

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let (train, test) = corpus.split_half(&mut rng);
    let train_set = train.features_at(160, 1);
    let test_set = test.features_at(160, 1);

    let model = AdaBoostModel::train(&train_set, &AdaBoostConfig::default());
    let matrix = evaluate(&model, &test_set);
    println!("\ntest-set confusion:\n{matrix}");

    println!("\nattribute importance:");
    for (attr, w) in model.importance().iter().take(5) {
        println!("  {:<20} {:.3}", attr.name(), w);
    }

    // The trained model becomes the §4.1 boundary stage.
    let pipeline = StagedPipeline::new(StagedConfig::default(), AdaBoostBoundary::new(model, 20));
    let _ = &pipeline; // Deployed inside a node; see `staged` bench bin.
    println!("\nmodel wired into the staged pipeline (fast paths first, ML on boundary cases)");
}
