//! Protecting a single Web site (not a proxy): the paper argues the
//! techniques "can be applied both to individual Web sites and to large
//! organizations". This example puts one `Gateway` in front of one origin
//! site and replays a human, a no-JS human, a blind crawler, and a smart
//! bot through it — every exchange through `Gateway::handle_with`.
//!
//! Run with `cargo run --release --example site_protection`.

use botwall::agents::robots::crawler::CrawlerConfig;
use botwall::agents::robots::smart_bot::{SmartBot, SmartBotConfig};
use botwall::agents::robots::CrawlerBot;
use botwall::agents::world::{ClientWorld, FetchOutcome, FetchSpec, PageView};
use botwall::agents::{Agent, BrowserProfile, HumanAgent, HumanConfig};
use botwall::captcha::Challenge;
use botwall::gateway::{Decision, Gateway, Origin};
use botwall::http::request::ClientIp;
use botwall::http::{BrowserFamily, Method, Request, Response, StatusCode, Uri};
use botwall::sessions::SimTime;
use botwall::webgraph::{render, Site, SiteConfig, Web, WebConfig};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The agent-facing world: one origin site with a gateway in front.
/// All the world does is build requests and adapt `Decision`s — the
/// instrumentation, detection, and policy all live inside the gateway.
/// The `resolve` origin hook runs between the gateway's two critical
/// sections with no lock held, so a slow site would stall only its own
/// request, never the sessions sharing its tracker shard.
struct ProtectedSite<'a> {
    gateway: &'a Gateway,
    web: &'a Web,
    ip: ClientIp,
    user_agent: String,
    entry: Uri,
    now: SimTime,
    captcha_offered: bool,
    served: u64,
    throttled: u64,
    blocked: u64,
}

impl ProtectedSite<'_> {
    /// Resolves origin content for allowed ordinary requests: pages are
    /// handed to the gateway as HTML (it instruments them), assets come
    /// back whole.
    fn resolve(web: &Web, request: &Request) -> (Origin, Vec<Uri>, Option<Uri>) {
        let uri = request.uri();
        let Some(site) = web.site_for(uri) else {
            return (
                Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                Vec::new(),
                None,
            );
        };
        if let Some(page) = site.page_by_path(uri.path()) {
            let links = page
                .links
                .iter()
                .filter_map(|id| site.page(*id))
                .map(|p| Uri::absolute(site.host(), p.path.clone()))
                .collect();
            let cgi = page
                .cgi_endpoint
                .as_ref()
                .map(|c| Uri::absolute(site.host(), c.clone()));
            return (Origin::Page(render::render_page(site, page)), links, cgi);
        }
        if let Some((_, body)) = render::render_asset(site, uri.path()) {
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "application/octet-stream")
                .body_bytes(body)
                .build();
            return (Origin::Response(resp), Vec::new(), None);
        }
        (Origin::NotFound, Vec::new(), None)
    }
}

impl ClientWorld for ProtectedSite<'_> {
    fn fetch(&mut self, spec: FetchSpec) -> FetchOutcome {
        self.now += 40;
        let mut b = Request::builder(spec.method.clone(), spec.uri.to_string())
            .header("User-Agent", self.user_agent.clone())
            .client(self.ip);
        if let Some(r) = &spec.referer {
            b = b.header("Referer", r.clone());
        }
        if spec.method == Method::Post && !spec.body.is_empty() {
            b = b.body_bytes(spec.body.clone());
        }
        let Ok(request) = b.build() else {
            return FetchOutcome::default();
        };
        let web = self.web;
        let mut links = Vec::new();
        let mut cgi = None;
        let decision = self.gateway.handle_with(&request, self.now, |req| {
            let (origin, l, c) = Self::resolve(web, req);
            links = l;
            cgi = c;
            origin
        });
        match &decision {
            Decision::Serve { .. } => self.served += 1,
            Decision::Throttle => self.throttled += 1,
            _ => self.blocked += 1,
        }
        match decision {
            Decision::Serve {
                response,
                body,
                manifest,
                ..
            } => FetchOutcome {
                status: response.status(),
                body_len: response.body().len(),
                page: body.map(|html| PageView {
                    links,
                    embedded: Vec::new(),
                    cgi,
                    manifest,
                    html,
                }),
            },
            rejected => FetchOutcome {
                status: rejected.status(),
                body_len: 0,
                page: None,
            },
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sleep(&mut self, ms: u64) {
        self.now += ms;
    }

    fn client_ip(&self) -> ClientIp {
        self.ip
    }

    fn entry_point(&self) -> Uri {
        self.entry.clone()
    }

    fn offer_captcha(&mut self) -> Option<Challenge> {
        if self.captcha_offered {
            return None;
        }
        self.captcha_offered = true;
        self.gateway.offer_captcha()
    }

    fn answer_captcha(&mut self, id: u64, answer: &str) -> bool {
        let key = botwall::sessions::SessionKey::new(self.ip, self.user_agent.clone());
        self.gateway.verify_captcha(&key, id, answer, self.now)
    }
}

fn run(gateway: &Gateway, web: &Web, site: &Site, name: &str, agent: &mut dyn Agent, ip: u32) {
    let mut world = ProtectedSite {
        gateway,
        web,
        ip: ClientIp::new(ip),
        user_agent: agent.user_agent(),
        entry: Uri::absolute(site.host(), "/index.html"),
        now: SimTime::ZERO,
        captcha_offered: false,
        served: 0,
        throttled: 0,
        blocked: 0,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(ip as u64);
    agent.run_session(&mut world, &mut rng);
    let key = botwall::sessions::SessionKey::new(world.ip, world.user_agent.clone());
    println!(
        "{:<18} served={:<4} throttled={:<3} blocked={:<3} online verdict: {:?}",
        name,
        world.served,
        world.throttled,
        world.blocked,
        world.gateway.verdict(&key),
    );
}

fn main() {
    let web = Web::generate(
        &WebConfig {
            sites: 1,
            site: SiteConfig {
                pages: 30,
                ..SiteConfig::default()
            },
        },
        2006,
    );
    let site = web.sites().next().expect("one site");
    let gateway = Gateway::builder().seed(42).build();

    println!("one gateway in front of http://{}/ :\n", site.host());

    let mut human = HumanAgent::new(
        BrowserProfile::standard(BrowserFamily::Firefox),
        HumanConfig {
            pages: (6, 6),
            think_time_ms: (50, 100),
            mouse_move_per_page: 0.8,
            ..HumanConfig::default()
        },
    );
    run(&gateway, &web, site, "human/firefox", &mut human, 1);

    let mut no_js = HumanAgent::new(
        BrowserProfile::js_disabled(BrowserFamily::Opera),
        HumanConfig {
            pages: (6, 6),
            think_time_ms: (50, 100),
            ..HumanConfig::default()
        },
    );
    run(&gateway, &web, site, "human/no-js", &mut no_js, 2);

    let mut crawler = CrawlerBot::new(CrawlerConfig::default());
    run(&gateway, &web, site, "blind crawler", &mut crawler, 3);

    let mut smart = SmartBot::new(SmartBotConfig {
        scan_beacons: true,
        ..SmartBotConfig::default()
    });
    run(&gateway, &web, site, "smart bot", &mut smart, 4);

    // Flush every session: the batch set-algebra pass labels them.
    println!("\nfinal labels at flush:");
    for cs in gateway.drain() {
        println!(
            "  {}  label={:?} reason={:?} ({} requests)",
            cs.session.key(),
            cs.label,
            cs.reason,
            cs.session.request_count(),
        );
    }
    let stats = gateway.stats();
    println!(
        "\ngateway stats: {} requests, {} served, {} throttled, {} blocked; \
         instrumentation {:.2}% of {} bytes",
        stats.requests,
        stats.served,
        stats.throttled,
        stats.blocked,
        stats.instrumentation_bytes as f64 * 100.0 / stats.total_bytes.max(1) as f64,
        stats.total_bytes,
    );
    println!("\nreading: humans fire css+js+mouse and go Human; the no-JS human");
    println!("stays undecided online and flushes Human via the CSS term of the");
    println!("set algebra; crawlers and smart bots flush Robot (hidden links,");
    println!("decoys, or JS-without-mouse).");
}
