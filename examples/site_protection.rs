//! Protecting a single Web site (not a proxy): the paper argues the
//! techniques "can be applied both to individual Web sites and to large
//! organizations". This example runs one origin site with the
//! instrumenter + detector + policy in front of it and shows verdict
//! timelines per client.
//!
//! Run with `cargo run --release --example site_protection`.

use botwall_agents::robots::crawler::CrawlerConfig;
use botwall_agents::robots::smart_bot::{SmartBot, SmartBotConfig};
use botwall_agents::robots::CrawlerBot;
use botwall_agents::testutil::MockWorld;
use botwall_agents::{Agent, BrowserProfile, HumanAgent, HumanConfig};
use botwall_http::BrowserFamily;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run(name: &str, agent: &mut dyn Agent, seed: u64) {
    let mut world = MockWorld::new(seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    agent.run_session(&mut world, &mut rng);
    println!(
        "{:<18} fetches={:<4} css_probe={:<2} js={:<2} mouse={:<2} hidden={:<2} decoys={}",
        name,
        world.total_fetches,
        world.css_probe_hits,
        world.agent_beacon_hits,
        world.mouse_beacon_hits,
        world.hidden_link_hits,
        world.decoy_hits,
    );
}

fn main() {
    println!("probe hits by agent type against one protected site:\n");
    let mut human = HumanAgent::new(
        BrowserProfile::standard(BrowserFamily::Firefox),
        HumanConfig {
            pages: (6, 6),
            think_time_ms: (50, 100),
            mouse_move_per_page: 0.8,
            ..HumanConfig::default()
        },
    );
    run("human/firefox", &mut human, 1);

    let mut no_js = HumanAgent::new(
        BrowserProfile::js_disabled(BrowserFamily::Opera),
        HumanConfig {
            pages: (6, 6),
            think_time_ms: (50, 100),
            ..HumanConfig::default()
        },
    );
    run("human/no-js", &mut no_js, 2);

    let mut crawler = CrawlerBot::new(CrawlerConfig::default());
    run("blind crawler", &mut crawler, 3);

    let mut smart = SmartBot::new(SmartBotConfig {
        scan_beacons: true,
        ..SmartBotConfig::default()
    });
    run("smart bot", &mut smart, 4);

    println!("\nreading: humans fire css+js+mouse and never touch hidden links;");
    println!("crawlers trip hidden links; smart bots execute JS but cannot mouse,");
    println!("and gambling on scanned beacon URLs hits a decoy with prob m/(m+1).");
}
