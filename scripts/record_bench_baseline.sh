#!/usr/bin/env bash
# Runs the criterion benches and collects their results into
# BENCH_baseline.json at the repo root. The vendored criterion shim emits
# one JSON object per benchmark to $CRITERION_SHIM_JSON; this script wraps
# the stream into a JSON array.
#
# Usage: scripts/record_bench_baseline.sh [extra cargo bench args...]
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_baseline.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

CRITERION_SHIM_JSON="$tmp" cargo bench -p botwall-bench "$@"

if [[ ! -s "$tmp" ]]; then
    echo "error: no benchmark records were emitted" >&2
    exit 1
fi

{
    echo '['
    sed '$!s/$/,/' "$tmp"
    echo ']'
} > "$out"

echo "wrote $out ($(grep -c mean_ns "$out") benchmarks)"
