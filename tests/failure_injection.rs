//! Failure injection: malformed wire input, replayed and forged beacons,
//! token-table pressure, and hostile HTML — the detector must degrade
//! safely, never panic, and keep robots classified as robots.

use botwall::detect::{Detector, DetectorConfig, Reason, Verdict};
use botwall::http::request::ClientIp;
use botwall::http::{wire, HttpError, Method, Request, Response, StatusCode, Uri};
use botwall::instrument::{Classified, InstrumentConfig, Instrumenter, KeyOutcome};
use botwall::sessions::SimTime;

fn page() -> Uri {
    "http://victim.example/index.html".parse().unwrap()
}

const HTML: &str = "<html><head></head><body><p>x</p></body></html>";

#[test]
fn malformed_wire_input_is_rejected_not_panicked() {
    let cases: &[&[u8]] = &[
        b"",
        b"\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\nshort",
        b"HTTP/1.1 9000 Nope\r\n\r\n",
        &[0xff, 0xfe, 0x00, 0x01, 0x02][..],
    ];
    for raw in cases {
        let req = wire::parse_request(raw, ClientIp::new(1));
        assert!(req.is_err(), "accepted {raw:?}");
    }
    // Specific error taxonomy spot checks.
    assert!(matches!(
        wire::parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab",
            ClientIp::new(1)
        ),
        Err(HttpError::TruncatedBody { .. })
    ));
}

#[test]
fn replayed_beacon_is_robot_evidence() {
    let mut ins = Instrumenter::new(InstrumentConfig::default(), 3);
    let det = Detector::new(DetectorConfig::default());
    let client = ClientIp::new(10);
    let (_, m) = ins.instrument_page(HTML, &page(), client, SimTime::ZERO);
    let beacon = m.mouse_beacon.unwrap();
    let req = Request::builder(Method::Get, beacon.to_string())
        .header("User-Agent", "x")
        .client(client)
        .build()
        .unwrap();
    // First redemption: human.
    let c1 = ins.classify(&req, SimTime::from_secs(1));
    det.observe(
        &req,
        &Response::empty(StatusCode::OK),
        &c1,
        SimTime::from_secs(1),
    );
    // Replay: the verdict flips to robot and stays there.
    let c2 = ins.classify(&req, SimTime::from_secs(2));
    assert!(matches!(
        c2,
        Classified::MouseBeacon {
            outcome: KeyOutcome::Replay,
            ..
        }
    ));
    let out = det.observe(
        &req,
        &Response::empty(StatusCode::OK),
        &c2,
        SimTime::from_secs(2),
    );
    assert_eq!(out.verdict, Verdict::Robot(Reason::BeaconAbuse));
}

#[test]
fn guessed_keys_never_validate() {
    let mut ins = Instrumenter::new(InstrumentConfig::default(), 4);
    let client = ClientIp::new(11);
    ins.instrument_page(HTML, &page(), client, SimTime::ZERO);
    // An attacker fabricates beacon-shaped URLs with random keys.
    for i in 0..100u128 {
        let forged = format!("http://victim.example/{:032x}.jpg", 0xDEAD_0000 + i);
        let req = Request::builder(Method::Get, forged)
            .client(client)
            .build()
            .unwrap();
        match ins.classify(&req, SimTime::from_secs(1)) {
            Classified::MouseBeacon { outcome, .. } => {
                assert_ne!(outcome, KeyOutcome::Valid, "guessed key validated")
            }
            other => panic!("beacon-shaped URL misclassified: {other:?}"),
        }
    }
}

#[test]
fn token_table_pressure_stays_bounded() {
    let mut config = InstrumentConfig::default();
    config.token_table.max_clients = 100;
    config.token_table.max_entries_per_ip = 4;
    let mut ins = Instrumenter::new(config, 5);
    // 10,000 clients × 8 pages each: far beyond capacity.
    for c in 0..10_000u32 {
        for _ in 0..8 {
            ins.instrument_page(
                HTML,
                &page(),
                ClientIp::new(c),
                SimTime::from_secs(c as u64),
            );
        }
    }
    assert!(ins.tokens().client_count() <= 100);
}

#[test]
fn hostile_html_does_not_break_rewriting() {
    let mut ins = Instrumenter::new(InstrumentConfig::default(), 6);
    let cases = [
        "",
        "<",
        "<body",
        "<BODY><BODY><BODY>",
        "</body></head><head><body>",
        "plain text, no markup at all",
        "<html><head><body>unclosed everything",
        &"<p>x</p>".repeat(10_000),
    ];
    for html in cases {
        let (out, manifest) = ins.instrument_page(html, &page(), ClientIp::new(1), SimTime::ZERO);
        // Whatever the input, the probes must be present in the output.
        assert!(out.contains("stylesheet"), "css probe missing for {html:?}");
        assert!(manifest.mouse_beacon.is_some());
    }
}

#[test]
fn detector_tolerates_responseless_exchanges() {
    use botwall::sessions::{SessionTracker, TrackerConfig};
    let t = SessionTracker::new(TrackerConfig::default());
    let req = Request::builder(Method::Get, "http://h/x")
        .client(ClientIp::new(1))
        .build()
        .unwrap();
    let key = t.observe_opt(&req, None, SimTime::ZERO);
    let s = t.get(&key).unwrap();
    assert_eq!(s.records()[0].status_class, 0);
}

#[test]
fn cross_client_beacon_theft_fails() {
    let mut ins = Instrumenter::new(InstrumentConfig::default(), 7);
    let victim = ClientIp::new(20);
    let thief = ClientIp::new(21);
    let (_, m) = ins.instrument_page(HTML, &page(), victim, SimTime::ZERO);
    let stolen = m.mouse_beacon.unwrap();
    let req = Request::builder(Method::Get, stolen.to_string())
        .client(thief)
        .build()
        .unwrap();
    match ins.classify(&req, SimTime::from_secs(1)) {
        Classified::MouseBeacon { outcome, .. } => {
            assert_eq!(outcome, KeyOutcome::Unknown)
        }
        other => panic!("{other:?}"),
    }
}
