//! The gateway's public API contract: serde bounds on the decision and
//! config types, and the three end-to-end flows the paper's deployment
//! story rests on — a human proving themselves by mouse activity, a
//! crawler walking into enforcement, and a mandatory-challenge pass.

use botwall::captcha::ServingPolicy;
use botwall::detect::{Label, Reason, Verdict};
use botwall::gateway::{Decision, Gateway, GatewayConfig, Origin};
use botwall::http::request::ClientIp;
use botwall::http::{Method, Request, StatusCode};
use botwall::sessions::{SessionKey, SimTime};

const HTML: &str = "<html><head><title>t</title></head><body><p>x</p></body></html>";

fn req(ip: u32, uri: &str, ua: &str) -> Request {
    Request::builder(Method::Get, uri)
        .header("User-Agent", ua)
        .client(ClientIp::new(ip))
        .build()
        .unwrap()
}

fn page(gw: &mut Gateway, ip: u32, uri: &str, ua: &str, at: SimTime) -> Decision {
    gw.handle_with(&req(ip, uri, ua), at, |_| Origin::Page(HTML.into()))
}

/// `Decision` and `GatewayConfig` round-trip through serde.
///
/// The vendored serde shim is marker-only (no serializer exists in the
/// offline workspace), so the round trip degenerates to compile-time
/// bound checks plus a value-level clone/eq trip for the config; when
/// the real serde lands (ROADMAP: swap shims for crates), these bounds
/// are what guarantee `serde_json::from_str(&serde_json::to_string(x)?)`
/// compiles for both types.
#[test]
fn decision_and_config_satisfy_serde_round_trip_bounds() {
    fn round_trippable<T: serde::Serialize + serde::DeserializeOwned>() {}
    round_trippable::<Decision>();
    round_trippable::<GatewayConfig>();
    round_trippable::<botwall::gateway::GatewayStats>();

    // Value-level round trip for the config (PartialEq + Clone).
    let config = GatewayConfig {
        seed: 1234,
        enforcement: false,
        captcha: ServingPolicy::MandatoryUnderAttack,
        ..GatewayConfig::default()
    };
    let restored = config.clone();
    assert_eq!(config, restored);
    let gw = Gateway::builder().config(config.clone()).build();
    assert_eq!(gw.config(), &config);

    // Value-level round trip for a served decision.
    let mut gw = Gateway::builder().seed(5).build();
    let d = page(
        &mut gw,
        1,
        "http://h.example/index.html",
        "Mozilla/5.0",
        SimTime::ZERO,
    );
    assert_eq!(d.clone(), d);
}

/// A human: page fetch → CSS probe → mouse beacon ⇒ `Serve` with a
/// `Human(MouseActivity)` verdict online and a `Human` label at flush.
#[test]
fn human_mouse_flow_ends_human() {
    let mut gw = Gateway::builder().seed(11).build();
    let ua = "Mozilla/5.0 (Windows) Firefox/1.5";
    let d = page(&mut gw, 1, "http://h.example/index.html", ua, SimTime::ZERO);
    let Decision::Serve {
        manifest, verdict, ..
    } = d
    else {
        panic!("fresh session must be served: {d:?}");
    };
    assert_eq!(verdict, Verdict::Undecided);
    let manifest = manifest.expect("page was instrumented");

    // Standard browser behaviour: fetch the CSS probe.
    let css = manifest.css_probe.unwrap();
    let d = gw.handle(&req(1, &css.to_string(), ua), SimTime::from_secs(1));
    assert!(d.is_serve());

    // The user moves the mouse: the keyed beacon fires.
    let beacon = manifest.mouse_beacon.unwrap();
    let d = gw.handle(&req(1, &beacon.to_string(), ua), SimTime::from_secs(3));
    match d {
        Decision::Serve { verdict, probe, .. } => {
            assert_eq!(verdict, Verdict::Human(Reason::MouseActivity));
            assert!(probe, "beacon fetches are instrumentation traffic");
        }
        other => panic!("beacon fetch must serve: {other:?}"),
    }

    let done = gw.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].label, Label::Human);
    assert_eq!(done[0].reason, Reason::MouseActivity);
}

/// A crawler: follows the hidden link (hard robot evidence), keeps
/// hammering, and the policy engine blocks it.
#[test]
fn crawler_hidden_link_flow_ends_blocked() {
    let mut gw = Gateway::builder().seed(12).build();
    let ua = "crawler/2.0";
    let d = page(&mut gw, 2, "http://h.example/index.html", ua, SimTime::ZERO);
    let Decision::Serve { manifest, .. } = d else {
        panic!("{d:?}");
    };
    // A blind crawler scans the HTML and follows the invisible link.
    let hidden = manifest.unwrap().hidden_link.unwrap();
    let d = gw.handle(&req(2, &hidden.to_string(), ua), SimTime::from_secs(1));
    assert_eq!(
        d.verdict(),
        Some(Verdict::Robot(Reason::HiddenLink)),
        "hard evidence decides on the fast path"
    );

    // It keeps crawling at robot pace; the rate limit and behavioural
    // thresholds take over — eventually every request is a hard 403.
    let mut saw_block = false;
    for i in 0..80u64 {
        let d = page(
            &mut gw,
            2,
            &format!("http://h.example/p{i}.html"),
            ua,
            SimTime::from_secs(2) + i * 100,
        );
        if matches!(d, Decision::Block) {
            saw_block = true;
            break;
        }
    }
    assert!(saw_block, "a hidden-link robot must end up blocked");
    assert!(gw.stats().blocked > 0);
    let done = gw.drain();
    assert_eq!(done[0].label, Label::Robot);
    assert_eq!(done[0].reason, Reason::HiddenLink);
}

/// Mandatory-challenge mode: issue → verify → `CaptchaPassed`, after
/// which the session is served normally.
#[test]
fn challenge_flow_issue_verify_captcha_passed() {
    let gw = Gateway::builder()
        .seed(13)
        .captcha(ServingPolicy::MandatoryUnderAttack)
        .build();
    gw.set_under_attack(true);
    let ua = "Mozilla/5.0";
    let r = req(3, "http://h.example/index.html", ua);
    let key = SessionKey::of(&r);

    // Issue: ordinary traffic from an unproven session is challenged.
    let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
    let Decision::Challenge(challenge) = d else {
        panic!("mandatory mode must challenge: {d:?}");
    };
    assert!(d_status_is_403(&challenge));

    // A wrong answer does not unlock anything.
    assert!(!gw.verify_captcha(&key, challenge.id, "wrong", SimTime::from_secs(1)));
    assert_eq!(gw.verdict(&key), Verdict::Undecided);

    // Challenges are single-use: re-issue, then verify the right answer.
    let d = gw.handle_with(&r, SimTime::from_secs(2), |_| Origin::Page(HTML.into()));
    let Decision::Challenge(challenge) = d else {
        panic!("still unproven: {d:?}");
    };
    let answer = challenge.answer().to_string();
    assert!(gw.verify_captcha(&key, challenge.id, &answer, SimTime::from_secs(3)));
    assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));

    // Served from here on.
    let d = gw.handle_with(&r, SimTime::from_secs(4), |_| Origin::Page(HTML.into()));
    assert!(d.is_serve(), "{d:?}");
    let stats = gw.stats();
    assert_eq!(stats.challenged, 2);
    assert_eq!(stats.captcha_passed, 1);
    assert_eq!(stats.captcha_failed, 1);

    let done = gw.drain();
    assert_eq!(done[0].label, Label::Human);
    assert_eq!(done[0].reason, Reason::CaptchaPassed);
}

fn d_status_is_403(ch: &botwall::captcha::Challenge) -> bool {
    Decision::Challenge(ch.clone()).status() == StatusCode::FORBIDDEN
}

/// The same traffic through two gateways produces identical decisions
/// and stats — the front door inherits the stack's determinism.
#[test]
fn gateway_is_deterministic() {
    let run = || {
        let mut gw = Gateway::builder().seed(99).build();
        let mut statuses = Vec::new();
        for i in 0..30u32 {
            let ip = 1 + i % 3;
            let d = page(
                &mut gw,
                ip,
                &format!("http://h.example/{}.html", i % 7),
                "Mozilla/5.0",
                SimTime::from_secs(u64::from(i)),
            );
            statuses.push(d.status());
        }
        let labels: Vec<Label> = gw.drain().iter().map(|c| c.label).collect();
        (statuses, labels, gw.stats())
    };
    assert_eq!(run(), run());
}

/// The §4.2 throttle escape hatch, end to end: a robot-paced session is
/// rate limited, but instead of a bare 429 the gateway serves a CAPTCHA;
/// solving it makes the session ground-truth human and lifts the limit.
#[test]
fn throttle_escape_hatch_pass_unthrottles_the_session() {
    let gw = Gateway::builder()
        .seed(41)
        .challenge_on_throttle(true)
        .build();
    assert!(gw.config().challenge_on_throttle);
    let ua = "curl/7.0";
    let mk = |i: u64| req(8, &format!("http://h.example/{i}.html"), ua);
    let key = SessionKey::of(&mk(0));

    // Crawl at 1 req/s with zero browser signals: the no-signal
    // promotion drops the session to the robot allowance, and the first
    // over-limit request comes back as a challenge, not a 429.
    let mut challenge = None;
    for i in 0..60 {
        match gw.handle_with(&mk(i), SimTime::from_secs(i), |_| Origin::Page(HTML.into())) {
            Decision::Challenge(ch) => {
                challenge = Some(ch);
                break;
            }
            Decision::Throttle => panic!("escape hatch must replace the bare 429"),
            _ => {}
        }
    }
    let ch = challenge.expect("robot-paced session must be challenged");
    assert_eq!(gw.stats().throttled, 0);
    assert!(gw.stats().challenged > 0);

    // Pass → ground-truth human → unthrottled from here on.
    let answer = ch.answer().to_string();
    assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(70)));
    assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
    for i in 0..30 {
        let d = gw.handle_with(&mk(100 + i), SimTime::from_secs(71), |_| {
            Origin::Page(HTML.into())
        });
        assert!(d.is_serve(), "passed sessions are never limited: {d:?}");
    }
    let done = gw.drain();
    assert_eq!(done[0].label, Label::Human);
    assert_eq!(done[0].reason, Reason::CaptchaPassed);
}

/// The gateway is `Send + Sync`: one `Arc<Gateway>` takes traffic from
/// several threads, and the ledger still balances.
#[test]
fn shared_gateway_handles_traffic_from_multiple_threads() {
    use std::sync::Arc;
    let gw = Arc::new(Gateway::builder().seed(55).build());
    let handles: Vec<_> = (0..4u32)
        .map(|t| {
            let gw = Arc::clone(&gw);
            std::thread::spawn(move || {
                for i in 0..40u64 {
                    let r = req(
                        100 + t,
                        &format!("http://h.example/{i}.html"),
                        "Mozilla/5.0",
                    );
                    gw.handle_with(&r, SimTime::from_secs(i), |_| Origin::Page(HTML.into()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = gw.stats();
    assert_eq!(stats.requests, 160);
    assert_eq!(
        stats.requests,
        stats.served + stats.throttled + stats.blocked + stats.challenged
    );
    assert_eq!(gw.drain().len(), 4);
}

/// The deferred two-phase surface: `handle_deferred` gates now and
/// returns a `PendingServe` token; the origin fetch happens on a
/// *different thread* (the token is `Send`), and `complete` commits the
/// result back into the session — the integration shape an
/// async/executor-driven embedder uses.
#[test]
fn deferred_pending_serve_crosses_threads_and_commits() {
    use botwall::gateway::PendingServe;
    use std::sync::Arc;
    let gw = Arc::new(Gateway::builder().seed(77).build());
    let r = req(300, "http://h.example/index.html", "Mozilla/5.0");
    let pending = match gw.handle_deferred(&r, SimTime::ZERO) {
        PendingServe::AwaitingOrigin(p) => p,
        PendingServe::Ready(d) => panic!("ordinary first request needs the origin: {d:?}"),
    };
    // Ship the token to a worker thread that "fetches" the origin and
    // commits; no gateway lock is held anywhere in between.
    let worker = {
        let gw = Arc::clone(&gw);
        std::thread::spawn(move || {
            gw.complete(pending, Origin::Page(HTML.into()), SimTime::from_secs(1))
        })
    };
    let d = worker.join().unwrap();
    let Decision::Serve {
        manifest, verdict, ..
    } = d
    else {
        panic!("committed page must serve");
    };
    assert_eq!(verdict, Verdict::Undecided);
    let manifest = manifest.expect("page was instrumented at commit");
    // The instrumentation issued at commit time is live session state:
    // the mouse beacon redeems exactly as in the fused flow.
    let beacon = manifest.mouse_beacon.expect("mouse beacon");
    let d = gw.handle(
        &req(300, &beacon.to_string(), "Mozilla/5.0"),
        SimTime::from_secs(2),
    );
    assert_eq!(d.verdict(), Some(Verdict::Human(Reason::MouseActivity)));
    let stats = gw.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.served, 2);
    let done = gw.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].label, Label::Human);
}
