//! Smoke tests over the experiment harnesses: every paper artifact can be
//! regenerated at reduced scale, with the paper's qualitative shape.

use botwall_bench::{run_decoys, run_figure3, run_figure4, run_staged, run_table1, SEED};

#[test]
fn table1_regenerates() {
    let (table, run) = run_table1(200, SEED);
    assert!(table.total_sessions > 100);
    // The evidence ordering of the paper's Table 1.
    assert!(table.downloaded_css >= table.executed_js);
    assert!(table.executed_js >= table.mouse_movement);
    // Bandwidth books balance.
    assert!(run.bandwidth.instrumentation_bytes < run.bandwidth.total_bytes);
}

#[test]
fn figure3_complaints_collapse() {
    let rows = run_figure3(5.0, SEED);
    assert_eq!(rows.len(), 13);
    let pre: u32 = rows[3..8].iter().map(|r| r.complaints.robot).sum();
    let post: u32 = rows[8..13].iter().map(|r| r.complaints.robot).sum();
    assert!(
        post * 3 < pre.max(3),
        "deployment must collapse complaints: pre={pre} post={post}"
    );
}

#[test]
fn figure4_accuracy_band_and_shape() {
    let result = run_figure4(150, SEED);
    assert_eq!(result.checkpoints.len(), 8);
    let first = result.checkpoints.first().unwrap();
    let last = result.checkpoints.last().unwrap();
    // The paper's band is 91–95%; ours runs slightly cleaner. Accept a
    // broad band but insist on the rising shape and train ≥ test.
    assert!(
        (85.0..=100.0).contains(&last.test_accuracy_pct),
        "test accuracy {last:?}"
    );
    assert!(
        last.test_accuracy_pct + 1.0 >= first.test_accuracy_pct,
        "more requests must not hurt: {first:?} -> {last:?}"
    );
    for row in &result.checkpoints {
        assert!(row.train_accuracy_pct + 1e-9 >= row.test_accuracy_pct - 5.0);
    }
    // Importance is a distribution over the 12 attributes.
    let imp = result.final_model.importance();
    let sum: f64 = imp.iter().map(|(_, v)| v).sum();
    assert!((sum - 1.0).abs() < 1e-6);
}

#[test]
fn decoys_match_the_formula() {
    for row in run_decoys(20_000, SEED) {
        assert!(
            (row.analytic - row.empirical).abs() < 0.03,
            "m={}: {} vs {}",
            row.m,
            row.analytic,
            row.empirical
        );
    }
}

#[test]
fn staged_beats_browser_test_alone() {
    let rows = run_staged(150, SEED);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.strategy == name)
            .expect("strategy present")
            .accuracy_pct
    };
    assert!(get("set-algebra") >= get("browser-test-only"));
    assert!(get("staged+adaboost") >= get("browser-test-only"));
}
