//! The adversary-escalation acceptance line: every modern adversary is
//! detected at least as well as the paper-era polite spider, the
//! automation-leak channel turns headless and fleet traffic into *hard*
//! evidence the spider never produced, and none of it costs a single
//! human false positive.

use botwall_bench::{run_escalation_eval, SEED};

#[test]
fn every_escalated_adversary_beats_the_polite_spider_baseline() {
    let report = run_escalation_eval(300, SEED);

    let baseline = report
        .row("polite-spider")
        .expect("the paper-era baseline ran");
    assert!(baseline.sessions > 0);

    // The new adversaries, each at least as detected as the baseline.
    for kind in ["headless-browser", "llm-agent"] {
        let row = report.row(kind).expect(kind);
        assert!(row.sessions > 0, "{kind} must appear in the mix");
        assert!(
            row.detected_pct >= baseline.detected_pct,
            "{kind} detected {:.1}% < baseline {:.1}%",
            row.detected_pct,
            baseline.detected_pct
        );
    }

    // The fleet has one structural escape: its first member solves the
    // offered CAPTCHA honestly to harvest the `(id, answer)` pair for
    // the cache — the CAPTCHA-farm shape — and a solved CAPTCHA is
    // ground-truth human by the paper's own rules. Every *replaying*
    // member must be caught, so the rate is bounded below by the mix
    // minus that sacrificial solver.
    let fleet = report.row("fleet-bot").expect("fleet ran");
    assert!(fleet.sessions > 0);
    assert!(
        fleet.detected_pct >= 95.0,
        "all but the sacrificial solver must be caught: {:.1}%",
        fleet.detected_pct
    );

    // The polite spider never produced hard evidence — it fetched no
    // decoys, forged no beacons, leaked no automation flags. The leaky
    // headless browser and the replaying fleet must.
    assert_eq!(
        baseline.hard_detected_pct, 0.0,
        "the polite spider is the soft-evidence baseline"
    );
    for kind in ["headless-browser", "fleet-bot"] {
        let row = report.row(kind).expect(kind);
        assert!(
            row.hard_detected_pct > baseline.hard_detected_pct,
            "{kind} must convert to hard evidence: {:.1}%",
            row.hard_detected_pct
        );
    }

    // The stealth variant is the honest evader: it executes the probe
    // path and lies cleanly about its environment, so per the paper's
    // own threat model it evades — the row exists to keep the gap
    // visible, not to assert detection.
    let stealth = report.row("stealth-headless").expect("stealth ran");
    assert!(stealth.sessions > 0);

    // Zero human-FPR regression: the new detectors cost nothing.
    assert!(report.human_sessions > 0);
    assert_eq!(
        report.human_false_positive_pct, 0.0,
        "automation-leak detection must not flag humans"
    );
}
