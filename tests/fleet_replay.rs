//! Fleet-scale replay regression: a coordinated fleet harvests one
//! member's probe URLs, mouse beacon, and solved CAPTCHA pair, then
//! replays them from many other sessions. The defenses under test:
//!
//! - **Beacon key binding**: a mouse-beacon token redeems only in the
//!   session it was issued to — every cross-session replay reads as a
//!   forged beacon (hard robot evidence), never as mouse activity.
//! - **CAPTCHA single-use, service-wide**: a solved `(id, answer)` pair
//!   proves exactly one session human; every other session re-submitting
//!   it fails verification.
//! - **Probe nonce freshness (MAC binding)**: harvested probe URLs stop
//!   classifying as instrumentation after the ~1h freshness window — no
//!   registry remembers them, the MAC itself goes stale.

use botwall::captcha::ServingPolicy;
use botwall::detect::{Label, Reason, Verdict};
use botwall::gateway::{Decision, Gateway, Origin};
use botwall::http::request::ClientIp;
use botwall::http::{Method, Request};
use botwall::sessions::{SessionKey, SimTime};

const HTML: &str = "<html><head><title>f</title></head><body><p>x</p></body></html>";
const FLEET: u32 = 24;

fn req(ip: u32, uri: &str) -> Request {
    Request::builder(Method::Get, uri)
        .header("User-Agent", "Mozilla/5.0 (Windows) Firefox/1.5")
        .client(ClientIp::new(ip))
        .build()
        .unwrap()
}

fn page(gw: &Gateway, ip: u32, uri: &str, at: SimTime) -> Decision {
    gw.handle_with(&req(ip, uri), at, |_| Origin::Page(HTML.into()))
}

/// One member earns a mouse beacon; the rest of the fleet replays it.
/// The harvester stays human, every replayer accrues forged-beacon
/// evidence and ends the run labeled Robot.
#[test]
fn cross_session_beacon_replay_reads_forged_at_fleet_scale() {
    let gw = Gateway::builder().seed(606).build();

    // Member 0 browses and harvests its own (valid) mouse beacon.
    let d = page(&gw, 0, "http://f.example/index.html", SimTime::ZERO);
    let Decision::Serve { manifest, .. } = d else {
        panic!("fresh session must serve: {d:?}");
    };
    let beacon = manifest
        .expect("page was instrumented")
        .mouse_beacon
        .expect("mouse beacon issued");

    // The legitimate redemption, in the issuing session.
    let d = gw.handle(&req(0, &beacon.to_string()), SimTime::from_secs(2));
    assert_eq!(
        d.verdict(),
        Some(Verdict::Human(Reason::MouseActivity)),
        "the issuing session's redemption is mouse activity"
    );

    // Every other fleet member replays the harvested URL from its own
    // session. The token is keyed to member 0: nobody else's redemption
    // may read valid, and each replay is hard robot evidence.
    for ip in 1..FLEET {
        let at = SimTime::from_secs(3) + u64::from(ip) * 500;
        // Establish the session first (a beacon can't be the only
        // exchange a session ever makes — the fleet browses too).
        page(&gw, ip, "http://f.example/index.html", at);
        let d = gw.handle(&req(ip, &beacon.to_string()), at + 100);
        assert_eq!(
            d.verdict(),
            Some(Verdict::Robot(Reason::BeaconAbuse)),
            "fleet member {ip}'s replay must read as beacon abuse"
        );
    }

    let done = gw.drain();
    assert_eq!(done.len(), FLEET as usize);
    for cs in &done {
        let is_harvester = *cs.session.key() == SessionKey::of(&req(0, "http://x/"));
        if is_harvester {
            assert_eq!(cs.label, Label::Human, "the issuing session stays human");
        } else {
            assert_eq!(
                cs.label,
                Label::Robot,
                "replaying member {:?} must end Robot",
                cs.session.key()
            );
            assert_eq!(cs.reason, Reason::BeaconAbuse);
        }
    }
}

/// A solved CAPTCHA pair shared across the fleet: the first submission
/// (the solver's own) passes; the same `(id, answer)` re-submitted from
/// every other session fails, and nobody else is promoted to human.
#[test]
fn shared_captcha_pair_is_single_use_service_wide() {
    let gw = Gateway::builder()
        .seed(607)
        .captcha(ServingPolicy::MandatoryUnderAttack)
        .build();
    gw.set_under_attack(true);

    // Member 0 is challenged and solves honestly.
    let r0 = req(0, "http://f.example/index.html");
    let key0 = SessionKey::of(&r0);
    let d = gw.handle_with(&r0, SimTime::ZERO, |_| Origin::Page(HTML.into()));
    let Decision::Challenge(ch) = d else {
        panic!("mandatory mode must challenge: {d:?}");
    };
    let answer = ch.answer().to_string();
    assert!(gw.verify_captcha(&key0, ch.id, &answer, SimTime::from_secs(1)));
    assert_eq!(gw.verdict(&key0), Verdict::Human(Reason::CaptchaPassed));

    // The pair goes into the fleet cache; every other member replays it.
    for ip in 1..FLEET {
        let at = SimTime::from_secs(2) + u64::from(ip) * 500;
        let ri = req(ip, "http://f.example/index.html");
        let keyi = SessionKey::of(&ri);
        // The member is itself challenged on arrival...
        let d = gw.handle_with(&ri, at, |_| Origin::Page(HTML.into()));
        assert!(
            matches!(d, Decision::Challenge(_)),
            "unproven member {ip} must be challenged: {d:?}"
        );
        // ...and submits the harvested pair instead of its own.
        assert!(
            !gw.verify_captcha(&keyi, ch.id, &answer, at + 100),
            "member {ip} reusing the solved pair must fail"
        );
        assert_ne!(
            gw.verdict(&keyi),
            Verdict::Human(Reason::CaptchaPassed),
            "member {ip} must not be promoted by a replayed pair"
        );
    }

    let stats = gw.stats();
    assert_eq!(stats.captcha_passed, 1, "exactly one pass service-wide");
    assert_eq!(
        stats.captcha_failed,
        u64::from(FLEET - 1),
        "every replay counted as a failure"
    );
}

/// Harvested probe URLs go stale: past the freshness window the MAC no
/// longer verifies, the URL classifies as ordinary traffic, and
/// redeeming it earns no browser-signal evidence.
#[test]
fn harvested_probe_urls_stop_classifying_after_the_freshness_window() {
    let gw = Gateway::builder().seed(608).build();

    let issued_at = SimTime::from_hours(5);
    let d = page(&gw, 0, "http://f.example/index.html", issued_at);
    let Decision::Serve { manifest, .. } = d else {
        panic!("{d:?}");
    };
    let m = manifest.expect("instrumented");
    let css = m.css_probe.expect("css probe");
    let beacon = m.mouse_beacon.expect("mouse beacon");

    // Fresh: the CSS probe is instrumentation traffic.
    let d = gw.handle(&req(0, &css.to_string()), issued_at + 1_000);
    let Decision::Serve { probe, .. } = d else {
        panic!("{d:?}");
    };
    assert!(probe, "a fresh probe URL classifies as instrumentation");

    // Two hours later (a session kept alive by steady traffic), the
    // same URLs are ordinary requests: stale-nonce MACs fail closed.
    let stale_at = issued_at + 2 * 3_600_000;
    let d = gw.handle_with(&req(0, &css.to_string()), stale_at, |_| {
        Origin::Page(HTML.into())
    });
    let Decision::Serve { probe, .. } = d else {
        panic!("{d:?}");
    };
    assert!(!probe, "a stale probe URL is ordinary traffic");

    // The stale mouse beacon earns no human promotion either.
    let d = gw.handle_with(&req(0, &beacon.to_string()), stale_at + 1_000, |_| {
        Origin::Page(HTML.into())
    });
    assert_ne!(
        d.verdict(),
        Some(Verdict::Human(Reason::MouseActivity)),
        "a stale beacon must not prove mouse activity"
    );
}
