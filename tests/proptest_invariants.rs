//! Cross-crate property tests on the detection invariants.

use botwall::detect::classifier::{classify_final, classify_online, finalize, Label};
use botwall::detect::report::RequestCdf;
use botwall::detect::{EvidenceKind, EvidenceSet};
use botwall::http::request::ClientIp;
use botwall::instrument::beacon;
use botwall::instrument::token::{BeaconKey, KeyOutcome, TokenTable, TokenTableConfig};
use botwall::sessions::SimTime;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = EvidenceKind> {
    prop_oneof![
        Just(EvidenceKind::DownloadedCss),
        Just(EvidenceKind::DownloadedJsFile),
        Just(EvidenceKind::ExecutedJs),
        Just(EvidenceKind::MouseEvent),
        Just(EvidenceKind::FetchedDecoy),
        Just(EvidenceKind::ReplayedBeacon),
        Just(EvidenceKind::ForgedBeacon),
        Just(EvidenceKind::HiddenLinkFollowed),
        Just(EvidenceKind::UaMismatch),
        Just(EvidenceKind::AutomationFlag),
        Just(EvidenceKind::HeadlessFingerprint),
        Just(EvidenceKind::PassedCaptcha),
    ]
}

proptest! {
    /// The online classifier, finalized, always agrees with the offline
    /// set-algebra classifier — no matter the evidence order or
    /// multiplicity.
    #[test]
    fn online_finalized_equals_offline(kinds in proptest::collection::vec(arb_kind(), 0..20)) {
        let mut e = EvidenceSet::new();
        for (i, k) in kinds.iter().enumerate() {
            e.record(*k, i as u32 + 1, SimTime::from_secs(i as u64));
        }
        let (label, _) = finalize(classify_online(&e));
        prop_assert_eq!(label, classify_final(&e));
    }

    /// Evidence order never changes the final label (set semantics).
    #[test]
    fn evidence_order_is_irrelevant(kinds in proptest::collection::vec(arb_kind(), 0..12)) {
        let mut forward = EvidenceSet::new();
        for (i, k) in kinds.iter().enumerate() {
            forward.record(*k, i as u32 + 1, SimTime::ZERO);
        }
        let mut backward = EvidenceSet::new();
        for (i, k) in kinds.iter().rev().enumerate() {
            backward.record(*k, i as u32 + 1, SimTime::ZERO);
        }
        prop_assert_eq!(classify_final(&forward), classify_final(&backward));
    }

    /// Hard robot evidence forces Robot regardless of anything else.
    #[test]
    fn hard_robot_evidence_dominates(kinds in proptest::collection::vec(arb_kind(), 0..12)) {
        let mut e = EvidenceSet::new();
        e.record(EvidenceKind::HiddenLinkFollowed, 1, SimTime::ZERO);
        for (i, k) in kinds.iter().enumerate() {
            e.record(*k, i as u32 + 2, SimTime::ZERO);
        }
        prop_assert_eq!(classify_final(&e), Label::Robot);
    }

    /// A token table never validates a key it did not issue, and never
    /// validates the same key twice.
    #[test]
    fn token_table_soundness(
        issued in proptest::collection::vec(any::<u128>(), 1..20),
        probes in proptest::collection::vec(any::<u128>(), 0..40),
        ip in any::<u32>(),
    ) {
        let mut table = TokenTable::new(TokenTableConfig::default());
        let client = ClientIp::new(ip);
        for (i, k) in issued.iter().enumerate() {
            table.issue(client, format!("/p{i}"), BeaconKey::from_raw(*k), vec![], SimTime::ZERO);
        }
        let mut redeemed = std::collections::HashSet::new();
        for p in &probes {
            let outcome = table.redeem(client, BeaconKey::from_raw(*p), SimTime::ZERO);
            match outcome {
                KeyOutcome::Valid => {
                    prop_assert!(issued.contains(p), "validated unissued key");
                    prop_assert!(redeemed.insert(*p), "validated a key twice");
                }
                KeyOutcome::Replay => {
                    prop_assert!(redeemed.contains(p), "replay without prior redemption");
                }
                KeyOutcome::Decoy | KeyOutcome::Unknown => {}
            }
        }
    }

    /// Beacon encode/decode roundtrips for every key and host.
    #[test]
    fn beacon_codec_roundtrip(key in any::<u128>(), host in "[a-z]{1,12}\\.[a-z]{2,4}") {
        let url = beacon::encode(&host, BeaconKey::from_raw(key));
        prop_assert_eq!(beacon::decode(&url), Some(BeaconKey::from_raw(key)));
    }

    /// Request CDFs are monotone and bounded in [0, 1], and quantiles are
    /// consistent with fractions.
    #[test]
    fn cdf_invariants(values in proptest::collection::vec(0u32..500, 1..100)) {
        let cdf = RequestCdf::new(values.clone());
        let mut prev = 0.0;
        for x in (0..500).step_by(13) {
            let f = cdf.fraction_at(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = cdf.quantile(q).unwrap();
            // At least a q-fraction of observations are ≤ the q-quantile.
            prop_assert!(cdf.fraction_at(v) >= q - 1e-9);
        }
    }

    /// The decoy catch probability is monotone in m and bounded by 1.
    #[test]
    fn decoy_probability_monotone(m in 0usize..1000) {
        let p = beacon::blind_catch_probability(m);
        let p_next = beacon::blind_catch_probability(m + 1);
        prop_assert!((0.0..1.0).contains(&p));
        prop_assert!(p_next > p || m == 0 && p == 0.0 && p_next > 0.0);
    }
}
