//! Thread stress: many threads hammer one shared `Arc<Gateway>` with
//! interleaved human and robot traffic, then the books must balance
//! EXACTLY — the PR-3 guarantee that sharded counters, shard-owned
//! session state, and `&self` handling lose nothing under concurrency.

use botwall::gateway::{Decision, Gateway, Origin};
use botwall::http::request::ClientIp;
use botwall::http::{Method, Request, Response, StatusCode};
use botwall::sessions::{SessionKey, SimTime};
use std::sync::Arc;

const HTML: &str = "<html><head><title>t</title></head><body><p>x</p></body></html>";

fn req(ip: u32, uri: &str, ua: &str) -> Request {
    Request::builder(Method::Get, uri)
        .header("User-Agent", ua)
        .client(ClientIp::new(ip))
        .build()
        .unwrap()
}

/// One thread's workload: a human session (page + probes + mouse beacon,
/// then polite browsing) interleaved with a robot session (no probes,
/// crawling fast enough to hit enforcement). Returns how many requests
/// the thread issued.
fn drive(gw: &Gateway, thread: u32, rounds: u64) -> u64 {
    let human_ip = 10_000 + thread;
    let robot_ip = 20_000 + thread;
    let human_ua = "Mozilla/5.0 (stress) Firefox/1.5";
    let robot_ua = "stressbot/1.0";
    let mut issued = 0u64;

    // Prove the human: fetch a page, then fire its mouse beacon.
    let d = gw.handle_with(
        &req(human_ip, "http://stress.example/index.html", human_ua),
        SimTime::ZERO,
        |_| Origin::Page(HTML.into()),
    );
    issued += 1;
    let beacon = match d {
        Decision::Serve { manifest, .. } => manifest.unwrap().mouse_beacon.unwrap(),
        other => panic!("fresh page fetch must serve: {other:?}"),
    };
    gw.handle(
        &req(human_ip, &beacon.to_string(), human_ua),
        SimTime::from_secs(1),
    );
    issued += 1;

    for i in 0..rounds {
        let t = SimTime::from_secs(2 + i);
        // Human browsing: always served (humans are never rate limited).
        let d = gw.handle_with(
            &req(
                human_ip,
                &format!("http://stress.example/h{}.html", i % 16),
                human_ua,
            ),
            t,
            |_| Origin::Response(Response::empty(StatusCode::OK)),
        );
        assert!(d.is_serve(), "proven human rejected: {d:?}");
        issued += 1;
        // Robot crawling: three requests per tick — fast enough to be
        // promoted to no-signal robot and throttled/blocked eventually.
        for j in 0..3 {
            gw.handle_with(
                &req(
                    robot_ip,
                    &format!("http://stress.example/r{i}_{j}.html"),
                    robot_ua,
                ),
                t,
                |_| Origin::Page(HTML.into()),
            );
            issued += 1;
        }
    }
    issued
}

#[test]
fn stats_ledger_balances_exactly_under_concurrency() {
    let threads = 8u32;
    let rounds = 150u64;
    let gw = Arc::new(Gateway::builder().seed(2026).build());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let gw = Arc::clone(&gw);
            std::thread::spawn(move || drive(&gw, t, rounds))
        })
        .collect();
    let issued: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let stats = gw.stats();
    assert_eq!(stats.requests, issued, "every request is counted once");
    assert_eq!(
        stats.requests,
        stats.served + stats.throttled + stats.blocked + stats.challenged,
        "every request lands in exactly one outcome column: {stats:?}"
    );
    assert!(
        stats.throttled + stats.blocked > 0,
        "robots hit enforcement"
    );
    assert_eq!(
        stats.live_sessions,
        2 * threads as usize,
        "one human and one robot session per thread"
    );
    assert!(stats.total_bytes > 0);

    // Drain: complete (every session exactly once) and key-sorted.
    let done = gw.drain();
    assert_eq!(done.len(), 2 * threads as usize);
    let keys: Vec<SessionKey> = done.iter().map(|c| c.session.key().clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "drain output must be key-sorted, no dupes");
    let drained_requests: u64 = done.iter().map(|c| c.session.request_count()).sum();
    assert_eq!(
        drained_requests, issued,
        "no exchange lost between ingest and flush"
    );
    assert_eq!(gw.stats().live_sessions, 0);
    assert_eq!(gw.stats().completed_sessions, 2 * u64::from(threads));
}

#[test]
fn beacon_redemptions_stay_exact_while_traffic_flows_on_8_threads() {
    // PR-4 regression: beacon redemption is a shard-local token
    // operation (it used to write-lock a global table). Eight threads
    // continuously redeem fresh beacons while their robot halves hammer
    // ordinary traffic; every single redemption must come back Valid
    // (no thread may observe another session's token state), and the
    // ledger must still balance exactly.
    let threads = 8u32;
    let rounds = 60u64;
    let gw = Arc::new(Gateway::builder().seed(4040).build());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let gw = Arc::clone(&gw);
            std::thread::spawn(move || {
                let human_ip = 40_000 + t;
                let robot_ip = 50_000 + t;
                let ua = "Mozilla/5.0 (beacon-stress)";
                let mut issued = 0u64;
                for i in 0..rounds {
                    let now = SimTime::from_secs(i);
                    // Fresh page → fresh beacon → immediate redemption.
                    let d = gw.handle_with(
                        &req(human_ip, &format!("http://stress.example/b{i}.html"), ua),
                        now,
                        |_| Origin::Page(HTML.into()),
                    );
                    issued += 1;
                    let beacon = match d {
                        Decision::Serve { manifest, .. } => manifest.unwrap().mouse_beacon.unwrap(),
                        other => panic!("human page fetch rejected: {other:?}"),
                    };
                    let d = gw.handle(&req(human_ip, &beacon.to_string(), ua), now + 10);
                    issued += 1;
                    assert!(
                        matches!(
                            d.verdict(),
                            Some(v) if v.is_final()
                        ),
                        "every redemption is Valid for its own session: {d:?}"
                    );
                    // Interleaved robot traffic on the same thread.
                    gw.handle_with(
                        &req(
                            robot_ip,
                            &format!("http://stress.example/r{i}.html"),
                            "beaconbot/1.0",
                        ),
                        now,
                        |_| Origin::Page(HTML.into()),
                    );
                    issued += 1;
                }
                issued
            })
        })
        .collect();
    let issued: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = gw.stats();
    assert_eq!(stats.requests, issued);
    assert_eq!(
        stats.requests,
        stats.served + stats.throttled + stats.blocked + stats.challenged
    );
    // Every human session ends Human on mouse evidence; token entries
    // drain with their sessions.
    let done = gw.drain();
    let humans = done
        .iter()
        .filter(|c| {
            c.session.key().ip().as_u32() >= 40_000 && c.session.key().ip().as_u32() < 50_000
        })
        .count();
    assert_eq!(humans, threads as usize);
    for cs in &done {
        if cs.session.key().ip().as_u32() < 50_000 {
            assert_eq!(
                cs.label,
                botwall::detect::Label::Human,
                "{:?}",
                cs.session.key()
            );
        }
    }
    assert_eq!(
        gw.stats().token_entries,
        0,
        "tokens flush with their entries"
    );
}

#[test]
fn slow_origin_does_not_stall_same_shard_neighbors() {
    // The PR-5 guarantee: the origin callback runs with NO shard lock
    // held. One session's origin hangs (blocked on a channel) while a
    // *same-shard* neighbor completes an entire workload — under the
    // PR-4 fused path this rendezvous would deadlock, because the
    // neighbor's requests need the shard mutex the sleeping origin
    // would be holding. Ledger totals stay exact throughout.
    use botwall::sessions::SessionKey;
    use std::sync::mpsc;

    let gw = Arc::new(Gateway::builder().seed(5050).build());
    let ua = "Mozilla/5.0 (slow-origin) Firefox/1.5";
    let shards = gw.stats().shard_count as u64;
    let shard_of = |ip: u32| {
        SessionKey::of(&req(ip, "http://stress.example/x.html", ua)).shard_hash() % shards
    };
    let slow_ip = 60_000u32;
    let neighbor_ip = (60_001..70_000u32)
        .find(|ip| shard_of(*ip) == shard_of(slow_ip))
        .expect("some nearby ip lands on the same shard");

    // Prove the neighbor human first so its steady-state loop is pure
    // origin serves (never throttled by the no-signal promotion).
    let d = gw.handle_with(
        &req(neighbor_ip, "http://stress.example/index.html", ua),
        SimTime::ZERO,
        |_| Origin::Page(HTML.into()),
    );
    let beacon = match d {
        Decision::Serve { manifest, .. } => manifest.unwrap().mouse_beacon.unwrap(),
        other => panic!("{other:?}"),
    };
    let d = gw.handle(
        &req(neighbor_ip, &beacon.to_string(), ua),
        SimTime::from_secs(1),
    );
    assert!(matches!(d.verdict(), Some(v) if v.is_final()));

    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let slow = {
        let gw = Arc::clone(&gw);
        std::thread::spawn(move || {
            #[cfg(debug_assertions)]
            botwall::sessions::sync::counters::reset();
            let d = gw.handle_with(
                &req(slow_ip, "http://stress.example/slow.html", ua),
                SimTime::from_secs(2),
                |_| {
                    entered_tx.send(()).unwrap();
                    // The origin "hangs" until the neighbor's whole
                    // workload has completed on the same shard.
                    release_rx.recv().unwrap();
                    Origin::Page(HTML.into())
                },
            );
            assert!(d.is_serve(), "slow origin still serves: {d:?}");
            #[cfg(debug_assertions)]
            assert_eq!(
                botwall::sessions::sync::counters::snapshot(),
                (2, 0),
                "slow origin serve = exactly (gate, commit), no lock spans the fetch"
            );
        })
    };
    entered_rx.recv().unwrap(); // the slow fetch is now in flight
    #[cfg(debug_assertions)]
    botwall::sessions::sync::counters::reset();
    let rounds = 50u64;
    for i in 0..rounds {
        let d = gw.handle_with(
            &req(neighbor_ip, &format!("http://stress.example/n{i}.html"), ua),
            SimTime::from_secs(3 + i),
            |_| Origin::Response(Response::empty(StatusCode::OK)),
        );
        assert!(d.is_serve(), "same-shard neighbor proceeds: {d:?}");
    }
    #[cfg(debug_assertions)]
    assert_eq!(
        botwall::sessions::sync::counters::snapshot(),
        (2 * rounds, 0),
        "every neighbor serve costs exactly two shard locks, zero global"
    );
    release_tx.send(()).unwrap();
    slow.join().unwrap();

    let stats = gw.stats();
    assert_eq!(stats.requests, rounds + 3, "page + beacon + slow + rounds");
    assert_eq!(
        stats.requests,
        stats.served + stats.throttled + stats.blocked + stats.challenged
    );
    assert_eq!(stats.served, rounds + 3, "nothing throttled or dropped");
    assert_eq!(gw.drain().len(), 2);
}

#[test]
fn under_attack_flips_while_traffic_is_in_flight() {
    use botwall::captcha::ServingPolicy;
    // The PR-3 bugfix: `set_under_attack` is an atomic `&self` toggle an
    // operator can flip mid-traffic, without a stop-the-world `&mut`.
    let gw = Arc::new(
        Gateway::builder()
            .seed(7)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build(),
    );
    let traffic: Vec<_> = (0..4u32)
        .map(|t| {
            let gw = Arc::clone(&gw);
            std::thread::spawn(move || {
                let mut challenged = 0u32;
                for i in 0..400u64 {
                    let r = req(
                        30_000 + t,
                        &format!("http://stress.example/{i}.html"),
                        "Mozilla/5.0",
                    );
                    if let Decision::Challenge(_) =
                        gw.handle_with(&r, SimTime::from_secs(i), |_| Origin::Page(HTML.into()))
                    {
                        challenged += 1;
                    }
                }
                challenged
            })
        })
        .collect();
    // Flip the flag continuously while the traffic threads run.
    for i in 0..2_000u32 {
        gw.set_under_attack(i % 2 == 0);
    }
    gw.set_under_attack(true);
    let challenged: u32 = traffic.into_iter().map(|h| h.join().unwrap()).sum();
    // With the flag mostly toggling mid-run the exact count races by
    // design; the invariants are (a) no deadlock/panic, (b) the ledger
    // still balances, and (c) the final state takes effect.
    let stats = gw.stats();
    assert_eq!(
        stats.requests,
        stats.served + stats.throttled + stats.blocked + stats.challenged
    );
    assert_eq!(u64::from(challenged), stats.challenged);
    let r = req(39_999, "http://stress.example/x.html", "Mozilla/5.0");
    let d = gw.handle_with(&r, SimTime::from_secs(9_999), |_| Origin::Page(HTML.into()));
    assert!(
        matches!(d, Decision::Challenge(_)),
        "under attack: unproven sessions are challenged ({d:?})"
    );
}
