//! The population-scale proof obligation (ROADMAP: "millions of
//! users"): one `Arc<Gateway>` holds over a million live sessions
//! in-process, keeps serving Zipf traffic at that occupancy, sweeps the
//! full live set without evicting anything, and drains it all back out
//! with the ledger balanced.
//!
//! Release builds hold the literal ≥ 1M line; debug builds scale the
//! population down (the same code paths, ~10× fewer keys) so plain
//! `cargo test` stays tractable. The throughput numbers live in
//! `benches/capacity.rs` / `BENCH_baseline.json`; this test holds the
//! *correctness* properties at scale.

use botwall::detect::DetectorConfig;
use botwall::gateway::Gateway;
use botwall::sessions::{SimTime, TrackerConfig};
use botwall_bench::{touch, zipf_traffic, Zipf};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Live-session floor: the full million in release, scaled down (same
/// paths, fewer keys) under debug assertions.
fn target() -> u32 {
    if cfg!(debug_assertions) {
        120_000
    } else {
        1_200_000
    }
}

fn capacity_gateway(target: u32) -> Arc<Gateway> {
    // Headroom above the floor so prefill never triggers eviction.
    let cap = target as usize + target as usize / 8;
    Arc::new(
        Gateway::builder()
            .seed(2006)
            .detector(DetectorConfig {
                tracker: TrackerConfig {
                    max_sessions: cap,
                    ..TrackerConfig::default()
                },
            })
            .build(),
    )
}

/// Concurrent prefill over disjoint IP ranges — the multi-core ingest
/// shape — then every capacity property in sequence against the same
/// populated gateway (prefilling a million sessions is the expensive
/// part; do it once).
#[test]
fn million_session_occupancy_traffic_sweep_and_drain() {
    let n = target();
    let gw = capacity_gateway(n);
    let threads = 8u32;
    let span_ms = 60_000u64;

    // Prefill from `threads` workers, each owning a disjoint IP range,
    // with arrivals spread over a minute so idle ordering is
    // non-degenerate.
    std::thread::scope(|s| {
        for t in 0..threads {
            let gw = &gw;
            s.spawn(move || {
                let lo = t * (n / threads);
                let hi = if t == threads - 1 {
                    n
                } else {
                    lo + n / threads
                };
                for ip in lo..hi {
                    let at = SimTime::ZERO + (u64::from(ip) * span_ms) / u64::from(n);
                    touch(gw, ip, at);
                }
            });
        }
    });
    let now = SimTime::ZERO + span_ms;

    let stats = gw.stats();
    assert!(
        stats.live_sessions >= n as usize,
        "live-session floor: {} < {n}",
        stats.live_sessions
    );
    assert_eq!(
        stats.requests,
        u64::from(n),
        "one exchange per prefilled client"
    );

    // Zipf traffic at occupancy: the head of the distribution hammers a
    // few hot sessions, the tail touches cold ones — no session is
    // created or lost by revisits.
    let zipf = Zipf::new(n as usize, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    let extra = 50_000u64;
    zipf_traffic(&gw, &zipf, extra, now, &mut rng);
    let stats = gw.stats();
    assert_eq!(stats.live_sessions, n as usize, "revisits create nothing");
    assert_eq!(stats.requests, u64::from(n) + extra);

    // Sweep with nothing idle past the timeout: a pure full scan that
    // must finalize nothing and leave occupancy untouched.
    let swept = gw.sweep(now);
    assert!(
        swept.is_empty(),
        "nothing is idle: sweep finalized {}",
        swept.len()
    );
    assert_eq!(gw.stats().live_sessions, n as usize);

    // Stats/fold parity: the O(1) gauge agrees with an actual walk over
    // every shard.
    let folded = gw.detector().fold_key_states(0usize, |acc, _, _| acc + 1);
    assert_eq!(folded, n as usize, "live gauge vs shard walk");

    // Drain conservation: every live session comes back exactly once,
    // request counts are conserved, and the tracker empties.
    let drained = gw.drain();
    assert_eq!(drained.len(), n as usize, "drain returns every session");
    let drained_requests: u64 = drained.iter().map(|c| c.session.request_count()).sum();
    assert_eq!(
        drained_requests,
        u64::from(n) + extra,
        "request ledger conserved through drain"
    );
    assert_eq!(gw.stats().live_sessions, 0, "drain empties the tracker");
}
