//! Determinism regression at a larger scale than `tests/pipeline.rs`.
//!
//! `pipeline.rs` spot-checks a handful of fields at 60 sessions / 3 nodes.
//! This suite locks down the ENTIRE run report, byte for byte, at a
//! config several times larger — the guardrail future parallelization and
//! sharding work must keep green: reordering sessions across shards or
//! racing RNG draws will change the rendered report and fail here.

use botwall::agents::Population;
use botwall::codeen::network::{Network, NetworkConfig};
use botwall::codeen::node::Deployment;
use botwall::webgraph::{SiteConfig, WebConfig};

fn big_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 7,
        web: WebConfig {
            sites: 6,
            site: SiteConfig {
                pages: 60,
                ..SiteConfig::default()
            },
        },
        deployment: Deployment::full(),
        sessions: 400,
        session_gap_ms: 150,
    }
}

/// Renders every field the report exposes (summaries, completed sessions
/// with evidence, node stats, bandwidth ledger) into one byte string.
fn render(config: &NetworkConfig, seed: u64) -> Vec<u8> {
    let report = Network::run(config, &Population::table1(), seed);
    format!("{report:#?}").into_bytes()
}

#[test]
fn full_report_is_byte_identical_across_runs() {
    let config = big_config();
    let a = render(&config, 20_060_530); // USENIX ATC '06 opened May 30.
    let b = render(&config, 20_060_530);
    assert_eq!(
        a.len(),
        b.len(),
        "report sizes diverged — nondeterminism upstream of rendering"
    );
    // Byte-wise compare without dumping megabytes on failure.
    if let Some(pos) = a.iter().zip(&b).position(|(x, y)| x != y) {
        let lo = pos.saturating_sub(80);
        panic!(
            "reports diverge at byte {pos}:\n  a: …{}…\n  b: …{}…",
            String::from_utf8_lossy(&a[lo..(pos + 80).min(a.len())]),
            String::from_utf8_lossy(&b[lo..(pos + 80).min(b.len())]),
        );
    }
}

#[test]
fn seed_changes_the_report() {
    // The byte-compare above would pass vacuously if the run ignored its
    // seed; prove it does not.
    let config = big_config();
    assert_ne!(render(&config, 1), render(&config, 2));
}

/// Drives one gateway through interleaved page serves and mouse-beacon
/// redemptions across many sessions (hence many tracker shards), and
/// renders every observable — statuses, verdicts, drained labels, the
/// full stats snapshot — into one byte string.
///
/// This is the PR-4 guardrail: beacon state is now per-session
/// (colocated in shard entries, with per-session RNG streams) instead of
/// one global table behind one RNG, and redemption ordering across
/// shards must still reproduce byte-for-byte.
fn render_gateway_beacon_run(seed: u64) -> Vec<u8> {
    use botwall::gateway::{Decision, Gateway, Origin};
    use botwall::http::request::ClientIp;
    use botwall::http::{Method, Request};
    use botwall::sessions::SimTime;

    const HTML: &str = "<html><head><title>d</title></head><body><p>x</p></body></html>";
    let req = |ip: u32, uri: &str| {
        Request::builder(Method::Get, uri)
            .header("User-Agent", "Mozilla/5.0 (determinism)")
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    };

    let gw = Gateway::builder().seed(seed).build();
    let mut log = String::new();
    let mut clock = SimTime::ZERO;
    for round in 0..3u32 {
        // Wave of page fetches across 24 keys (spread over the 16
        // shards), collecting each session's fresh beacon...
        let mut beacons = Vec::new();
        for ip in 0..24u32 {
            clock += 40;
            let d = gw.handle_with(
                &req(ip, &format!("http://det.example/p{round}.html")),
                clock,
                |_| Origin::Page(HTML.into()),
            );
            if let Decision::Serve { manifest, .. } = &d {
                if let Some(b) = manifest.as_ref().and_then(|m| m.mouse_beacon.clone()) {
                    beacons.push((ip, b));
                }
            }
            log.push_str(&format!("{round}/{ip} page {:?}\n", d.status()));
        }
        // ...then redeem them in REVERSE issue order, so redemptions
        // interleave across shards in a different order than issuance.
        for (ip, beacon) in beacons.into_iter().rev() {
            clock += 15;
            let d = gw.handle(&req(ip, &beacon.to_string()), clock);
            log.push_str(&format!("{round}/{ip} beacon {:?}\n", d.verdict()));
        }
    }
    for cs in gw.drain() {
        log.push_str(&format!(
            "{} {:?} {:?}\n",
            cs.session.key(),
            cs.label,
            cs.reason
        ));
    }
    log.push_str(&format!("{:#?}", gw.stats()));
    log.into_bytes()
}

#[test]
fn beacon_redemptions_interleaved_across_shards_byte_lock() {
    let a = render_gateway_beacon_run(20_060_530);
    let b = render_gateway_beacon_run(20_060_530);
    assert_eq!(a, b, "identical gateway runs must render byte-identically");
    assert_ne!(render_gateway_beacon_run(1), a, "seed must matter");
}

/// The adversary-escalation eval report is a pure function of
/// `(sessions, seed)`: the whole rendered report — every per-kind
/// detection percentage, the human FPR, the session counts — byte-locks
/// across runs. This is the guardrail on the escalation population
/// (shared fleet cache included: the `Arc<Mutex<FleetCache>>` must not
/// leak wall-clock or allocation order into the scores).
fn render_escalation_eval(sessions: u32, seed: u64) -> Vec<u8> {
    let report = botwall_bench::run_escalation_eval(sessions, seed);
    format!("{report:#?}").into_bytes()
}

#[test]
fn escalation_eval_report_is_byte_identical_across_runs() {
    let a = render_escalation_eval(160, 20_060_530);
    let b = render_escalation_eval(160, 20_060_530);
    assert_eq!(
        a.len(),
        b.len(),
        "eval report sizes diverged — nondeterminism upstream of rendering"
    );
    if let Some(pos) = a.iter().zip(&b).position(|(x, y)| x != y) {
        let lo = pos.saturating_sub(80);
        panic!(
            "eval reports diverge at byte {pos}:\n  a: …{}…\n  b: …{}…",
            String::from_utf8_lossy(&a[lo..(pos + 80).min(a.len())]),
            String::from_utf8_lossy(&b[lo..(pos + 80).min(b.len())]),
        );
    }
    assert_ne!(
        render_escalation_eval(160, 1),
        a,
        "the eval must not ignore its seed"
    );
}

proptest::proptest! {
    /// Determinism holds across the seed space, not just at the pinned
    /// seed above: for any small seed, two eval runs (and their rendered
    /// reports) are identical. Sessions are kept small — the vendored
    /// proptest shim has no per-test case-count override, so each case
    /// must stay cheap.
    #[test]
    fn escalation_eval_is_deterministic_for_any_seed(seed in 0u64..64) {
        let a = botwall_bench::run_escalation_eval(48, seed);
        let b = botwall_bench::run_escalation_eval(48, seed);
        proptest::prop_assert_eq!(&a, &b);
        proptest::prop_assert_eq!(
            format!("{a:#?}").into_bytes(),
            format!("{b:#?}").into_bytes()
        );
    }
}
