//! Determinism regression at a larger scale than `tests/pipeline.rs`.
//!
//! `pipeline.rs` spot-checks a handful of fields at 60 sessions / 3 nodes.
//! This suite locks down the ENTIRE run report, byte for byte, at a
//! config several times larger — the guardrail future parallelization and
//! sharding work must keep green: reordering sessions across shards or
//! racing RNG draws will change the rendered report and fail here.

use botwall::agents::Population;
use botwall::codeen::network::{Network, NetworkConfig};
use botwall::codeen::node::Deployment;
use botwall::webgraph::{SiteConfig, WebConfig};

fn big_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 7,
        web: WebConfig {
            sites: 6,
            site: SiteConfig {
                pages: 60,
                ..SiteConfig::default()
            },
        },
        deployment: Deployment::full(),
        sessions: 400,
        session_gap_ms: 150,
    }
}

/// Renders every field the report exposes (summaries, completed sessions
/// with evidence, node stats, bandwidth ledger) into one byte string.
fn render(config: &NetworkConfig, seed: u64) -> Vec<u8> {
    let report = Network::run(config, &Population::table1(), seed);
    format!("{report:#?}").into_bytes()
}

#[test]
fn full_report_is_byte_identical_across_runs() {
    let config = big_config();
    let a = render(&config, 20_060_530); // USENIX ATC '06 opened May 30.
    let b = render(&config, 20_060_530);
    assert_eq!(
        a.len(),
        b.len(),
        "report sizes diverged — nondeterminism upstream of rendering"
    );
    // Byte-wise compare without dumping megabytes on failure.
    if let Some(pos) = a.iter().zip(&b).position(|(x, y)| x != y) {
        let lo = pos.saturating_sub(80);
        panic!(
            "reports diverge at byte {pos}:\n  a: …{}…\n  b: …{}…",
            String::from_utf8_lossy(&a[lo..(pos + 80).min(a.len())]),
            String::from_utf8_lossy(&b[lo..(pos + 80).min(b.len())]),
        );
    }
}

#[test]
fn seed_changes_the_report() {
    // The byte-compare above would pass vacuously if the run ignored its
    // seed; prove it does not.
    let config = big_config();
    assert_ne!(render(&config, 1), render(&config, 2));
}
