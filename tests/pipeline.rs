//! Cross-crate integration: agents → proxy → instrumenter → detector →
//! reports, end to end.

use botwall::agents::Population;
use botwall::codeen::network::{Network, NetworkConfig};
use botwall::codeen::node::Deployment;
use botwall::detect::{EvidenceKind, Figure2Report, Label, Table1Report};
use botwall::webgraph::{SiteConfig, WebConfig};

fn config(sessions: u32) -> NetworkConfig {
    NetworkConfig {
        nodes: 3,
        web: WebConfig {
            sites: 3,
            site: SiteConfig {
                pages: 20,
                ..SiteConfig::default()
            },
        },
        deployment: Deployment::full(),
        sessions,
        session_gap_ms: 300,
    }
}

#[test]
fn full_pipeline_is_deterministic_across_runs() {
    let a = Network::run(&config(60), &Population::table1(), 123);
    let b = Network::run(&config(60), &Population::table1(), 123);
    assert_eq!(a.summaries.len(), b.summaries.len());
    for (x, y) in a.summaries.iter().zip(&b.summaries) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.requests, y.requests);
        assert_eq!(x.allowed, y.allowed);
    }
    assert_eq!(a.bandwidth, b.bandwidth);
    let ta = Table1Report::from_sessions(&a.completed);
    let tb = Table1Report::from_sessions(&b.completed);
    assert_eq!(ta, tb);
}

#[test]
fn different_seeds_produce_different_traffic() {
    let a = Network::run(&config(40), &Population::table1(), 1);
    let b = Network::run(&config(40), &Population::table1(), 2);
    let kinds = |r: &botwall::codeen::network::RunReport| {
        r.summaries
            .iter()
            .map(|s| s.kind.name())
            .collect::<Vec<_>>()
    };
    assert_ne!(kinds(&a), kinds(&b));
}

#[test]
fn set_algebra_labels_match_ground_truth_mostly() {
    let report = Network::run(&config(250), &Population::table1(), 5);
    let mut right = 0u32;
    let mut total = 0u32;
    let mut human_fp = 0u32;
    let mut humans = 0u32;
    for cs in &report.completed {
        if !cs.classifiable {
            continue;
        }
        let Some(kind) = report.truth_of(cs.session.key()) else {
            continue;
        };
        let truth = if kind.is_human() {
            Label::Human
        } else {
            Label::Robot
        };
        total += 1;
        if cs.label == truth {
            right += 1;
        }
        if kind.is_human() {
            humans += 1;
            if cs.label == Label::Robot {
                human_fp += 1;
            }
        }
    }
    assert!(total > 150, "classifiable sessions: {total}");
    let acc = right as f64 / total as f64;
    assert!(acc > 0.85, "end-to-end accuracy {acc}");
    // The paper's headline: low false positives on humans.
    let fpr = human_fp as f64 / humans.max(1) as f64;
    assert!(fpr < 0.1, "human FPR {fpr}");
}

#[test]
fn table1_report_has_paper_shape() {
    let report = Network::run(&config(300), &Population::table1(), 9);
    let t = Table1Report::from_sessions(&report.completed);
    // CSS ≥ JS ≥ mouse ≥ CAPTCHA; hidden and mismatch are rare.
    let css = t.pct(t.downloaded_css);
    let js = t.pct(t.executed_js);
    let mm = t.pct(t.mouse_movement);
    let cap = t.pct(t.passed_captcha);
    assert!(css >= js, "css {css} vs js {js}");
    assert!(js >= mm, "js {js} vs mouse {mm}");
    assert!(mm >= cap, "mouse {mm} vs captcha {cap}");
    assert!(t.pct(t.followed_hidden) < 6.0);
    assert!(t.pct(t.ua_mismatch) < 4.0);
    // The bounds bracket correctly.
    assert!(t.human_upper_bound_pct() >= t.human_lower_bound_pct());
}

#[test]
fn figure2_css_detects_faster_than_mouse() {
    let report = Network::run(&config(300), &Population::table1(), 10);
    let f2 = Figure2Report::from_sessions(&report.completed);
    assert!(f2.css.len() > 20);
    assert!(f2.mouse.len() > 20);
    for q in [0.5, 0.8, 0.95] {
        let css = f2.css.quantile(q).unwrap();
        let mouse = f2.mouse.quantile(q).unwrap();
        assert!(css <= mouse, "q{q}: css {css} must not lag mouse {mouse}");
    }
}

#[test]
fn humans_with_mouse_evidence_carry_the_right_kind() {
    let report = Network::run(&config(120), &Population::table1(), 11);
    for cs in &report.completed {
        if cs.evidence.has(EvidenceKind::MouseEvent) && !cs.evidence.any_hard_robot() {
            assert_eq!(cs.label, Label::Human, "mouse evidence implies human label");
        }
    }
}

#[test]
fn enforcement_reduces_abuse_vs_undefended() {
    let defended = Network::run(&config(150), &Population::table1(), 12);
    let mut open = config(150);
    open.deployment = Deployment::none();
    let undefended = Network::run(&open, &Population::table1(), 12);
    let delivered = |r: &botwall::codeen::network::RunReport| {
        r.summaries
            .iter()
            .map(|s| s.abusive_delivered())
            .sum::<u64>()
    };
    let d = delivered(&defended);
    let u = delivered(&undefended);
    assert!(
        (d as f64) < u as f64 * 0.5,
        "defended {d} vs undefended {u}"
    );
}
