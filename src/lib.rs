//! `botwall` — automatic Web robot detection.
//!
//! A production-quality Rust reproduction of Park, Pai, Lee & Calo,
//! *Securing Web Service by Automatic Robot Detection* (USENIX Annual
//! Technical Conference, 2006): real-time discrimination of human from
//! robot HTTP traffic via human-activity detection (keyed mouse-event
//! beacons) and standard-browser testing (CSS probes, hidden links),
//! with an AdaBoost study over the paper's 12 behavioural features.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`http`] | `botwall-http` | HTTP substrate |
//! | [`webgraph`] | `botwall-webgraph` | synthetic web content |
//! | [`sessions`] | `botwall-sessions` | sharded `<IP, User-Agent>` sessionization |
//! | [`instrument`] | `botwall-instrument` | page rewriting + probes |
//! | [`detect`] | `botwall-core` | **the detector** (the paper's contribution) |
//! | [`gateway`] | `botwall-gateway` | **the front door**: one request-decision API |
//! | [`ml`] | `botwall-ml` | Table-2 features, AdaBoost, baselines |
//! | [`captcha`] | `botwall-captcha` | CAPTCHA oracle |
//! | [`agents`] | `botwall-agents` | human/robot workload models |
//! | [`codeen`] | `botwall-codeen` | open-proxy network simulation |
//!
//! # Examples
//!
//! Embedders drive everything through one [`gateway::Gateway`]: hand it
//! each request, supply origin HTML when asked, and act on the typed
//! [`gateway::Decision`].
//!
//! ```
//! use botwall::gateway::{Decision, Gateway, Origin};
//! use botwall::http::request::ClientIp;
//! use botwall::http::{Method, Request};
//! use botwall::sessions::SimTime;
//!
//! let mut gw = Gateway::builder().seed(2006).build();
//!
//! // A client fetches a page; the gateway instruments it in flight.
//! let req = Request::builder(Method::Get, "http://www.example.com/index.html")
//!     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
//!     .client(ClientIp::new(1))
//!     .build()
//!     .unwrap();
//! let html = "<html><head></head><body><p>hello</p></body></html>";
//! let decision = gw.handle_with(&req, SimTime::ZERO, |_| Origin::Page(html.into()));
//!
//! let Decision::Serve { body, manifest, .. } = decision else {
//!     panic!("fresh sessions are served");
//! };
//! assert!(body.unwrap().contains("onmousemove")); // mouse-beacon handler
//! let manifest = manifest.unwrap();
//! assert!(manifest.css_probe.is_some()); // §2.2 standard-browser probe
//!
//! // The human moves the mouse: the keyed beacon fires, and the session
//! // verdict goes Human.
//! let beacon = manifest.mouse_beacon.unwrap();
//! let req = Request::builder(Method::Get, beacon.to_string())
//!     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
//!     .client(ClientIp::new(1))
//!     .build()
//!     .unwrap();
//! let decision = gw.handle(&req, SimTime::from_secs(2));
//! assert!(matches!(
//!     decision.verdict(),
//!     Some(botwall::detect::Verdict::Human(_))
//! ));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the per-table/figure experiment harnesses.

#![forbid(unsafe_code)]

pub use botwall_agents as agents;
pub use botwall_captcha as captcha;
pub use botwall_codeen as codeen;
pub use botwall_core as detect;
pub use botwall_gateway as gateway;
pub use botwall_http as http;
pub use botwall_instrument as instrument;
pub use botwall_ml as ml;
pub use botwall_sessions as sessions;
pub use botwall_webgraph as webgraph;
