//! `botwall` — automatic Web robot detection.
//!
//! A production-quality Rust reproduction of Park, Pai, Lee & Calo,
//! *Securing Web Service by Automatic Robot Detection* (USENIX Annual
//! Technical Conference, 2006): real-time discrimination of human from
//! robot HTTP traffic via human-activity detection (keyed mouse-event
//! beacons) and standard-browser testing (CSS probes, hidden links),
//! with an AdaBoost study over the paper's 12 behavioural features.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`http`] | `botwall-http` | HTTP substrate |
//! | [`webgraph`] | `botwall-webgraph` | synthetic web content |
//! | [`sessions`] | `botwall-sessions` | `<IP, User-Agent>` sessionization |
//! | [`instrument`] | `botwall-instrument` | page rewriting + probes |
//! | [`detect`] | `botwall-core` | **the detector** (the paper's contribution) |
//! | [`ml`] | `botwall-ml` | Table-2 features, AdaBoost, baselines |
//! | [`captcha`] | `botwall-captcha` | CAPTCHA oracle |
//! | [`agents`] | `botwall-agents` | human/robot workload models |
//! | [`codeen`] | `botwall-codeen` | open-proxy network simulation |
//!
//! # Examples
//!
//! ```
//! use botwall::detect::{Detector, DetectorConfig};
//! use botwall::instrument::{InstrumentConfig, Instrumenter};
//!
//! let _detector = Detector::new(DetectorConfig::default());
//! let _instrumenter = Instrumenter::new(InstrumentConfig::default(), 42);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the per-table/figure experiment harnesses.

#![forbid(unsafe_code)]

pub use botwall_agents as agents;
pub use botwall_captcha as captcha;
pub use botwall_codeen as codeen;
pub use botwall_core as detect;
pub use botwall_http as http;
pub use botwall_instrument as instrument;
pub use botwall_ml as ml;
pub use botwall_sessions as sessions;
pub use botwall_webgraph as webgraph;
