//! Labelled corpora and the paper's train/test protocol.
//!
//! §4.2: "we collected data by running CAPTCHA tests on CoDeeN for two
//! weeks, and classified 42,975 human sessions and 124,271 robot sessions
//! … We then divided each set into a training set and a test set, using
//! equal numbers of sessions drawn at random."

use crate::features::FeatureVector;
use botwall_core::Label;
use botwall_sessions::RequestRecord;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One labelled session: its record stream plus ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelledSession {
    /// The per-request records (enough prefix for the largest checkpoint).
    pub records: Vec<RequestRecord>,
    /// Ground-truth label (from the CAPTCHA oracle in the paper).
    pub label: Label,
}

/// A labelled corpus of sessions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    /// The sessions.
    pub sessions: Vec<LabelledSession>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Adds a session.
    pub fn push(&mut self, records: Vec<RequestRecord>, label: Label) {
        self.sessions.push(LabelledSession { records, label });
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Count per label: `(humans, robots)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let humans = self
            .sessions
            .iter()
            .filter(|s| s.label == Label::Human)
            .count();
        (humans, self.sessions.len() - humans)
    }

    /// The paper's split: each class is divided into equal-sized train and
    /// test halves drawn at random.
    pub fn split_half<R: Rng>(&self, rng: &mut R) -> (Corpus, Corpus) {
        let mut train = Corpus::new();
        let mut test = Corpus::new();
        for label in [Label::Human, Label::Robot] {
            let mut idx: Vec<usize> = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.label == label)
                .map(|(i, _)| i)
                .collect();
            idx.shuffle(rng);
            let half = idx.len() / 2;
            for (pos, i) in idx.into_iter().enumerate() {
                let s = self.sessions[i].clone();
                if pos < half {
                    train.sessions.push(s);
                } else {
                    test.sessions.push(s);
                }
            }
        }
        (train, test)
    }

    /// Materializes `(features, label)` pairs at a request-count
    /// checkpoint, skipping sessions shorter than `min_requests`.
    pub fn features_at(
        &self,
        checkpoint: usize,
        min_requests: usize,
    ) -> Vec<(FeatureVector, Label)> {
        self.sessions
            .iter()
            .filter(|s| s.records.len() >= min_requests)
            .map(|s| {
                (
                    crate::features::extract_prefix(&s.records, checkpoint),
                    s.label,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::make_record;
    use botwall_http::{ContentClass, Method};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn corpus(humans: usize, robots: usize) -> Corpus {
        let mut c = Corpus::new();
        for i in 0..humans {
            let recs = (1..=20)
                .map(|j| make_record(j, Method::Get, ContentClass::Image, 2, true, true))
                .collect();
            c.push(recs, Label::Human);
            let _ = i;
        }
        for i in 0..robots {
            let recs = (1..=20)
                .map(|j| make_record(j, Method::Get, ContentClass::Html, 2, false, false))
                .collect();
            c.push(recs, Label::Robot);
            let _ = i;
        }
        c
    }

    #[test]
    fn class_counts() {
        let c = corpus(30, 70);
        assert_eq!(c.class_counts(), (30, 70));
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn split_is_stratified_and_half() {
        let c = corpus(40, 100);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (train, test) = c.split_half(&mut rng);
        assert_eq!(train.class_counts(), (20, 50));
        assert_eq!(test.class_counts(), (20, 50));
        assert_eq!(train.len() + test.len(), c.len());
    }

    #[test]
    fn split_with_odd_counts_keeps_everything() {
        let c = corpus(5, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (train, test) = c.split_half(&mut rng);
        assert_eq!(train.len() + test.len(), 12);
        // Floor halves go to train.
        assert_eq!(train.class_counts(), (2, 3));
        assert_eq!(test.class_counts(), (3, 4));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let c = corpus(20, 20);
        let (a1, _) = c.split_half(&mut ChaCha8Rng::seed_from_u64(9));
        let (a2, _) = c.split_half(&mut ChaCha8Rng::seed_from_u64(9));
        let ids1: Vec<Label> = a1.sessions.iter().map(|s| s.label).collect();
        let ids2: Vec<Label> = a2.sessions.iter().map(|s| s.label).collect();
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn features_at_filters_short_sessions() {
        let mut c = corpus(2, 2);
        c.push(vec![], Label::Human); // Zero-length session.
        let feats = c.features_at(20, 10);
        assert_eq!(feats.len(), 4, "short session excluded");
    }
}
