//! The 12 per-session attributes of Table 2.
//!
//! | Attribute | Explanation |
//! |---|---|
//! | `HEAD %` | % of HEAD commands |
//! | `HTML %` | % of HTML requests |
//! | `IMAGE %` | % of image requests |
//! | `CGI %` | % of CGI requests |
//! | `REFERRER %` | % of requests with referrer |
//! | `UNSEEN REFERRER %` | % of requests with unvisited referrer |
//! | `EMBEDDED OBJ %` | % of embedded object requests |
//! | `LINK FOLLOWING %` | % of link requests |
//! | `RESPCODE 2XX %` | % of response code 2xx |
//! | `RESPCODE 3XX %` | % of response code 3xx |
//! | `RESPCODE 4XX %` | % of response code 4xx |
//! | `FAVICON %` | % of favicon.ico requests |
//!
//! Classifiers are built "at multiples of 20 requests" — the classifier at
//! checkpoint `n` computes these attributes over the session's first `n`
//! requests only, which [`extract_prefix`] implements.

use botwall_http::{ContentClass, Method};
use botwall_sessions::{RequestRecord, SessionCounters};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of attributes.
pub const ATTRIBUTE_COUNT: usize = 12;

/// One of the 12 Table-2 attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Share of HEAD commands.
    HeadPct,
    /// Share of HTML requests.
    HtmlPct,
    /// Share of image requests.
    ImagePct,
    /// Share of CGI requests.
    CgiPct,
    /// Share of requests with a referrer.
    ReferrerPct,
    /// Share of requests with an unvisited referrer.
    UnseenReferrerPct,
    /// Share of embedded-object requests.
    EmbeddedObjPct,
    /// Share of link-following requests.
    LinkFollowingPct,
    /// Share of 2xx responses.
    Resp2xxPct,
    /// Share of 3xx responses.
    Resp3xxPct,
    /// Share of 4xx responses.
    Resp4xxPct,
    /// Share of favicon.ico requests.
    FaviconPct,
}

impl Attribute {
    /// All attributes in Table-2 order.
    pub const ALL: [Attribute; ATTRIBUTE_COUNT] = [
        Attribute::HeadPct,
        Attribute::HtmlPct,
        Attribute::ImagePct,
        Attribute::CgiPct,
        Attribute::ReferrerPct,
        Attribute::UnseenReferrerPct,
        Attribute::EmbeddedObjPct,
        Attribute::LinkFollowingPct,
        Attribute::Resp2xxPct,
        Attribute::Resp3xxPct,
        Attribute::Resp4xxPct,
        Attribute::FaviconPct,
    ];

    /// The attribute's index in a [`FeatureVector`].
    pub fn index(self) -> usize {
        Attribute::ALL
            .iter()
            .position(|a| *a == self)
            .expect("in ALL")
    }

    /// The paper's name for the attribute.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::HeadPct => "HEAD %",
            Attribute::HtmlPct => "HTML %",
            Attribute::ImagePct => "IMAGE %",
            Attribute::CgiPct => "CGI %",
            Attribute::ReferrerPct => "REFERRER %",
            Attribute::UnseenReferrerPct => "UNSEEN REFERRER %",
            Attribute::EmbeddedObjPct => "EMBEDDED OBJ %",
            Attribute::LinkFollowingPct => "LINK FOLLOWING %",
            Attribute::Resp2xxPct => "RESPCODE 2XX %",
            Attribute::Resp3xxPct => "RESPCODE 3XX %",
            Attribute::Resp4xxPct => "RESPCODE 4XX %",
            Attribute::FaviconPct => "FAVICON %",
        }
    }
}

/// A 12-dimensional feature vector; each component is a share in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub [f64; ATTRIBUTE_COUNT]);

impl FeatureVector {
    /// The zero vector.
    pub fn zero() -> FeatureVector {
        FeatureVector([0.0; ATTRIBUTE_COUNT])
    }

    /// The value of one attribute.
    pub fn get(&self, a: Attribute) -> f64 {
        self.0[a.index()]
    }

    /// All values in Table-2 order.
    pub fn values(&self) -> &[f64; ATTRIBUTE_COUNT] {
        &self.0
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (a, v) in Attribute::ALL.iter().zip(self.0.iter()) {
            writeln!(f, "{:<20} {:6.3}", a.name(), v)?;
        }
        Ok(())
    }
}

/// Extracts features from the first `upto` records of a session (all of
/// them when `upto >= records.len()`).
///
/// # Examples
///
/// ```
/// use botwall_ml::features::{extract_prefix, Attribute};
/// use botwall_sessions::RequestRecord;
/// let records: Vec<RequestRecord> = vec![];
/// let fv = extract_prefix(&records, 20);
/// assert_eq!(fv.get(Attribute::HtmlPct), 0.0);
/// ```
pub fn extract_prefix(records: &[RequestRecord], upto: usize) -> FeatureVector {
    let n = upto.min(records.len());
    if n == 0 {
        return FeatureVector::zero();
    }
    let mut counters = SessionCounters::new();
    for rec in &records[..n] {
        counters.update(rec);
    }
    extract_from_counters(&counters)
}

/// Extracts features from pre-accumulated counters (the full session).
pub fn extract_from_counters(c: &SessionCounters) -> FeatureVector {
    let mut v = [0.0; ATTRIBUTE_COUNT];
    v[Attribute::HeadPct.index()] = c.ratio(c.head);
    v[Attribute::HtmlPct.index()] = c.ratio(c.html);
    v[Attribute::ImagePct.index()] = c.ratio(c.image);
    v[Attribute::CgiPct.index()] = c.ratio(c.cgi);
    v[Attribute::ReferrerPct.index()] = c.ratio(c.with_referer);
    v[Attribute::UnseenReferrerPct.index()] = c.ratio(c.unseen_referer);
    v[Attribute::EmbeddedObjPct.index()] = c.ratio(c.embedded_obj);
    v[Attribute::LinkFollowingPct.index()] = c.ratio(c.link_following);
    v[Attribute::Resp2xxPct.index()] = c.ratio(c.resp_2xx);
    v[Attribute::Resp3xxPct.index()] = c.ratio(c.resp_3xx);
    v[Attribute::Resp4xxPct.index()] = c.ratio(c.resp_4xx);
    v[Attribute::FaviconPct.index()] = c.ratio(c.favicon);
    FeatureVector(v)
}

/// Builds a synthetic record for tests and generators.
pub fn make_record(
    index: u32,
    method: Method,
    class: ContentClass,
    status_class: u8,
    has_referer: bool,
    referer_seen: bool,
) -> RequestRecord {
    RequestRecord {
        index,
        time: botwall_sessions::SimTime::from_secs(index as u64),
        method,
        class,
        status_class,
        has_referer,
        referer_seen: referer_seen && has_referer,
        url_hash: index as u64,
        bytes: 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn html(i: u32) -> RequestRecord {
        make_record(i, Method::Get, ContentClass::Html, 2, false, false)
    }

    fn image(i: u32) -> RequestRecord {
        make_record(i, Method::Get, ContentClass::Image, 2, true, true)
    }

    #[test]
    fn attribute_indices_are_bijective() {
        for (i, a) in Attribute::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Attribute::Resp3xxPct.name(), "RESPCODE 3XX %");
        assert_eq!(Attribute::UnseenReferrerPct.name(), "UNSEEN REFERRER %");
    }

    #[test]
    fn extract_prefix_respects_cutoff() {
        let recs: Vec<RequestRecord> = (1..=10)
            .map(|i| if i <= 5 { html(i) } else { image(i) })
            .collect();
        let at5 = extract_prefix(&recs, 5);
        assert_eq!(at5.get(Attribute::HtmlPct), 1.0);
        assert_eq!(at5.get(Attribute::ImagePct), 0.0);
        let at10 = extract_prefix(&recs, 10);
        assert_eq!(at10.get(Attribute::HtmlPct), 0.5);
        assert_eq!(at10.get(Attribute::ImagePct), 0.5);
        // Beyond the end behaves like the full session.
        assert_eq!(extract_prefix(&recs, 99), at10);
    }

    #[test]
    fn shares_are_in_unit_interval_and_consistent() {
        let recs: Vec<RequestRecord> = (1..=20)
            .map(|i| match i % 4 {
                0 => make_record(i, Method::Head, ContentClass::Html, 3, false, false),
                1 => html(i),
                2 => image(i),
                _ => make_record(i, Method::Get, ContentClass::Cgi, 4, true, false),
            })
            .collect();
        let fv = extract_prefix(&recs, 20);
        for (a, v) in Attribute::ALL.iter().zip(fv.values()) {
            assert!((0.0..=1.0).contains(v), "{} out of range: {v}", a.name());
        }
        assert!((fv.get(Attribute::HeadPct) - 0.25).abs() < 1e-12);
        assert!((fv.get(Attribute::CgiPct) - 0.25).abs() < 1e-12);
        assert!((fv.get(Attribute::Resp4xxPct) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_zero_vector() {
        assert_eq!(extract_prefix(&[], 10), FeatureVector::zero());
    }

    #[test]
    fn display_renders_all_rows() {
        let s = FeatureVector::zero().to_string();
        for a in Attribute::ALL {
            assert!(s.contains(a.name()));
        }
    }
}
