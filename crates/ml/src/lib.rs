//! Machine learning for `botwall` (§4.2 of the paper) plus the baseline
//! classifiers of §5.
//!
//! The paper's ML study extracts 12 per-session attributes (Table 2),
//! trains AdaBoost with 200 rounds of decision stumps on a
//! CAPTCHA-labelled corpus, and measures accuracy as a function of how
//! many requests the classifier may observe (Figure 4: 91–95%). The most
//! informative attributes were `RESPCODE 3XX %`, `REFERRER %` and
//! `UNSEEN REFERRER %`.
//!
//! * [`features`] — the Table-2 attribute extractor (prefix-capable for
//!   the checkpoint protocol)
//! * [`stump`] / [`adaboost`] — the learner
//! * [`dataset`] — corpora and the stratified half/half split
//! * [`eval`] — confusion matrices and the Figure-4 checkpoint sweep
//! * [`boundary`] — adapter into `botwall-core`'s staged pipeline
//! * [`baselines`] — UA signature matching, a Tan&Kumar-style decision
//!   tree, and Robot Exclusion Protocol compliance checking
//!
//! # Examples
//!
//! ```
//! use botwall_core::Label;
//! use botwall_ml::adaboost::{AdaBoostConfig, AdaBoostModel};
//! use botwall_ml::features::{Attribute, FeatureVector};
//!
//! // A toy task: robots never send referrers.
//! let samples: Vec<(FeatureVector, Label)> = (0..30)
//!     .map(|i| {
//!         let mut x = FeatureVector::zero();
//!         x.0[Attribute::ReferrerPct.index()] = i as f64 / 30.0;
//!         (x, if i < 15 { Label::Robot } else { Label::Human })
//!     })
//!     .collect();
//! let model = AdaBoostModel::train(&samples, &AdaBoostConfig::default());
//! assert_eq!(model.accuracy(&samples), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaboost;
pub mod baselines;
pub mod boundary;
pub mod dataset;
pub mod eval;
pub mod features;
pub mod stump;

pub use adaboost::{AdaBoostConfig, AdaBoostModel};
pub use boundary::AdaBoostBoundary;
pub use dataset::{Corpus, LabelledSession};
pub use eval::{checkpoint_sweep, evaluate, CheckpointResult, ConfusionMatrix};
pub use features::{Attribute, FeatureVector, ATTRIBUTE_COUNT};
pub use stump::DecisionStump;
