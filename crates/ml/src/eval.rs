//! Evaluation: confusion matrices and the Figure-4 checkpoint sweep.

use crate::adaboost::{AdaBoostConfig, AdaBoostModel};
use crate::dataset::Corpus;
use crate::features::FeatureVector;
use botwall_core::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix with Robot as the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Robots classified as robots.
    pub true_positive: u64,
    /// Humans classified as robots.
    pub false_positive: u64,
    /// Humans classified as humans.
    pub true_negative: u64,
    /// Robots classified as humans.
    pub false_negative: u64,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    pub fn tally(pairs: impl IntoIterator<Item = (Label, Label)>) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for (predicted, actual) in pairs {
            match (predicted, actual) {
                (Label::Robot, Label::Robot) => m.true_positive += 1,
                (Label::Robot, Label::Human) => m.false_positive += 1,
                (Label::Human, Label::Human) => m.true_negative += 1,
                (Label::Human, Label::Robot) => m.false_negative += 1,
            }
        }
        m
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / t as f64
    }

    /// Robot precision.
    pub fn precision(&self) -> f64 {
        let d = self.true_positive + self.false_positive;
        if d == 0 {
            0.0
        } else {
            self.true_positive as f64 / d as f64
        }
    }

    /// Robot recall.
    pub fn recall(&self) -> f64 {
        let d = self.true_positive + self.false_negative;
        if d == 0 {
            0.0
        } else {
            self.true_positive as f64 / d as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate (humans misclassified as robots).
    pub fn false_positive_rate(&self) -> f64 {
        let d = self.false_positive + self.true_negative;
        if d == 0 {
            0.0
        } else {
            self.false_positive as f64 / d as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TP={} FP={} TN={} FN={}",
            self.true_positive, self.false_positive, self.true_negative, self.false_negative
        )?;
        write!(
            f,
            "acc={:.3} prec={:.3} rec={:.3} f1={:.3} fpr={:.3}",
            self.accuracy(),
            self.precision(),
            self.recall(),
            self.f1(),
            self.false_positive_rate()
        )
    }
}

/// Evaluates a trained model on `(feature, label)` pairs.
pub fn evaluate(model: &AdaBoostModel, samples: &[(FeatureVector, Label)]) -> ConfusionMatrix {
    ConfusionMatrix::tally(samples.iter().map(|(x, l)| (model.classify(x), *l)))
}

/// One point of the Figure-4 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointResult {
    /// The request count the classifier was built at.
    pub checkpoint: usize,
    /// Accuracy on the training set, percent.
    pub train_accuracy_pct: f64,
    /// Accuracy on the test set, percent.
    pub test_accuracy_pct: f64,
    /// Weak learners in the ensemble.
    pub model_size: usize,
}

/// Runs the paper's Figure-4 protocol: for each checkpoint (multiples of
/// 20 requests), build a classifier on the training half using features
/// over the first `checkpoint` requests and measure accuracy on both
/// halves.
pub fn checkpoint_sweep(
    train: &Corpus,
    test: &Corpus,
    checkpoints: &[usize],
    config: &AdaBoostConfig,
) -> Vec<CheckpointResult> {
    checkpoints
        .iter()
        .map(|&cp| {
            let train_set = train.features_at(cp, 1);
            let test_set = test.features_at(cp, 1);
            let model = AdaBoostModel::train(&train_set, config);
            CheckpointResult {
                checkpoint: cp,
                train_accuracy_pct: model.accuracy(&train_set) * 100.0,
                test_accuracy_pct: model.accuracy(&test_set) * 100.0,
                model_size: model.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{make_record, Attribute};
    use botwall_http::{ContentClass, Method};
    use botwall_sessions::RequestRecord;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn confusion_matrix_arithmetic() {
        let m = ConfusionMatrix {
            true_positive: 40,
            false_positive: 10,
            true_negative: 45,
            false_negative: 5,
        };
        assert_eq!(m.total(), 100);
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 40.0 / 45.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 10.0 / 55.0).abs() < 1e-12);
        assert!(m.f1() > 0.0);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn tally_maps_quadrants() {
        let m = ConfusionMatrix::tally([
            (Label::Robot, Label::Robot),
            (Label::Robot, Label::Human),
            (Label::Human, Label::Human),
            (Label::Human, Label::Robot),
        ]);
        assert_eq!(m.true_positive, 1);
        assert_eq!(m.false_positive, 1);
        assert_eq!(m.true_negative, 1);
        assert_eq!(m.false_negative, 1);
    }

    /// Synthetic corpus where humans fetch images with referrers and
    /// robots fetch bare HTML; noisy.
    fn corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Corpus::new();
        for _ in 0..n {
            let robot = rng.gen_bool(0.5);
            let recs: Vec<RequestRecord> = (1..=160)
                .map(|j| {
                    let noise = rng.gen_bool(0.15);
                    let human_like = robot == noise;
                    if human_like {
                        make_record(j, Method::Get, ContentClass::Image, 2, true, true)
                    } else {
                        make_record(j, Method::Get, ContentClass::Html, 2, false, false)
                    }
                })
                .collect();
            c.push(recs, if robot { Label::Robot } else { Label::Human });
        }
        c
    }

    #[test]
    fn sweep_produces_one_result_per_checkpoint() {
        let all = corpus(120, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (train, test) = all.split_half(&mut rng);
        let cps = [20, 40, 80];
        let results = checkpoint_sweep(
            &train,
            &test,
            &cps,
            &AdaBoostConfig {
                rounds: 30,
                ..AdaBoostConfig::default()
            },
        );
        assert_eq!(results.len(), 3);
        for (r, cp) in results.iter().zip(cps) {
            assert_eq!(r.checkpoint, cp);
            assert!(r.test_accuracy_pct > 60.0, "accuracy {r:?}");
            assert!(r.train_accuracy_pct >= r.test_accuracy_pct - 15.0);
        }
    }

    #[test]
    fn more_requests_do_not_hurt_much() {
        // Later checkpoints see more data per session; accuracy at 160
        // must not be materially below accuracy at 20 on this noise model.
        let all = corpus(200, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (train, test) = all.split_half(&mut rng);
        let results = checkpoint_sweep(
            &train,
            &test,
            &[20, 160],
            &AdaBoostConfig {
                rounds: 40,
                ..AdaBoostConfig::default()
            },
        );
        assert!(results[1].test_accuracy_pct >= results[0].test_accuracy_pct - 2.0);
    }

    #[test]
    fn evaluate_agrees_with_model_accuracy() {
        let all = corpus(80, 11);
        let samples = all.features_at(40, 1);
        let model = AdaBoostModel::train(
            &samples,
            &AdaBoostConfig {
                rounds: 20,
                ..AdaBoostConfig::default()
            },
        );
        let m = evaluate(&model, &samples);
        assert!((m.accuracy() - model.accuracy(&samples)).abs() < 1e-12);
        let _ = Attribute::ALL; // silence unused import paths in some cfgs
    }
}
