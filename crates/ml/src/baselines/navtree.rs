//! A Tan & Kumar-style navigational-pattern decision tree.
//!
//! Tan & Kumar (*Discovery of Web robot sessions based on their
//! navigational patterns*, DMKD 2002) classify sessions offline with a
//! decision tree over navigational features. The paper contrasts its own
//! scheme with this approach: the tree is accurate given many requests but
//! "is not adequate for real-time traffic analysis". We implement a
//! greedy entropy-split tree over the same Table-2 feature space to serve
//! as that baseline in the ablation benches.

use crate::features::{FeatureVector, ATTRIBUTE_COUNT};
use botwall_core::Label;
use serde::{Deserialize, Serialize};

/// Configuration for tree induction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_split: 8,
        }
    }
}

/// A node of the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(Label),
    Split {
        attribute: usize,
        threshold: f64,
        below: Box<Node>,
        above: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    nodes: usize,
}

impl DecisionTree {
    /// Trains a tree by greedy entropy minimization.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(samples: &[(FeatureVector, Label)], config: &TreeConfig) -> DecisionTree {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut nodes = 0;
        let root = build(samples, &idx, config, 0, &mut nodes);
        DecisionTree { root, nodes }
    }

    /// Classifies one feature vector.
    pub fn classify(&self, x: &FeatureVector) -> Label {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(l) => return *l,
                Node::Split {
                    attribute,
                    threshold,
                    below,
                    above,
                } => {
                    node = if x.0[*attribute] <= *threshold {
                        below
                    } else {
                        above
                    };
                }
            }
        }
    }

    /// Fraction of `samples` classified correctly.
    pub fn accuracy(&self, samples: &[(FeatureVector, Label)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .filter(|(x, l)| self.classify(x) == *l)
            .count() as f64
            / samples.len() as f64
    }

    /// Total node count (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

fn majority(samples: &[(FeatureVector, Label)], idx: &[usize]) -> Label {
    let robots = idx
        .iter()
        .filter(|&&i| samples[i].1 == Label::Robot)
        .count();
    if robots * 2 >= idx.len() {
        Label::Robot
    } else {
        Label::Human
    }
}

fn entropy(robots: usize, total: usize) -> f64 {
    if total == 0 || robots == 0 || robots == total {
        return 0.0;
    }
    let p = robots as f64 / total as f64;
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

fn build(
    samples: &[(FeatureVector, Label)],
    idx: &[usize],
    config: &TreeConfig,
    depth: usize,
    nodes: &mut usize,
) -> Node {
    *nodes += 1;
    let robots = idx
        .iter()
        .filter(|&&i| samples[i].1 == Label::Robot)
        .count();
    if depth >= config.max_depth
        || idx.len() < config.min_split
        || robots == 0
        || robots == idx.len()
    {
        return Node::Leaf(majority(samples, idx));
    }
    let parent_h = entropy(robots, idx.len());
    let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, gain)
    let mut sorted = idx.to_vec();
    for attr in 0..ATTRIBUTE_COUNT {
        sorted.sort_by(|&a, &b| {
            samples[a].0 .0[attr]
                .partial_cmp(&samples[b].0 .0[attr])
                .expect("finite")
        });
        let mut robots_le = 0usize;
        for (pos, &i) in sorted.iter().enumerate() {
            if samples[i].1 == Label::Robot {
                robots_le += 1;
            }
            if pos + 1 >= sorted.len() {
                break;
            }
            let v = samples[i].0 .0[attr];
            let next = samples[sorted[pos + 1]].0 .0[attr];
            if v == next {
                continue;
            }
            let n_le = pos + 1;
            let n_gt = sorted.len() - n_le;
            let h = (n_le as f64 * entropy(robots_le, n_le)
                + n_gt as f64 * entropy(robots - robots_le, n_gt))
                / sorted.len() as f64;
            let gain = parent_h - h;
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((attr, (v + next) / 2.0, gain));
            }
        }
    }
    let Some((attribute, threshold, _)) = best else {
        return Node::Leaf(majority(samples, idx));
    };
    let (below_idx, above_idx): (Vec<usize>, Vec<usize>) = idx
        .iter()
        .partition(|&&i| samples[i].0 .0[attribute] <= threshold);
    if below_idx.is_empty() || above_idx.is_empty() {
        return Node::Leaf(majority(samples, idx));
    }
    Node::Split {
        attribute,
        threshold,
        below: Box::new(build(samples, &below_idx, config, depth + 1, nodes)),
        above: Box::new(build(samples, &above_idx, config, depth + 1, nodes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Attribute;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fv(pairs: &[(Attribute, f64)]) -> FeatureVector {
        let mut x = FeatureVector::zero();
        for (a, v) in pairs {
            x.0[a.index()] = *v;
        }
        x
    }

    #[test]
    fn learns_an_axis_aligned_rule() {
        let samples: Vec<(FeatureVector, Label)> = (0..40)
            .map(|i| {
                let v = i as f64 / 40.0;
                (
                    fv(&[(Attribute::HtmlPct, v)]),
                    if v > 0.6 { Label::Robot } else { Label::Human },
                )
            })
            .collect();
        let tree = DecisionTree::train(&samples, &TreeConfig::default());
        assert_eq!(tree.accuracy(&samples), 1.0);
    }

    #[test]
    fn learns_a_two_attribute_interaction() {
        // Robot iff HTML high AND REFERRER low — needs depth 2.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let samples: Vec<(FeatureVector, Label)> = (0..300)
            .map(|_| {
                let html: f64 = rng.gen();
                let refr: f64 = rng.gen();
                let label = if html > 0.5 && refr < 0.5 {
                    Label::Robot
                } else {
                    Label::Human
                };
                (
                    fv(&[(Attribute::HtmlPct, html), (Attribute::ReferrerPct, refr)]),
                    label,
                )
            })
            .collect();
        let tree = DecisionTree::train(&samples, &TreeConfig::default());
        assert!(tree.accuracy(&samples) > 0.95);
        assert!(tree.node_count() >= 3, "must actually split");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let samples: Vec<(FeatureVector, Label)> = (0..200)
            .map(|_| {
                let x: f64 = rng.gen();
                (
                    fv(&[(Attribute::CgiPct, x)]),
                    if rng.gen_bool(0.5) {
                        Label::Robot
                    } else {
                        Label::Human
                    },
                )
            })
            .collect();
        let shallow = DecisionTree::train(
            &samples,
            &TreeConfig {
                max_depth: 1,
                min_split: 2,
            },
        );
        // Depth 1: at most one split, three nodes.
        assert!(shallow.node_count() <= 3);
    }

    #[test]
    fn pure_leaves_stop_recursion() {
        let samples = vec![
            (fv(&[(Attribute::HtmlPct, 0.1)]), Label::Human),
            (fv(&[(Attribute::HtmlPct, 0.2)]), Label::Human),
        ];
        let tree = DecisionTree::train(&samples, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(
            tree.classify(&fv(&[(Attribute::HtmlPct, 0.9)])),
            Label::Human
        );
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(0, 10), 0.0);
        assert_eq!(entropy(10, 10), 0.0);
        assert!((entropy(5, 10) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(0, 0), 0.0);
    }
}
