//! Robot Exclusion Protocol compliance checking.
//!
//! §5: "Web robots are supposed to adhere to the robot exclusion protocol,
//! which specifies easily-identified User-Agent fields, with contact
//! information. Before crawling a site, robots should also retrieve a file
//! called robots.txt … Unfortunately, this protocol is entirely advisory,
//! and malicious robots have no incentive to follow it." This baseline
//! identifies only the polite robots and necessarily misses everything
//! else — that asymmetry is what the experiments demonstrate.

use botwall_core::Label;
use botwall_http::{Request, UserAgent};
use serde::{Deserialize, Serialize};

/// What the REP checker concluded about one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepVerdict {
    /// Fetched robots.txt and/or self-identified: a declared robot.
    DeclaredRobot,
    /// No REP signals: could be anything (human or impolite robot).
    Unknown,
}

/// Tracks REP signals within a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepChecker {
    fetched_robots_txt: bool,
    declared_ua: bool,
}

impl RepChecker {
    /// Creates a checker.
    pub fn new() -> RepChecker {
        RepChecker::default()
    }

    /// Feeds one request.
    pub fn observe(&mut self, request: &Request) {
        if request.uri().path().eq_ignore_ascii_case("/robots.txt") {
            self.fetched_robots_txt = true;
        }
        if matches!(
            UserAgent::parse(request.user_agent()),
            UserAgent::DeclaredRobot(_)
        ) {
            self.declared_ua = true;
        }
    }

    /// Whether the session fetched `/robots.txt`.
    pub fn fetched_robots_txt(&self) -> bool {
        self.fetched_robots_txt
    }

    /// Whether the session declared a robot User-Agent.
    pub fn declared_ua(&self) -> bool {
        self.declared_ua
    }

    /// The REP verdict.
    pub fn verdict(&self) -> RepVerdict {
        if self.fetched_robots_txt || self.declared_ua {
            RepVerdict::DeclaredRobot
        } else {
            RepVerdict::Unknown
        }
    }

    /// Collapses the verdict to a label: unknown sessions must be presumed
    /// human (the protocol gives no evidence either way), which is exactly
    /// why REP alone cannot secure a service.
    pub fn label(&self) -> Label {
        match self.verdict() {
            RepVerdict::DeclaredRobot => Label::Robot,
            RepVerdict::Unknown => Label::Human,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_http::Method;

    fn req(uri: &str, ua: Option<&str>) -> Request {
        let mut b = Request::builder(Method::Get, uri).client(ClientIp::new(1));
        if let Some(ua) = ua {
            b = b.header("User-Agent", ua);
        }
        b.build().unwrap()
    }

    #[test]
    fn polite_crawler_is_declared() {
        let mut c = RepChecker::new();
        c.observe(&req(
            "http://h/robots.txt",
            Some("GoodBot/1.0 (+http://g.example)"),
        ));
        assert!(c.fetched_robots_txt());
        assert!(c.declared_ua());
        assert_eq!(c.verdict(), RepVerdict::DeclaredRobot);
        assert_eq!(c.label(), Label::Robot);
    }

    #[test]
    fn robots_txt_alone_is_enough() {
        let mut c = RepChecker::new();
        c.observe(&req("http://h/ROBOTS.TXT", Some("Mozilla/5.0")));
        assert_eq!(c.verdict(), RepVerdict::DeclaredRobot);
    }

    #[test]
    fn malicious_robot_evades_rep_entirely() {
        let mut c = RepChecker::new();
        // A referrer spammer with a forged browser UA and no robots.txt.
        for i in 0..50 {
            c.observe(&req(
                &format!("http://h/page{i}.html"),
                Some("Mozilla/4.0 (compatible; MSIE 6.0)"),
            ));
        }
        assert_eq!(c.verdict(), RepVerdict::Unknown);
        assert_eq!(c.label(), Label::Human, "the advisory protocol misses it");
    }

    #[test]
    fn human_is_unknown() {
        let mut c = RepChecker::new();
        c.observe(&req("http://h/index.html", Some("Opera/8.51")));
        assert_eq!(c.verdict(), RepVerdict::Unknown);
    }
}
