//! Baseline classifiers the paper positions itself against (§5).
//!
//! * [`ua_signatures`] — the ad-hoc per-site signature matching the paper
//!   says "has not been scaling" as robots evolve.
//! * [`navtree`] — a Tan & Kumar-style navigational-pattern decision tree:
//!   accurate offline, but "not adequate for real-time traffic analysis
//!   since it requires a relatively large number of requests".
//! * [`rep`] — the Robot Exclusion Protocol: purely advisory; catches only
//!   robots polite enough to identify themselves.

pub mod navtree;
pub mod rep;
pub mod ua_signatures;
