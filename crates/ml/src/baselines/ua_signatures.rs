//! Ad-hoc User-Agent signature matching.
//!
//! "Previous work to identify malicious robots has relied on ad-hoc
//! signature matching and has been performed on a per-site basis. As Web
//! robots evolve and diversify, these techniques have not been scaling."
//! This baseline exists so the experiments can demonstrate exactly that:
//! it catches self-identifying robots and nothing else, and any forged
//! browser string sails through.

use botwall_core::Label;
use serde::{Deserialize, Serialize};

/// A User-Agent substring blacklist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UaSignatureMatcher {
    patterns: Vec<String>,
}

impl Default for UaSignatureMatcher {
    fn default() -> Self {
        UaSignatureMatcher::with_standard_patterns()
    }
}

impl UaSignatureMatcher {
    /// An empty matcher.
    pub fn new() -> UaSignatureMatcher {
        UaSignatureMatcher {
            patterns: Vec::new(),
        }
    }

    /// The kind of blacklist a 2006 site operator maintained by hand.
    pub fn with_standard_patterns() -> UaSignatureMatcher {
        UaSignatureMatcher {
            patterns: [
                "bot",
                "crawler",
                "spider",
                "wget",
                "curl",
                "libwww",
                "slurp",
                "harvest",
                "scan",
                "fetch",
                "archiver",
                "java/",
                "python-urllib",
                "lwp::",
                "emailsiphon",
                "emailcollector",
                "webzip",
                "offline explorer",
                "teleport",
                "httrack",
                "webcopier",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }

    /// Adds a pattern (matched case-insensitively as a substring).
    pub fn add(&mut self, pattern: impl Into<String>) {
        self.patterns.push(pattern.into().to_ascii_lowercase());
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no patterns are loaded.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Classifies a session by its User-Agent string alone.
    ///
    /// Missing or empty strings are treated as robots (no browser omits
    /// the header); anything else not on the blacklist is presumed human —
    /// which is precisely the weakness.
    pub fn classify(&self, user_agent: Option<&str>) -> Label {
        let Some(ua) = user_agent else {
            return Label::Robot;
        };
        let ua = ua.trim();
        if ua.is_empty() {
            return Label::Robot;
        }
        let lower = ua.to_ascii_lowercase();
        if self.patterns.iter().any(|p| lower.contains(p.as_str())) {
            Label::Robot
        } else {
            Label::Human
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_self_identifying_robots() {
        let m = UaSignatureMatcher::default();
        for ua in [
            "Googlebot/2.1 (+http://www.google.com/bot.html)",
            "Wget/1.10.2",
            "WebZIP/5.0",
            "HTTrack/3.40",
        ] {
            assert_eq!(m.classify(Some(ua)), Label::Robot, "{ua}");
        }
    }

    #[test]
    fn missing_or_empty_ua_is_robot() {
        let m = UaSignatureMatcher::default();
        assert_eq!(m.classify(None), Label::Robot);
        assert_eq!(m.classify(Some("")), Label::Robot);
        assert_eq!(m.classify(Some("   ")), Label::Robot);
    }

    #[test]
    fn forged_browser_strings_pass_undetected() {
        // The structural weakness the paper calls out.
        let m = UaSignatureMatcher::default();
        assert_eq!(
            m.classify(Some("Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)")),
            Label::Human,
            "a forging robot evades signatures entirely"
        );
    }

    #[test]
    fn custom_patterns() {
        let mut m = UaSignatureMatcher::new();
        assert!(m.is_empty());
        m.add("EvilClient");
        assert_eq!(m.len(), 1);
        assert_eq!(m.classify(Some("evilclient/9")), Label::Robot);
        assert_eq!(m.classify(Some("NiceClient/1")), Label::Human);
    }
}
