//! Decision stumps — the weak learners for AdaBoost.
//!
//! A stump thresholds one attribute: `predict Robot if x[attr] > t`
//! (or the flipped polarity). Training finds the (attribute, threshold,
//! polarity) triple minimizing weighted error by sorting each attribute's
//! values and scanning candidate cut points.

use crate::features::{FeatureVector, ATTRIBUTE_COUNT};
use botwall_core::Label;
use serde::{Deserialize, Serialize};

/// A single-attribute threshold classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionStump {
    /// Index of the attribute tested.
    pub attribute: usize,
    /// Decision threshold.
    pub threshold: f64,
    /// If `true`, predicts Robot when the value is **greater** than the
    /// threshold; if `false`, predicts Robot when **less or equal**.
    pub robot_above: bool,
}

impl DecisionStump {
    /// Classifies one feature vector.
    pub fn classify(&self, x: &FeatureVector) -> Label {
        let v = x.0[self.attribute];
        let above = v > self.threshold;
        if above == self.robot_above {
            Label::Robot
        } else {
            Label::Human
        }
    }

    /// Trains the stump minimizing weighted error over `samples`
    /// (`weights` must be non-negative and sum to something positive).
    ///
    /// Returns the stump and its weighted error.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or lengths differ.
    pub fn train(samples: &[(FeatureVector, Label)], weights: &[f64]) -> (DecisionStump, f64) {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        assert_eq!(samples.len(), weights.len(), "weight per sample");
        let total: f64 = weights.iter().sum();
        let mut best = DecisionStump {
            attribute: 0,
            threshold: 0.0,
            robot_above: true,
        };
        let mut best_err = f64::INFINITY;
        // Weight of all robots (used to initialize the scan).
        let robot_weight: f64 = samples
            .iter()
            .zip(weights)
            .filter(|((_, l), _)| *l == Label::Robot)
            .map(|(_, w)| *w)
            .sum();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for attr in 0..ATTRIBUTE_COUNT {
            order.sort_by(|&a, &b| {
                samples[a].0 .0[attr]
                    .partial_cmp(&samples[b].0 .0[attr])
                    .expect("features are finite")
            });
            // Scan thresholds between consecutive distinct values.
            // Invariant while scanning: `robot_le` / `human_le` are the
            // weights of robot/human samples with value <= current cut.
            let mut robot_le = 0.0;
            let mut human_le = 0.0;
            let mut i = 0;
            while i < order.len() {
                let v = samples[order[i]].0 .0[attr];
                // Absorb the whole run of equal values.
                while i < order.len() && samples[order[i]].0 .0[attr] == v {
                    let idx = order[i];
                    match samples[idx].1 {
                        Label::Robot => robot_le += weights[idx],
                        Label::Human => human_le += weights[idx],
                    }
                    i += 1;
                }
                let threshold = if i < order.len() {
                    (v + samples[order[i]].0 .0[attr]) / 2.0
                } else {
                    // Threshold above the max: "above" side is empty.
                    v
                };
                // Polarity robot_above=true: predict Robot for x > t.
                // Errors: humans above t (human_total - human_le) plus
                // robots at or below t (robot_le).
                let err_above = robot_le + (total - robot_weight - human_le);
                // Flipped polarity errors are the complement.
                let err_below = total - err_above;
                for (err, robot_above) in [(err_above, true), (err_below, false)] {
                    if err < best_err {
                        best_err = err;
                        best = DecisionStump {
                            attribute: attr,
                            threshold,
                            robot_above,
                        };
                    }
                }
            }
        }
        (best, best_err / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Attribute;

    fn fv(attr: Attribute, v: f64) -> FeatureVector {
        let mut x = FeatureVector::zero();
        x.0[attr.index()] = v;
        x
    }

    #[test]
    fn perfectly_separable_data_gets_zero_error() {
        let a = Attribute::CgiPct;
        let samples: Vec<(FeatureVector, Label)> = (0..10)
            .map(|i| {
                let v = i as f64 / 10.0;
                let label = if v > 0.45 { Label::Robot } else { Label::Human };
                (fv(a, v), label)
            })
            .collect();
        let weights = vec![1.0; samples.len()];
        let (stump, err) = DecisionStump::train(&samples, &weights);
        assert_eq!(err, 0.0);
        assert_eq!(stump.attribute, a.index());
        assert!(stump.robot_above);
        for (x, l) in &samples {
            assert_eq!(stump.classify(x), *l);
        }
    }

    #[test]
    fn flipped_polarity_is_found() {
        // Robots have LOW values here.
        let a = Attribute::ImagePct;
        let samples: Vec<(FeatureVector, Label)> = (0..10)
            .map(|i| {
                let v = i as f64 / 10.0;
                let label = if v < 0.5 { Label::Robot } else { Label::Human };
                (fv(a, v), label)
            })
            .collect();
        let weights = vec![1.0; samples.len()];
        let (stump, err) = DecisionStump::train(&samples, &weights);
        assert_eq!(err, 0.0);
        assert!(!stump.robot_above);
    }

    #[test]
    fn weighting_steers_the_split() {
        let a = Attribute::HtmlPct;
        // Two conflicting points; the heavy one must be classified right.
        let samples = vec![
            (fv(a, 0.2), Label::Robot),
            (fv(a, 0.2), Label::Human),
            (fv(a, 0.8), Label::Human),
        ];
        let heavy_robot = vec![10.0, 1.0, 1.0];
        let (stump, _) = DecisionStump::train(&samples, &heavy_robot);
        assert_eq!(stump.classify(&fv(a, 0.2)), Label::Robot);
        let heavy_human = vec![1.0, 10.0, 1.0];
        let (stump, _) = DecisionStump::train(&samples, &heavy_human);
        assert_eq!(stump.classify(&fv(a, 0.2)), Label::Human);
    }

    #[test]
    fn error_matches_exhaustive_search() {
        // Brute-force over a dense threshold grid must not beat the
        // trained stump.
        let a = Attribute::Resp3xxPct;
        let samples: Vec<(FeatureVector, Label)> = [
            (0.1, Label::Human),
            (0.3, Label::Robot),
            (0.35, Label::Human),
            (0.5, Label::Robot),
            (0.7, Label::Robot),
            (0.9, Label::Human),
        ]
        .iter()
        .map(|(v, l)| (fv(a, *v), *l))
        .collect();
        let weights = vec![1.0; samples.len()];
        let (_stump, err) = DecisionStump::train(&samples, &weights);
        let mut brute_best = f64::INFINITY;
        for t in 0..=100 {
            let threshold = t as f64 / 100.0;
            for robot_above in [true, false] {
                let s = DecisionStump {
                    attribute: a.index(),
                    threshold,
                    robot_above,
                };
                let e = samples.iter().filter(|(x, l)| s.classify(x) != *l).count() as f64
                    / samples.len() as f64;
                brute_best = brute_best.min(e);
            }
        }
        assert!(
            err <= brute_best + 1e-9,
            "trained {err} vs brute {brute_best}"
        );
    }

    #[test]
    fn uniform_labels_yield_zero_error() {
        let samples = vec![
            (fv(Attribute::HeadPct, 0.1), Label::Robot),
            (fv(Attribute::HeadPct, 0.9), Label::Robot),
        ];
        let (_, err) = DecisionStump::train(&samples, &[1.0, 1.0]);
        assert_eq!(err, 0.0, "predict-all-robot is error free");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        DecisionStump::train(&[], &[]);
    }
}
