//! Plugging the AdaBoost model into the staged pipeline.
//!
//! §4.1 proposes "making quick decisions by fast analysis (e.g., standard
//! browser test), then perform a careful decision algorithm for boundary
//! cases (e.g., AI-based techniques)". `botwall-core`'s
//! [`botwall_core::staged::StagedPipeline`] accepts any
//! [`botwall_core::staged::BoundaryClassifier`]; this module adapts a
//! trained [`AdaBoostModel`] to that interface.

use crate::adaboost::AdaBoostModel;
use crate::features;
use botwall_core::staged::BoundaryClassifier;
use botwall_core::Label;
use botwall_sessions::Session;

/// An [`AdaBoostModel`] usable as the ML stage of the staged pipeline.
///
/// The model abstains (returns `None`) for sessions shorter than
/// `min_requests` — the paper's point that ML "needs a relatively large
/// number of requests" to be trustworthy.
#[derive(Debug, Clone)]
pub struct AdaBoostBoundary {
    model: AdaBoostModel,
    min_requests: usize,
}

impl AdaBoostBoundary {
    /// Wraps a trained model; it abstains below `min_requests`.
    pub fn new(model: AdaBoostModel, min_requests: usize) -> AdaBoostBoundary {
        AdaBoostBoundary {
            model,
            min_requests,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &AdaBoostModel {
        &self.model
    }
}

impl BoundaryClassifier for AdaBoostBoundary {
    fn classify_session(&self, session: &Session) -> Option<Label> {
        if (session.request_count() as usize) < self.min_requests {
            return None;
        }
        let fv = features::extract_from_counters(session.counters());
        Some(self.model.classify(&fv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaboost::AdaBoostConfig;
    use crate::features::{Attribute, FeatureVector};
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, Request, Response, StatusCode};
    use botwall_sessions::{SessionTracker, SimTime, TrackerConfig};

    fn model_preferring_html_robots() -> AdaBoostModel {
        // Train a tiny model: high HTML share ⇒ robot.
        let samples: Vec<(FeatureVector, Label)> = (0..20)
            .map(|i| {
                let mut x = FeatureVector::zero();
                x.0[Attribute::HtmlPct.index()] = i as f64 / 20.0;
                (x, if i >= 10 { Label::Robot } else { Label::Human })
            })
            .collect();
        AdaBoostModel::train(&samples, &AdaBoostConfig::default())
    }

    fn html_only_session(requests: u64) -> Session {
        let t = SessionTracker::new(TrackerConfig::default());
        let mut key = None;
        for i in 0..requests {
            let r = Request::builder(Method::Get, format!("http://h/{i}.html"))
                .client(ClientIp::new(1))
                .build()
                .unwrap();
            key = Some(
                t.observe(
                    &r,
                    &Response::builder(StatusCode::OK)
                        .header("Content-Type", "text/html")
                        .build(),
                    SimTime::from_secs(i),
                ),
            );
        }
        t.get(&key.unwrap()).unwrap().clone()
    }

    #[test]
    fn abstains_below_minimum() {
        let b = AdaBoostBoundary::new(model_preferring_html_robots(), 20);
        let s = html_only_session(5);
        assert_eq!(b.classify_session(&s), None);
    }

    #[test]
    fn classifies_long_sessions() {
        let b = AdaBoostBoundary::new(model_preferring_html_robots(), 20);
        let s = html_only_session(30);
        // 100% HTML session: robot under this model.
        assert_eq!(b.classify_session(&s), Some(Label::Robot));
    }
}
