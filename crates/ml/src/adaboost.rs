//! AdaBoost over decision stumps (§4.2).
//!
//! The paper: "We used AdaBoost (Schapire) with 200 rounds" over the 12
//! Table-2 attributes, reporting 91–95% test accuracy depending on how
//! many requests the classifier sees. This is AdaBoost.M1 with the stump
//! learner from [`crate::stump`]; per-attribute cumulative `|α|` gives the
//! feature-importance ranking the paper discusses (`RESPCODE 3XX %`,
//! `REFERRER %` and `UNSEEN REFERRER %` were the most contributing).

use crate::features::{Attribute, FeatureVector, ATTRIBUTE_COUNT};
use crate::stump::DecisionStump;
use botwall_core::Label;
use serde::{Deserialize, Serialize};

/// Configuration for training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostConfig {
    /// Boosting rounds (paper: 200).
    pub rounds: usize,
    /// Stop early if the weighted error reaches this floor (perfect weak
    /// learner); the classifier is already consistent.
    pub min_error: f64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            rounds: 200,
            min_error: 1e-10,
        }
    }
}

/// A trained boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostModel {
    stumps: Vec<(DecisionStump, f64)>,
}

impl AdaBoostModel {
    /// Trains a model on labelled feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(samples: &[(FeatureVector, Label)], config: &AdaBoostConfig) -> AdaBoostModel {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let n = samples.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut stumps: Vec<(DecisionStump, f64)> = Vec::with_capacity(config.rounds);
        for _round in 0..config.rounds {
            let (stump, err) = DecisionStump::train(samples, &weights);
            if err >= 0.5 {
                // No weak learner better than chance remains.
                break;
            }
            let err_c = err.max(config.min_error);
            let alpha = 0.5 * ((1.0 - err_c) / err_c).ln();
            stumps.push((stump, alpha));
            if err <= config.min_error {
                break;
            }
            // Reweight: misclassified samples up, correct ones down.
            let mut sum = 0.0;
            for (w, (x, label)) in weights.iter_mut().zip(samples) {
                let correct = stump.classify(x) == *label;
                *w *= if correct { (-alpha).exp() } else { alpha.exp() };
                sum += *w;
            }
            for w in weights.iter_mut() {
                *w /= sum;
            }
        }
        AdaBoostModel { stumps }
    }

    /// The ensemble margin: positive means Robot, negative means Human.
    pub fn score(&self, x: &FeatureVector) -> f64 {
        self.stumps
            .iter()
            .map(|(s, alpha)| match s.classify(x) {
                Label::Robot => *alpha,
                Label::Human => -*alpha,
            })
            .sum()
    }

    /// Classifies one feature vector.
    pub fn classify(&self, x: &FeatureVector) -> Label {
        if self.score(x) > 0.0 {
            Label::Robot
        } else {
            Label::Human
        }
    }

    /// Fraction of `samples` classified correctly.
    pub fn accuracy(&self, samples: &[(FeatureVector, Label)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(x, l)| self.classify(x) == *l)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// Number of weak learners kept.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// The trained stumps with their weights.
    pub fn stumps(&self) -> &[(DecisionStump, f64)] {
        &self.stumps
    }

    /// Cumulative `|α|` per attribute, normalized to sum to 1 — the
    /// feature-importance ranking.
    pub fn importance(&self) -> Vec<(Attribute, f64)> {
        let mut acc = [0.0f64; ATTRIBUTE_COUNT];
        for (s, alpha) in &self.stumps {
            acc[s.attribute] += alpha.abs();
        }
        let total: f64 = acc.iter().sum();
        let mut out: Vec<(Attribute, f64)> = Attribute::ALL
            .iter()
            .map(|a| {
                (
                    *a,
                    if total > 0.0 {
                        acc[a.index()] / total
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Synthetic task: robots have high CGI share and low image share;
    /// plus label noise.
    fn corpus(n: usize, noise: f64, seed: u64) -> Vec<(FeatureVector, Label)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let robot = rng.gen_bool(0.5);
                let mut x = FeatureVector::zero();
                let cgi = Attribute::CgiPct.index();
                let img = Attribute::ImagePct.index();
                let r3 = Attribute::Resp3xxPct.index();
                if robot {
                    x.0[cgi] = rng.gen_range(0.3..1.0);
                    x.0[img] = rng.gen_range(0.0..0.3);
                    x.0[r3] = rng.gen_range(0.0..0.05);
                } else {
                    x.0[cgi] = rng.gen_range(0.0..0.4);
                    x.0[img] = rng.gen_range(0.2..0.8);
                    x.0[r3] = rng.gen_range(0.02..0.2);
                }
                let label = if rng.gen_bool(noise) {
                    if robot {
                        Label::Human
                    } else {
                        Label::Robot
                    }
                } else if robot {
                    Label::Robot
                } else {
                    Label::Human
                };
                (x, label)
            })
            .collect()
    }

    #[test]
    fn learns_a_separable_task_perfectly() {
        let data = corpus(400, 0.0, 1);
        let model = AdaBoostModel::train(&data, &AdaBoostConfig::default());
        assert!(
            model.accuracy(&data) > 0.99,
            "acc={}",
            model.accuracy(&data)
        );
    }

    #[test]
    fn generalizes_with_noise() {
        let train = corpus(600, 0.05, 2);
        let test = corpus(600, 0.05, 3);
        let model = AdaBoostModel::train(&train, &AdaBoostConfig::default());
        let acc = model.accuracy(&test);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn training_error_trends_down_with_rounds() {
        // The 0/1 training error is not strictly monotone round to round
        // (only the exponential-loss bound is), but it must trend down:
        // small slack between checkpoints, clear improvement end to end.
        let data = corpus(300, 0.1, 4);
        let mut prev = f64::INFINITY;
        let mut first = None;
        let mut last = 0.0;
        for rounds in [1, 5, 20, 80, 200] {
            let model = AdaBoostModel::train(
                &data,
                &AdaBoostConfig {
                    rounds,
                    ..AdaBoostConfig::default()
                },
            );
            let err = 1.0 - model.accuracy(&data);
            assert!(
                err <= prev + 0.05,
                "training error jumped: {err} > {prev} at {rounds} rounds"
            );
            first.get_or_insert(err);
            last = err;
            prev = err;
        }
        assert!(
            last <= first.unwrap(),
            "200 rounds must not be worse than 1 round: {last} vs {first:?}"
        );
    }

    #[test]
    fn importance_identifies_informative_attributes() {
        let data = corpus(500, 0.02, 5);
        let model = AdaBoostModel::train(&data, &AdaBoostConfig::default());
        let imp = model.importance();
        // The top-3 attributes must be the three the generator uses.
        let top: Vec<Attribute> = imp.iter().take(3).map(|(a, _)| *a).collect();
        for a in [
            Attribute::CgiPct,
            Attribute::ImagePct,
            Attribute::Resp3xxPct,
        ] {
            assert!(top.contains(&a), "{:?} missing from top-3 {top:?}", a);
        }
        // Importances are a distribution.
        let sum: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn early_stop_on_perfect_stump() {
        // One attribute separates perfectly: training should stop after a
        // single round.
        let data: Vec<(FeatureVector, Label)> = (0..50)
            .map(|i| {
                let mut x = FeatureVector::zero();
                x.0[0] = i as f64 / 50.0;
                (x, if i < 25 { Label::Human } else { Label::Robot })
            })
            .collect();
        let model = AdaBoostModel::train(&data, &AdaBoostConfig::default());
        assert_eq!(model.len(), 1);
        assert_eq!(model.accuracy(&data), 1.0);
    }

    #[test]
    fn score_sign_matches_classification() {
        let data = corpus(200, 0.05, 6);
        let model = AdaBoostModel::train(&data, &AdaBoostConfig::default());
        for (x, _) in &data {
            let label = model.classify(x);
            let score = model.score(x);
            match label {
                Label::Robot => assert!(score > 0.0),
                Label::Human => assert!(score <= 0.0),
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        AdaBoostModel::train(&[], &AdaBoostConfig::default());
    }
}
