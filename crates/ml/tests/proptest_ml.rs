//! Property tests for the learners.

use botwall_core::Label;
use botwall_http::{ContentClass, Method};
use botwall_ml::features::{extract_prefix, make_record, Attribute, FeatureVector};
use botwall_ml::{AdaBoostConfig, AdaBoostModel, DecisionStump};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<(FeatureVector, Label)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0.0f64..1.0, 12),
            proptest::bool::ANY,
        )
            .prop_map(|(vals, robot)| {
                let mut x = FeatureVector::zero();
                x.0.copy_from_slice(&vals);
                (x, if robot { Label::Robot } else { Label::Human })
            }),
        2..60,
    )
}

proptest! {
    /// A trained stump's weighted error never exceeds 0.5 (predicting the
    /// weighted-majority class alone achieves that), and never beats 0.
    #[test]
    fn stump_error_is_bounded(samples in arb_samples()) {
        let weights = vec![1.0; samples.len()];
        let (_, err) = DecisionStump::train(&samples, &weights);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&err), "err {err}");
    }

    /// The trained stump achieves exactly its reported error on the
    /// training set.
    #[test]
    fn stump_error_is_honest(samples in arb_samples()) {
        let weights = vec![1.0; samples.len()];
        let (stump, err) = DecisionStump::train(&samples, &weights);
        let misses = samples
            .iter()
            .filter(|(x, l)| stump.classify(x) != *l)
            .count() as f64
            / samples.len() as f64;
        prop_assert!((misses - err).abs() < 1e-9, "claimed {err}, actual {misses}");
    }

    /// AdaBoost's training accuracy is at least the best single stump's.
    #[test]
    fn boosting_no_worse_than_one_stump(samples in arb_samples()) {
        let weights = vec![1.0; samples.len()];
        let (stump, stump_err) = DecisionStump::train(&samples, &weights);
        let _ = stump;
        let model = AdaBoostModel::train(
            &samples,
            &AdaBoostConfig { rounds: 50, ..AdaBoostConfig::default() },
        );
        let model_err = 1.0 - model.accuracy(&samples);
        prop_assert!(
            model_err <= stump_err + 1e-9,
            "boosted {model_err} vs stump {stump_err}"
        );
    }

    /// Importance is a probability distribution over the 12 attributes.
    #[test]
    fn importance_is_a_distribution(samples in arb_samples()) {
        let model = AdaBoostModel::train(
            &samples,
            &AdaBoostConfig { rounds: 20, ..AdaBoostConfig::default() },
        );
        let imp = model.importance();
        prop_assert_eq!(imp.len(), 12);
        let sum: f64 = imp.iter().map(|(_, v)| v).sum();
        if model.is_empty() {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        for (_, v) in imp {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }

    /// Feature extraction always lands in [0,1]^12 and prefix features of
    /// the full length equal full features.
    #[test]
    fn features_are_shares(
        classes in proptest::collection::vec(0u8..6, 1..80),
        cut in 1usize..200,
    ) {
        let records: Vec<_> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let class = match c {
                    0 => ContentClass::Html,
                    1 => ContentClass::Image,
                    2 => ContentClass::Css,
                    3 => ContentClass::Cgi,
                    4 => ContentClass::Favicon,
                    _ => ContentClass::Other,
                };
                make_record(i as u32 + 1, Method::Get, class, 2, i % 3 == 0, i % 6 == 0)
            })
            .collect();
        let fv = extract_prefix(&records, cut);
        for a in Attribute::ALL {
            prop_assert!((0.0..=1.0).contains(&fv.get(a)), "{} out of range", a.name());
        }
        let full = extract_prefix(&records, records.len());
        let beyond = extract_prefix(&records, records.len() + 50);
        prop_assert_eq!(full, beyond);
    }
}
