//! The set-algebra classifier (§3.1).
//!
//! The paper computes the human session set as
//!
//! ```text
//! S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)
//! ```
//!
//! sessions that downloaded the CSS probe or produced a mouse event, minus
//! sessions that executed JavaScript yet never produced a mouse event
//! (those are definitely robots: the script ran, no human was at the
//! controls). Hard evidence — decoy fetches, replays, hidden-link
//! follows, browser-type mismatches — short-circuits to Robot; a valid
//! mouse event or CAPTCHA pass short-circuits to Human.

use crate::evidence::{EvidenceKind, EvidenceSet};
use serde::{Deserialize, Serialize};

/// A final binary label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Traffic judged human-originated.
    Human,
    /// Traffic judged robot-originated.
    Robot,
}

/// Why a verdict was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reason {
    /// Valid mouse-event beacon: human activity detected (§2.1).
    MouseActivity,
    /// CAPTCHA solved (ground truth).
    CaptchaPassed,
    /// CSS probe downloaded and no JS-without-mouse contradiction: the
    /// browser test passed (§2.2).
    BrowserTestPassed,
    /// Executed JavaScript but never produced a mouse event
    /// (`S_JS − S_MM`).
    JsWithoutMouse,
    /// Fetched a decoy beacon.
    DecoyFetched,
    /// Replayed or forged a beacon key.
    BeaconAbuse,
    /// Followed the hidden link.
    HiddenLink,
    /// JavaScript-reported agent contradicts the User-Agent header.
    BrowserTypeMismatch,
    /// The executing script leaked an automation-framework signal
    /// (`navigator.webdriver` set, or a headless-shaped plugin list).
    AutomationLeak,
    /// No positive browser/human evidence appeared at all.
    NoBrowserSignals,
    /// A boundary classifier (the §4.1 machine-learning stage) decided,
    /// overriding the set-algebra outcome for a boundary-case session.
    MlBoundary,
}

/// An online verdict: confidence grows as evidence accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Not enough evidence either way.
    Undecided,
    /// Tentatively human (browser test passed; may be overturned by the
    /// JS-without-mouse rule or hard robot evidence).
    ProvisionalHuman(Reason),
    /// Tentatively robot (e.g. JS executed, no mouse yet; a later mouse
    /// event overturns this).
    ProvisionalRobot(Reason),
    /// Definitely human.
    Human(Reason),
    /// Definitely robot.
    Robot(Reason),
}

impl Verdict {
    /// Collapses the verdict to a label, treating provisional states as
    /// their tendency and `Undecided` as robot-leaning only when asked to
    /// default that way.
    pub fn label(self, undecided_default: Label) -> Label {
        match self {
            Verdict::Human(_) | Verdict::ProvisionalHuman(_) => Label::Human,
            Verdict::Robot(_) | Verdict::ProvisionalRobot(_) => Label::Robot,
            Verdict::Undecided => undecided_default,
        }
    }

    /// Whether the verdict is final (will not change with more evidence of
    /// the kinds already seen).
    pub fn is_final(self) -> bool {
        matches!(self, Verdict::Human(_) | Verdict::Robot(_))
    }
}

/// Applies the paper's set-algebra formula to a finished session.
///
/// # Examples
///
/// ```
/// use botwall_core::classifier::{classify_final, Label};
/// use botwall_core::evidence::{EvidenceKind, EvidenceSet};
/// use botwall_sessions::SimTime;
///
/// // Downloaded CSS, executed JS, no mouse: S_JS − S_MM ⇒ robot.
/// let mut e = EvidenceSet::new();
/// e.record(EvidenceKind::DownloadedCss, 2, SimTime::ZERO);
/// e.record(EvidenceKind::ExecutedJs, 3, SimTime::ZERO);
/// assert_eq!(classify_final(&e), Label::Robot);
/// ```
pub fn classify_final(evidence: &EvidenceSet) -> Label {
    // Hard evidence dominates in either direction; mouse events win over
    // robot evidence only if no robot tell is present (a session that both
    // fetched decoys and produced mouse events is a robot mimicking).
    if evidence.any_hard_robot() {
        return Label::Robot;
    }
    if evidence.any_hard_human() {
        return Label::Human;
    }
    let css = evidence.has(EvidenceKind::DownloadedCss);
    let mm = evidence.has(EvidenceKind::MouseEvent);
    let js = evidence.has(EvidenceKind::ExecutedJs);
    // S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM).
    let in_union = css || mm;
    let in_subtrahend = js && !mm;
    if in_union && !in_subtrahend {
        Label::Human
    } else {
        Label::Robot
    }
}

/// Folds only *hard* evidence into a verdict: the quick-decision stage a
/// streaming detector can afford on every exchange. Returns `None` when
/// no hard evidence is present — soft signals (CSS, JS) are left for the
/// batch set-algebra pass at session flush.
pub fn classify_hard(evidence: &EvidenceSet) -> Option<Verdict> {
    // Hard robot evidence is never overturned.
    if evidence.has(EvidenceKind::FetchedDecoy) {
        return Some(Verdict::Robot(Reason::DecoyFetched));
    }
    if evidence.has(EvidenceKind::ReplayedBeacon) || evidence.has(EvidenceKind::ForgedBeacon) {
        return Some(Verdict::Robot(Reason::BeaconAbuse));
    }
    if evidence.has(EvidenceKind::HiddenLinkFollowed) {
        return Some(Verdict::Robot(Reason::HiddenLink));
    }
    if evidence.has(EvidenceKind::UaMismatch) {
        return Some(Verdict::Robot(Reason::BrowserTypeMismatch));
    }
    if evidence.has(EvidenceKind::AutomationFlag) || evidence.has(EvidenceKind::HeadlessFingerprint)
    {
        return Some(Verdict::Robot(Reason::AutomationLeak));
    }
    // Hard human evidence.
    if evidence.has(EvidenceKind::MouseEvent) {
        return Some(Verdict::Human(Reason::MouseActivity));
    }
    if evidence.has(EvidenceKind::PassedCaptcha) {
        return Some(Verdict::Human(Reason::CaptchaPassed));
    }
    None
}

/// Produces the full verdict for a session: hard evidence first, then the
/// soft browser-test signals. This is the batch form the detector applies
/// at session flush boundaries.
pub fn classify_online(evidence: &EvidenceSet) -> Verdict {
    if let Some(v) = classify_hard(evidence) {
        return v;
    }
    // Soft signals.
    let css = evidence.has(EvidenceKind::DownloadedCss);
    let js = evidence.has(EvidenceKind::ExecutedJs);
    match (css, js) {
        // JS ran but no mouse (yet): robot-leaning — the longer this
        // holds, the stronger it gets; finalized by classify_final.
        (_, true) => Verdict::ProvisionalRobot(Reason::JsWithoutMouse),
        (true, false) => Verdict::ProvisionalHuman(Reason::BrowserTestPassed),
        (false, false) => Verdict::Undecided,
    }
}

/// Labels an undecided finished session: no browser signals at all means
/// robot (crawlers fetching only HTML never trip any probe).
pub fn finalize(verdict: Verdict) -> (Label, Reason) {
    match verdict {
        Verdict::Human(r) => (Label::Human, r),
        Verdict::ProvisionalHuman(r) => (Label::Human, r),
        Verdict::Robot(r) => (Label::Robot, r),
        Verdict::ProvisionalRobot(r) => (Label::Robot, r),
        Verdict::Undecided => (Label::Robot, Reason::NoBrowserSignals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_sessions::SimTime;

    fn ev(kinds: &[EvidenceKind]) -> EvidenceSet {
        let mut e = EvidenceSet::new();
        for (i, k) in kinds.iter().enumerate() {
            e.record(*k, (i + 1) as u32, SimTime::ZERO);
        }
        e
    }

    #[test]
    fn set_algebra_truth_table() {
        use EvidenceKind::*;
        // (css, mm, js) -> expected
        let cases = [
            (false, false, false, Label::Robot), // nothing: robot
            (true, false, false, Label::Human),  // css only
            (false, true, false, Label::Human),  // mouse only
            (false, false, true, Label::Robot),  // js only: JS-no-mouse
            (true, true, false, Label::Human),
            (true, false, true, Label::Robot), // css + js, no mouse
            (false, true, true, Label::Human), // js + mouse
            (true, true, true, Label::Human),
        ];
        for (css, mm, js, expected) in cases {
            let mut kinds = Vec::new();
            if css {
                kinds.push(DownloadedCss);
            }
            if mm {
                kinds.push(MouseEvent);
            }
            if js {
                kinds.push(ExecutedJs);
            }
            assert_eq!(
                classify_final(&ev(&kinds)),
                expected,
                "css={css} mm={mm} js={js}"
            );
        }
    }

    #[test]
    fn hard_robot_evidence_beats_mouse() {
        use EvidenceKind::*;
        // A bot that fakes mouse events but also fetched a decoy.
        let e = ev(&[MouseEvent, FetchedDecoy]);
        assert_eq!(classify_final(&e), Label::Robot);
        assert_eq!(classify_online(&e), Verdict::Robot(Reason::DecoyFetched));
    }

    #[test]
    fn captcha_pass_is_human() {
        use EvidenceKind::*;
        let e = ev(&[PassedCaptcha]);
        assert_eq!(classify_final(&e), Label::Human);
        assert_eq!(classify_online(&e), Verdict::Human(Reason::CaptchaPassed));
    }

    #[test]
    fn classify_hard_ignores_soft_signals() {
        use EvidenceKind::*;
        assert_eq!(classify_hard(&ev(&[])), None);
        assert_eq!(classify_hard(&ev(&[DownloadedCss, ExecutedJs])), None);
        assert_eq!(
            classify_hard(&ev(&[DownloadedCss, FetchedDecoy])),
            Some(Verdict::Robot(Reason::DecoyFetched))
        );
        assert_eq!(
            classify_hard(&ev(&[MouseEvent])),
            Some(Verdict::Human(Reason::MouseActivity))
        );
        // classify_online agrees wherever classify_hard decides.
        for kinds in [
            vec![FetchedDecoy],
            vec![ReplayedBeacon],
            vec![HiddenLinkFollowed],
            vec![UaMismatch],
            vec![AutomationFlag],
            vec![HeadlessFingerprint],
            vec![MouseEvent],
            vec![PassedCaptcha],
            vec![DownloadedCss, HiddenLinkFollowed, MouseEvent],
        ] {
            let e = ev(&kinds);
            assert_eq!(classify_hard(&e), Some(classify_online(&e)), "{kinds:?}");
        }
    }

    #[test]
    fn automation_leak_beats_synthesized_mouse_entropy() {
        use EvidenceKind::*;
        // A headless imitator that redeems a mouse beacon but admits
        // `navigator.webdriver` is still a robot.
        let e = ev(&[DownloadedCss, ExecutedJs, MouseEvent, AutomationFlag]);
        assert_eq!(classify_final(&e), Label::Robot);
        assert_eq!(classify_online(&e), Verdict::Robot(Reason::AutomationLeak));
        let e = ev(&[MouseEvent, HeadlessFingerprint]);
        assert_eq!(classify_final(&e), Label::Robot);
        assert_eq!(classify_online(&e), Verdict::Robot(Reason::AutomationLeak));
    }

    #[test]
    fn online_progression_browser_then_human() {
        use EvidenceKind::*;
        let mut e = EvidenceSet::new();
        assert_eq!(classify_online(&e), Verdict::Undecided);
        e.record(DownloadedCss, 4, SimTime::ZERO);
        assert_eq!(
            classify_online(&e),
            Verdict::ProvisionalHuman(Reason::BrowserTestPassed)
        );
        e.record(ExecutedJs, 6, SimTime::ZERO);
        assert_eq!(
            classify_online(&e),
            Verdict::ProvisionalRobot(Reason::JsWithoutMouse)
        );
        e.record(MouseEvent, 9, SimTime::ZERO);
        assert_eq!(classify_online(&e), Verdict::Human(Reason::MouseActivity));
    }

    #[test]
    fn finalize_defaults_undecided_to_robot() {
        assert_eq!(
            finalize(Verdict::Undecided),
            (Label::Robot, Reason::NoBrowserSignals)
        );
        assert_eq!(
            finalize(Verdict::ProvisionalHuman(Reason::BrowserTestPassed)),
            (Label::Human, Reason::BrowserTestPassed)
        );
        assert_eq!(
            finalize(Verdict::ProvisionalRobot(Reason::JsWithoutMouse)),
            (Label::Robot, Reason::JsWithoutMouse)
        );
    }

    #[test]
    fn online_and_final_agree_on_finished_sessions() {
        use EvidenceKind::*;
        // For every subset of soft+hard signals, finalize(online) must
        // equal classify_final.
        let all = [
            DownloadedCss,
            DownloadedJsFile,
            ExecutedJs,
            MouseEvent,
            FetchedDecoy,
            HiddenLinkFollowed,
            UaMismatch,
            PassedCaptcha,
            AutomationFlag,
            HeadlessFingerprint,
        ];
        for mask in 0u32..(1 << all.len()) {
            let kinds: Vec<EvidenceKind> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, k)| *k)
                .collect();
            let e = ev(&kinds);
            let (label, _) = finalize(classify_online(&e));
            assert_eq!(label, classify_final(&e), "disagreement on {kinds:?}");
        }
    }

    #[test]
    fn verdict_label_collapse() {
        assert_eq!(Verdict::Undecided.label(Label::Robot), Label::Robot);
        assert_eq!(Verdict::Undecided.label(Label::Human), Label::Human);
        assert_eq!(
            Verdict::ProvisionalHuman(Reason::BrowserTestPassed).label(Label::Robot),
            Label::Human
        );
        assert!(Verdict::Human(Reason::MouseActivity).is_final());
        assert!(!Verdict::ProvisionalRobot(Reason::JsWithoutMouse).is_final());
    }
}
