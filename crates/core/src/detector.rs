//! The online detection engine.
//!
//! [`Detector`] wires together the session tracker, the instrumentation
//! classification stream, and the set-algebra classifier, producing verdict
//! transitions in real time — the paper's core claim is that this works
//! "on-line at data request rates".
//!
//! # Staged evidence application
//!
//! Following the paper's "quick decision first" staging (§4.1), the
//! per-exchange fast path folds only *hard* evidence into the online
//! verdict (decoy fetches, beacon replays/forgeries, hidden links,
//! browser-type mismatches, mouse events, CAPTCHA passes), plus the
//! count-based no-browser-signals promotion that catches probe-blind
//! crawlers. Soft browser-test signals (CSS/JS downloads, JS execution)
//! are *accumulated* per exchange but only *applied* — via the full
//! set-algebra rule — in batch when a session flushes at [`Detector::sweep`]
//! / [`Detector::drain`] boundaries. Most exchanges carry no new evidence
//! at all, so the fast path is a cached-verdict read.
//!
//! # Shard-owned state
//!
//! All per-key mutable state — the evidence set, the cached fast-path
//! verdict, the enforcement [`PolicyState`], the outstanding beacon
//! tokens ([`TokenState`]), and the outstanding CAPTCHA challenge record
//! — lives in a [`KeyState`] colocated with the session record inside
//! the tracker's shard entry ([`ShardedTracker<KeyState>`]). The
//! request path is a **two-phase lease/commit protocol**:
//! [`Detector::gate`] runs policy gate → sighting resolution inside one
//! shard critical section and, for every decision that needs no origin
//! (rejections, challenges, probe objects, beacon redemptions), also
//! produces the response, records the exchange, and folds its evidence
//! there — one lock, done. A request that needs origin content instead
//! comes back as a [`Gated::NeedsOrigin`] lease (stamped with the
//! entry's incarnation): the caller fetches the origin with **no lock
//! held**, so one slow origin never stalls the other sessions on its
//! shard, then [`Detector::commit_exchange`] re-acquires the shard,
//! re-binds by incarnation, and records + folds the finished exchange —
//! two lock acquisitions total. The whole API is `&self`, and the
//! detector is `Send + Sync`: requests for different keys proceed in
//! parallel on different shards. Incarnation pairing is structural —
//! when a key rolls over or is evicted, its state is finalized *with*
//! its session, so a flushed predecessor can never steal (or leak into)
//! a successor's evidence, and a stale lease can never commit into a
//! successor. State that arrives while a key has no live session — a
//! late CAPTCHA pass, a lost leased exchange — rides the tracker's
//! deferred-carry channel ([`KeyCarry`]) to the key's next incarnation.

use crate::classifier::{self, Label, Reason, Verdict};
use crate::evidence::{EvidenceKind, EvidenceKinds, EvidenceSet};
use crate::policy::{Action, PolicyEngine, PolicyState};
use botwall_http::{Request, Response, UserAgent};
use botwall_instrument::{Classified, KeyOutcome, ProbeKind, Sighting, TokenState};
use botwall_sessions::{
    Finalized, Session, SessionExt, SessionKey, ShardedTracker, SimTime, TrackerConfig,
};
use serde::{Deserialize, Serialize};

/// Configuration for [`Detector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectorConfig {
    /// Session tracking parameters (idle timeout, classification minimum).
    pub tracker: TrackerConfig,
}

/// What [`Detector::observe`] reports about one exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveOutcome {
    /// The session this exchange belongs to.
    pub key: SessionKey,
    /// The fast-path verdict after folding in this exchange: hard
    /// evidence plus the no-browser-signals promotion. Soft signals are
    /// applied in batch at flush (see the module docs), so a session with
    /// only CSS/JS evidence reads `Undecided` here.
    pub verdict: Verdict,
    /// Whether the verdict changed on this exchange.
    pub transitioned: bool,
    /// The request index within the session.
    pub request_index: u32,
}

/// A finished session with its evidence and final label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletedSession {
    /// The underlying session (records + counters).
    pub session: Session,
    /// All evidence collected.
    pub evidence: EvidenceSet,
    /// The final label per the set-algebra classifier.
    pub label: Label,
    /// The reason backing the label.
    pub reason: Reason,
    /// Whether the session met the >10-request classification minimum.
    pub classifiable: bool,
}

/// An outstanding CAPTCHA challenge for one session: which challenge the
/// session must answer, when it was issued, and how many wrong answers
/// it has burned. Colocated in [`KeyState`], replacing the old global
/// issue-table mutex — matching, clearing, and attempt counting all
/// happen under the session's shard lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeState {
    /// The outstanding challenge's id.
    pub id: u64,
    /// When it was issued.
    pub issued: SimTime,
    /// Wrong answers so far.
    pub attempts: u32,
}

impl ChallengeState {
    /// A freshly issued challenge record.
    pub fn new(id: u64, issued: SimTime) -> ChallengeState {
        ChallengeState {
            id,
            issued,
            attempts: 0,
        }
    }
}

/// A CAPTCHA pass verified while its key had no live session (swept or
/// evicted between issue and answer). It rides the detector's
/// deferred-carry payload ([`KeyCarry`]) to the key's next incarnation,
/// so a correct answer is never silently dropped and no global pending
/// table exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingCaptchaPass {
    /// When the pass was verified.
    pub at: SimTime,
}

/// The detector's deferred-carry payload: per-key state that arrived
/// while the key had no live session, parked in the key's tracker shard
/// and absorbed by the next incarnation the moment it is created. Two
/// producers feed it: a CAPTCHA pass verified after the session was
/// swept, and a leased exchange whose incarnation was evicted mid-fetch
/// ([`Detector::commit_exchange`]'s lost path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyCarry {
    /// A CAPTCHA pass awaiting the next incarnation (ground-truth human
    /// evidence, credited before the first exchange is recorded).
    pub pass: Option<PendingCaptchaPass>,
    /// Origin exchanges whose leased entry was gone by commit time; the
    /// successor absorbs the count into [`KeyState::lost_commits`].
    pub lost_exchanges: u32,
    /// The evidence kinds those lost exchanges classified, merged
    /// across all of them. A decoy fetch or forged beacon committed
    /// into the carry enforces on the successor exactly as if it had
    /// been recorded live — eviction mid-fetch cannot launder evidence.
    pub lost_kinds: EvidenceKinds,
    /// When the most recent evidence-bearing lost exchange committed
    /// (the observation timestamp the successor records).
    pub lost_at: SimTime,
}

impl From<PendingCaptchaPass> for KeyCarry {
    fn from(pass: PendingCaptchaPass) -> KeyCarry {
        KeyCarry {
            pass: Some(pass),
            ..KeyCarry::default()
        }
    }
}

/// Per-key detection state, colocated with the session record in its
/// tracker shard entry: the accumulated evidence, the cached fast-path
/// verdict, the enforcement state, the outstanding beacon tokens, and
/// the outstanding challenge record.
#[derive(Debug)]
pub struct KeyState {
    /// Evidence accumulated for the live incarnation.
    pub evidence: EvidenceSet,
    /// The cached fast-path verdict.
    pub verdict: Verdict,
    /// Rate-bucket and block state for the policy engine.
    pub policy: PolicyState,
    /// Outstanding beacon keys and stored scripts for this session.
    pub tokens: TokenState,
    /// The CAPTCHA challenge this session must answer, if one is
    /// outstanding.
    pub challenge: Option<ChallengeState>,
    /// Leased exchanges of this key whose entry was gone by commit time
    /// (diagnostic; absorbed from [`KeyCarry::lost_exchanges`] or bumped
    /// directly when the lost commit finds a live successor).
    pub lost_commits: u32,
    /// Leased exchanges currently in flight (origin fetch outstanding):
    /// incremented when [`Detector::gate`] leases, decremented when
    /// [`Detector::commit_exchange`] folds the fetch back in. The gate
    /// folds this into the behavioural thresholds so a burst riding a
    /// slow origin is seen *before* its commits land (an abandoned lease
    /// leaks its count until the incarnation rolls over — erring toward
    /// enforcement, never under it).
    pub in_flight: u32,
}

impl Default for KeyState {
    fn default() -> Self {
        KeyState {
            evidence: EvidenceSet::new(),
            verdict: Verdict::Undecided,
            policy: PolicyState::default(),
            tokens: TokenState::default(),
            challenge: None,
            lost_commits: 0,
            in_flight: 0,
        }
    }
}

impl SessionExt for KeyState {
    type Carry = KeyCarry;

    /// At idle rollover, evidence, verdict, tokens, and any outstanding
    /// challenge start clean (the successor is a *new* session and must
    /// be judged on its own behaviour; its beacon keys and challenges
    /// are long expired), but the policy block flag survives — a blocked
    /// robot does not earn a reset by going quiet for an hour.
    fn on_rollover(&self) -> KeyState {
        KeyState {
            policy: self.policy.carry_over(),
            ..KeyState::default()
        }
    }

    /// A deferred carry reaches the key's next incarnation here. A
    /// CAPTCHA pass lands as ground-truth-human evidence before the
    /// first exchange is even recorded, so mandatory-challenge gates
    /// already see a proven human; lost leased exchanges land on the
    /// diagnostic counter.
    fn absorb(&mut self, carry: KeyCarry, session: &Session) {
        if let Some(pass) = carry.pass {
            self.record_captcha_pass(session.request_count() as u32, pass.at);
        }
        self.lost_commits += carry.lost_exchanges;
        self.absorb_lost_evidence(
            carry.lost_kinds,
            session.request_count() as u32,
            carry.lost_at,
        );
    }

    /// The occupancy this state reports into the tracker's per-shard
    /// atomic gauges: `[outstanding beacon-token entries, outstanding
    /// challenge records]` — the two columns `GatewayStats` used to fold
    /// out of every live entry.
    fn gauge(&self) -> [u64; botwall_sessions::EXT_GAUGES] {
        [
            self.tokens.len() as u64,
            u64::from(self.challenge.is_some()),
        ]
    }
}

impl KeyState {
    /// Records a ground-truth CAPTCHA pass directly on this state (hard
    /// human evidence; the fast-path verdict updates immediately). For
    /// callers already holding the session's shard lock — the detector's
    /// [`Detector::record_captcha_pass`] and the carry absorption both
    /// route through here.
    pub fn record_captcha_pass(&mut self, index: u32, at: SimTime) {
        self.evidence.record(EvidenceKind::PassedCaptcha, index, at);
        self.verdict =
            classifier::classify_hard(&self.evidence).expect("captcha pass is hard evidence");
    }

    /// Records one evidence observation and returns whether it was hard
    /// (decides the verdict on its own).
    fn accumulate(&mut self, kind: EvidenceKind, index: u32, now: SimTime) -> bool {
        self.evidence.record(kind, index, now);
        kind.is_hard_robot_evidence() || kind.is_hard_human_evidence()
    }

    /// Folds the merged evidence kinds of lost leased exchanges into
    /// this incarnation: records each kind at `index`/`at` and re-runs
    /// the hard classifier if any is decisive. Carried evidence
    /// enforces exactly like evidence recorded live — only the original
    /// observation index and time are gone (replaced by the absorb
    /// point), never the signal itself.
    fn absorb_lost_evidence(&mut self, kinds: EvidenceKinds, index: u32, at: SimTime) {
        let mut hard = false;
        for kind in kinds.iter() {
            hard |= self.accumulate(kind, index, at);
        }
        if hard {
            self.verdict =
                classifier::classify_hard(&self.evidence).expect("hard evidence just recorded");
        }
    }

    /// Whether a browser-test signal the set algebra credits (CSS
    /// download, JS execution) has been accumulated — soft evidence that
    /// exempts the session from the no-browser-signals promotion until
    /// the batch pass decides it. Merely *fetching* the .js file is not
    /// a signal: crawlers download every link, the set algebra ignores
    /// it, and waiting can never exonerate such a session.
    fn has_browser_signals(&self) -> bool {
        self.evidence.has(EvidenceKind::DownloadedCss)
            || self.evidence.has(EvidenceKind::ExecutedJs)
    }
}

/// What a [`Detector::gate`] respond callback decides about the request.
#[derive(Debug)]
pub enum GateRespond<T> {
    /// The response is produced here, inside the gate's one critical
    /// section (rejections, challenges, probe objects — everything that
    /// needs no origin).
    Respond(Response, T),
    /// The request needs the origin: release the shard and lease the
    /// session ([`Gated::NeedsOrigin`]); the caller fetches outside any
    /// lock and folds the result in at [`Detector::commit_exchange`].
    NeedsOrigin,
}

/// What [`Detector::gate`] produced.
#[derive(Debug)]
pub enum Gated<T> {
    /// The request was decided inside one fused critical section.
    Done {
        /// The observation after folding the exchange.
        outcome: ObserveOutcome,
        /// The policy gate's decision.
        action: Action,
        /// The response produced by the respond callback.
        response: Response,
        /// The respond callback's payload.
        value: T,
    },
    /// The session is leased for an origin fetch; no lock is held.
    NeedsOrigin(OriginLease),
}

/// A session leased across an origin fetch: the tracker lease (key +
/// incarnation stamp) plus the gate-phase resolution the commit needs
/// — the classified sighting and the pre-exchange snapshot. Holds no
/// lock and no entry state; dropping it abandons the exchange (it is
/// never recorded) without leaking anything.
#[derive(Debug)]
#[must_use = "a lease represents an exchange in flight; commit it via Detector::commit_exchange"]
pub struct OriginLease {
    lease: botwall_sessions::ExchangeLease,
    action: Action,
    classified: Classified,
    verdict: Verdict,
    request_count: u64,
}

impl OriginLease {
    /// The leased session's key.
    pub fn key(&self) -> &SessionKey {
        self.lease.key()
    }

    /// The policy decision that allowed the request through (always
    /// [`Action::Allow`] — rejections never lease).
    pub fn action(&self) -> Action {
        self.action
    }

    /// The session's fast-path verdict as of the gate (pre-exchange).
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// How many requests the session had recorded when the gate ran.
    pub fn request_count(&self) -> u64 {
        self.request_count
    }
}

/// The online human/robot detector.
///
/// Shard-parallel and `Send + Sync`: every method takes `&self`, and all
/// per-key state lives inside the sharded tracker (see the module docs).
///
/// # Examples
///
/// ```
/// use botwall_core::{Detector, DetectorConfig};
/// use botwall_core::classifier::Verdict;
/// use botwall_http::request::ClientIp;
/// use botwall_http::{Method, Request, Response, StatusCode};
/// use botwall_instrument::Classified;
/// use botwall_sessions::SimTime;
///
/// let det = Detector::new(DetectorConfig::default());
/// let req = Request::builder(Method::Get, "http://h/a.html")
///     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
///     .client(ClientIp::new(1))
///     .build()
///     .unwrap();
/// let resp = Response::empty(StatusCode::OK);
/// let out = det.observe(&req, &resp, &Classified::Ordinary, SimTime::ZERO);
/// assert_eq!(out.verdict, Verdict::Undecided);
/// ```
#[derive(Debug)]
pub struct Detector {
    tracker: ShardedTracker<KeyState>,
}

impl Detector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Detector {
        Detector {
            tracker: ShardedTracker::new(config.tracker),
        }
    }

    /// Feeds one exchange plus its instrumentation classification.
    ///
    /// `classified` should come from
    /// [`botwall_instrument::Instrumenter::classify`] on the same request.
    ///
    /// This is the fast path: evidence is accumulated, but only hard
    /// evidence updates the verdict here. Soft browser-test signals are
    /// applied in batch when the session flushes (see the module docs).
    /// Session update and evidence fold share one shard-lock acquisition.
    pub fn observe(
        &self,
        request: &Request,
        response: &Response,
        classified: &Classified,
        now: SimTime,
    ) -> ObserveOutcome {
        let min_to_classify = self.tracker.config().min_requests_to_classify;
        let (key, (verdict, transitioned, request_index)) =
            self.tracker
                .observe_with(request, Some(response), now, |session, state| {
                    fold_exchange(state, session, classified, request, min_to_classify, now)
                });
        ObserveOutcome {
            key,
            verdict,
            transitioned,
            request_index,
        }
    }

    /// Phase one of the two-phase request protocol: policy gate →
    /// sighting resolution → (for decisions that need no origin)
    /// response production, exchange observation, and fast-path
    /// classification, all inside **one** shard critical section.
    ///
    /// The flow inside the critical section:
    ///
    /// 1. **Gate.** With `enforce`, the policy engine decides on the
    ///    verdict and counters *as of the previous request*. The first
    ///    exchange of an incarnation has nothing to rate-limit yet and
    ///    passes — unless a rollover carried a block flag, which holds.
    /// 2. **Resolve.** The engine's stateless [`Sighting`] is resolved
    ///    against per-session state: a beacon-shaped fetch redeems its
    ///    key in the session's colocated [`TokenState`] (the operation
    ///    that used to write-lock a global token table).
    /// 3. **Respond or lease.** The caller either builds the response
    ///    here — probe objects out of session state, rejections,
    ///    challenges into the session's [`ChallengeState`] — finishing
    ///    the exchange in this one lock ([`GateRespond::Respond`]), or
    ///    declares the request needs the origin
    ///    ([`GateRespond::NeedsOrigin`]): the shard mutex is released
    ///    and a [`Gated::NeedsOrigin`] lease comes back, stamped with
    ///    the entry's incarnation. The caller fetches the origin with
    ///    **no lock held** — a slow origin stalls nobody — and folds
    ///    the result in at [`Detector::commit_exchange`].
    ///
    /// Fused respond callbacks run under the shard lock: they must not
    /// call back into this detector. After a lease is returned the lock
    /// is free — reentering the detector (even for the same key) is
    /// safe.
    ///
    /// **Enforcement under concurrent leases.** The gate consumes the
    /// session's rate-bucket token immediately (so N concurrent
    /// requests still burn N tokens and the rate limit engages
    /// mid-burst), and [`KeyState::in_flight`] counts the leases still
    /// awaiting their origin: the gate folds it into the behavioural
    /// thresholds (history gate and sustained rate — see
    /// [`PolicyEngine::decide`]), so a robot-classified burst riding a
    /// slow origin is blocked *while* its fetches are outstanding, not
    /// origin-latency × concurrency later. What still waits for commits
    /// is whatever needs the exchanges' *outcomes*: error/CGI ratios
    /// and evidence-driven verdict promotions — those signals do not
    /// exist until the origin answers.
    pub fn gate<T>(
        &self,
        request: &Request,
        sighting: &Sighting,
        now: SimTime,
        enforce: bool,
        policy: &PolicyEngine,
        respond: impl FnOnce(Action, &Session, &mut KeyState, &Classified) -> GateRespond<T>,
    ) -> Gated<T> {
        use botwall_sessions::{Begun, Gate};
        /// The two payload shapes the gate's critical section produces.
        enum Phase1<T> {
            Done(Action, Response, T, Verdict, bool, u32),
            Lease(Action, Classified, Verdict, u64),
        }
        let min_to_classify = self.tracker.config().min_requests_to_classify;
        let (key, begun) = self.tracker.begin_exchange(request, now, |entry| {
            // 1. Policy gate on pre-exchange state.
            let action = {
                let (session, state) = entry.parts();
                if !enforce {
                    Action::Allow
                } else if session.request_count() == 0 {
                    // An incarnation's first exchange creates the
                    // state — nothing to enforce against yet, except
                    // a block flag carried over an idle rollover.
                    if state.policy.is_blocked() {
                        Action::Block
                    } else {
                        Action::Allow
                    }
                } else {
                    // Leases outstanding are requests the session has
                    // already issued: count them in the sustained rate
                    // (span extended to `now` — they arrived after the
                    // last recorded exchange) so behavioural blocking
                    // engages mid-burst instead of lagging until the
                    // commits land.
                    let session_rate = if state.in_flight == 0 {
                        session.request_rate()
                    } else {
                        let span_ms = now.since(session.started());
                        if span_ms == 0 {
                            0.0
                        } else {
                            (session.counters().total + u64::from(state.in_flight)) as f64 * 1000.0
                                / span_ms as f64
                        }
                    };
                    policy.decide(
                        &mut state.policy,
                        state.verdict,
                        session.counters(),
                        session_rate,
                        state.in_flight,
                        now,
                    )
                }
            };
            // 2. Resolve the sighting against session token state.
            let classified = match sighting {
                Sighting::MouseBeacon(key) => {
                    let outcome = entry.ext().tokens.redeem(*key, now);
                    Classified::MouseBeacon { key: *key, outcome }
                }
                Sighting::Probe(hit) => Classified::Probe(hit.clone()),
                Sighting::Ordinary => Classified::Ordinary,
            };
            // 3. Respond here (fused) or lease for an origin fetch.
            let decided = {
                let (session, state) = entry.parts();
                respond(action, session, state, &classified)
            };
            match decided {
                GateRespond::Respond(response, value) => {
                    // 4. Record the exchange and fold its evidence.
                    entry.record(request, Some(&response), now);
                    let (session, state) = entry.parts();
                    let (verdict, transitioned, index) =
                        fold_exchange(state, session, &classified, request, min_to_classify, now);
                    Gate::Finish(Phase1::Done(
                        action,
                        response,
                        value,
                        verdict,
                        transitioned,
                        index,
                    ))
                }
                GateRespond::NeedsOrigin => {
                    let (session, state) = entry.parts();
                    // The lease is in flight from this moment: later
                    // gates for the same key fold it into their
                    // thresholds even though it commits only when the
                    // origin answers.
                    state.in_flight += 1;
                    Gate::Lease(Phase1::Lease(
                        action,
                        classified,
                        state.verdict,
                        session.request_count(),
                    ))
                }
            }
        });
        match begun {
            Begun::Finished(Phase1::Done(
                action,
                response,
                value,
                verdict,
                transitioned,
                index,
            )) => Gated::Done {
                outcome: ObserveOutcome {
                    key,
                    verdict,
                    transitioned,
                    request_index: index,
                },
                action,
                response,
                value,
            },
            Begun::Leased(Phase1::Lease(action, classified, verdict, request_count), lease) => {
                Gated::NeedsOrigin(OriginLease {
                    lease,
                    action,
                    classified,
                    verdict,
                    request_count,
                })
            }
            _ => unreachable!("Gate::Finish finishes and Gate::Lease leases"),
        }
    }

    /// Phase two: folds an origin fetch back into the leased session —
    /// one more shard acquisition, re-bound **by incarnation**. The
    /// `respond` callback builds the response with full access to the
    /// session's state (this is where origin HTML is instrumented, its
    /// beacon token landing in the session's [`TokenState`]); the
    /// exchange is then recorded and its evidence folded exactly as the
    /// fused path does.
    ///
    /// If the leased incarnation is gone — evicted for capacity, or
    /// rolled over because the key returned after the idle timeout
    /// mid-fetch — `lost` builds the response without session state
    /// (the client still gets its answer), and the exchange commits
    /// through the deferred-carry channel instead: a live successor
    /// absorbs it immediately, otherwise a [`KeyCarry`] parks in the
    /// key's shard for the next incarnation. Evidence is redirected,
    /// never dropped.
    pub fn commit_exchange<T>(
        &self,
        lease: OriginLease,
        request: &Request,
        now: SimTime,
        respond: impl FnOnce(&Session, &mut KeyState) -> (Response, T),
        lost: impl FnOnce() -> (Response, T),
    ) -> (ObserveOutcome, Response, T) {
        let min_to_classify = self.tracker.config().min_requests_to_classify;
        let OriginLease {
            lease,
            classified,
            verdict,
            request_count,
            ..
        } = lease;
        let key = lease.key().clone();
        let (response, value, verdict, transitioned, request_index) = self.tracker.commit(
            lease,
            request,
            now,
            |entry| {
                let (response, value) = {
                    let (session, state) = entry.parts();
                    // The fetch is back: this lease no longer counts
                    // toward the in-flight burst. Saturating because a
                    // rollover mid-fetch resets the counter to zero and
                    // this commit would then land on the lost path —
                    // but a racing same-key re-gate between those two
                    // steps must never underflow.
                    state.in_flight = state.in_flight.saturating_sub(1);
                    respond(session, state)
                };
                entry.record(request, Some(&response), now);
                let (session, state) = entry.parts();
                let (verdict, transitioned, index) =
                    fold_exchange(state, session, &classified, request, min_to_classify, now);
                (response, value, verdict, transitioned, index)
            },
            |successor, slot| {
                let (response, value) = lost();
                // The classified evidence survives the eviction: a live
                // successor absorbs it now, otherwise it parks in the
                // carry for the next incarnation. Either way a decoy
                // fetch or forged beacon still enforces — losing the
                // incarnation mid-fetch is not an evidence laundry.
                let kinds = classified_kinds(&classified, request);
                match successor {
                    Some((session, state)) => {
                        state.lost_commits += 1;
                        state.absorb_lost_evidence(kinds, session.request_count() as u32, now);
                    }
                    None => {
                        let carry = slot.get_or_insert_with(KeyCarry::default);
                        carry.lost_exchanges += 1;
                        carry.lost_kinds.merge(kinds);
                        carry.lost_at = now;
                    }
                }
                // Best available observation: the pre-exchange snapshot.
                (response, value, verdict, false, request_count as u32 + 1)
            },
        );
        (
            ObserveOutcome {
                key,
                verdict,
                transitioned,
                request_index,
            },
            response,
            value,
        )
    }

    /// Runs `f` against a leased session's live state **without
    /// consuming the lease**. This is the streaming serve's begin hook:
    /// when the origin response head arrives, the gateway mints this
    /// page's instrumentation into the session (token issue, RNG draw)
    /// while the body is still in flight, then commits the exchange via
    /// [`Detector::commit_exchange`] once the body finishes. `None`
    /// when the leased incarnation is gone (evicted or rolled over
    /// mid-fetch) — the caller degrades to an uninstrumented stream and
    /// the eventual commit takes the lost path. One shard lock.
    pub fn with_lease_state<R>(
        &self,
        lease: &OriginLease,
        f: impl FnOnce(&Session, &mut KeyState) -> R,
    ) -> Option<R> {
        self.tracker.inspect_lease(&lease.lease, f)
    }

    /// Records a CAPTCHA pass for a session (ground-truth human).
    ///
    /// A key the tracker has never seen is a no-op: there is no session
    /// to credit, and inventing one would attach ground-truth-human
    /// evidence to a phantom record.
    pub fn record_captcha_pass(&self, key: &SessionKey, now: SimTime) {
        self.tracker.with_entry(key, |session, state| {
            state.record_captcha_pass(session.request_count() as u32, now);
        });
    }

    /// The current fast-path verdict for a live session.
    pub fn verdict(&self, key: &SessionKey) -> Verdict {
        self.tracker
            .with_entry(key, |_, state| state.verdict)
            .unwrap_or(Verdict::Undecided)
    }

    /// A snapshot of the evidence collected so far for a live session
    /// (the original lives behind its shard lock).
    pub fn evidence(&self, key: &SessionKey) -> Option<EvidenceSet> {
        self.tracker
            .with_entry(key, |_, state| state.evidence.clone())
    }

    /// Runs `f` against a live session and its colocated detection/policy
    /// state under the key's shard lock; `None` when the key has no live
    /// session. This is the gateway's one-lock enforcement gate.
    pub fn with_key_state<R>(
        &self,
        key: &SessionKey,
        f: impl FnOnce(&Session, &mut KeyState) -> R,
    ) -> Option<R> {
        self.tracker.with_entry(key, f)
    }

    /// Read access to the underlying session tracker.
    pub fn tracker(&self) -> &ShardedTracker<KeyState> {
        &self.tracker
    }

    /// Folds every live session's colocated state (shards in index
    /// order, one lock at a time). O(live sessions) and takes every
    /// shard lock — kept for audits and gauge-parity checks; stats
    /// snapshots read [`Detector::state_gauges`] instead.
    pub fn fold_key_states<A>(&self, init: A, f: impl FnMut(A, &Session, &KeyState) -> A) -> A {
        self.tracker.fold_entries(init, f)
    }

    /// The live census of per-key instrumentation state, `(outstanding
    /// beacon-token entries, outstanding challenge records)`, maintained
    /// incrementally by the tracker's per-shard atomic gauges at every
    /// issue/clear/expire/flush — an O(shards) lock-free read, where
    /// [`Detector::fold_key_states`] walks every live entry.
    pub fn state_gauges(&self) -> (u64, u64) {
        let [tokens, challenges] = self.tracker.gauge_totals();
        (tokens, challenges)
    }

    /// Expires per-key instrumentation state of *live* sessions:
    /// beacon tokens older than `token_ttl_ms` and challenge records
    /// older than `challenge_ttl_ms` as of `now`. Dead sessions need no
    /// pass — their state flushes with the entry. Called by the
    /// gateway's sweep, replacing the old global token-table and
    /// issue-table sweeps.
    pub fn expire_key_state(&self, now: SimTime, token_ttl_ms: u64, challenge_ttl_ms: u64) {
        self.tracker.visit_entries_mut(|_, state| {
            state.tokens.sweep(now, token_ttl_ms);
            if state
                .challenge
                .is_some_and(|ch| now.since(ch.issued) > challenge_ttl_ms)
            {
                state.challenge = None;
            }
        });
    }

    /// Expires idle sessions as of `now`, applying the batch set-algebra
    /// classification to each and finalizing their labels.
    pub fn sweep(&self, now: SimTime) -> Vec<CompletedSession> {
        let finished = self.tracker.sweep(now);
        self.complete(finished)
    }

    /// Finalizes everything (end of experiment).
    pub fn drain(&self) -> Vec<CompletedSession> {
        let finished = self.tracker.drain();
        let mut out = self.complete(finished);
        out.sort_by(|a, b| a.session.key().cmp(b.session.key()));
        out
    }

    /// The batch boundary: accumulated evidence is applied through the
    /// full set-algebra rule for every flushed session at once. Pairing
    /// is structural — each finalized session carries the state of its
    /// own incarnation (tokens and challenge records expire with it).
    fn complete(&self, finished: Vec<Finalized<KeyState>>) -> Vec<CompletedSession> {
        finished
            .into_iter()
            .map(|Finalized { session, ext }| {
                let verdict = classifier::classify_online(&ext.evidence);
                let (label, reason) = classifier::finalize(verdict);
                let classifiable = self.tracker.classifiable(&session);
                CompletedSession {
                    session,
                    evidence: ext.evidence,
                    label,
                    reason,
                    classifiable,
                }
            })
            .collect()
    }
}

/// Maps one classified exchange to the evidence kinds it proves — the
/// single source of truth shared by the live fold ([`fold_exchange`])
/// and the lost-commit carry, so an exchange committed after its
/// incarnation's eviction yields exactly the kinds it would have
/// recorded live. Declaration order of [`EvidenceKind::ALL`] matches
/// the recording order the live path always used.
fn classified_kinds(classified: &Classified, request: &Request) -> EvidenceKinds {
    let mut kinds = EvidenceKinds::EMPTY;
    match classified {
        Classified::MouseBeacon { outcome, .. } => {
            kinds.insert(match outcome {
                KeyOutcome::Valid => EvidenceKind::MouseEvent,
                KeyOutcome::Replay => EvidenceKind::ReplayedBeacon,
                KeyOutcome::Decoy => EvidenceKind::FetchedDecoy,
                KeyOutcome::Unknown => EvidenceKind::ForgedBeacon,
            });
        }
        Classified::Probe(hit) => match hit.kind {
            ProbeKind::CssProbe => kinds.insert(EvidenceKind::DownloadedCss),
            ProbeKind::JsFile => kinds.insert(EvidenceKind::DownloadedJsFile),
            ProbeKind::AgentBeacon => {
                kinds.insert(EvidenceKind::ExecutedJs);
                if let Some(reported) = &hit.reported_agent {
                    let header = request.user_agent().unwrap_or("");
                    if !reported.is_empty() && UserAgent::canonicalize(header) != *reported {
                        kinds.insert(EvidenceKind::UaMismatch);
                    }
                }
                if let Some(auto) = &hit.automation {
                    // The "Detecting Bot Detection" leaks: an admitted
                    // webdriver flag or a headless-shaped empty plugin
                    // list are hard robot evidence on their own.
                    if auto.webdriver {
                        kinds.insert(EvidenceKind::AutomationFlag);
                    }
                    if auto.plugins == 0 {
                        kinds.insert(EvidenceKind::HeadlessFingerprint);
                    }
                }
            }
            ProbeKind::HiddenLink => kinds.insert(EvidenceKind::HiddenLinkFollowed),
            ProbeKind::TransparentPixel | ProbeKind::MouseBeacon => {}
        },
        Classified::Ordinary => {}
    }
    kinds
}

/// Folds one recorded exchange's evidence into the key state and updates
/// the fast-path verdict. Runs under the session's shard lock (called
/// from both [`Detector::observe`] and [`Detector::gate_and_observe`]);
/// the session's counters already include the exchange. Returns
/// `(verdict, transitioned, request_index)`.
fn fold_exchange(
    state: &mut KeyState,
    session: &Session,
    classified: &Classified,
    request: &Request,
    min_to_classify: u64,
    now: SimTime,
) -> (Verdict, bool, u32) {
    let request_count = session.request_count();
    let index = request_count as u32;
    let prev = state.verdict;

    let mut hard = false;
    for kind in classified_kinds(classified, request).iter() {
        hard |= state.accumulate(kind, index, now);
    }

    if hard {
        state.verdict =
            classifier::classify_hard(&state.evidence).expect("hard evidence just recorded");
    } else if state.verdict == Verdict::ProvisionalRobot(Reason::NoBrowserSignals)
        && state.has_browser_signals()
    {
        // Browser signals arrived after the no-signal promotion
        // (e.g. a human whose CSS probe fetch trailed a burst of
        // asset requests): the promotion's premise no longer
        // holds. Drop back to Undecided; the batch pass at
        // flush decides.
        state.verdict = Verdict::Undecided;
    } else if state.verdict == Verdict::Undecided && request_count > min_to_classify {
        if !state.has_browser_signals() {
            // A session past the classification minimum with no
            // browser signals at all is robot-leaning: crawlers,
            // spammers and scanners never touch a probe, and
            // waiting longer cannot exonerate them (§3.1's noise
            // rule doubles as the browser-test window).
            state.verdict = Verdict::ProvisionalRobot(Reason::NoBrowserSignals);
        } else if state.evidence.has(EvidenceKind::ExecutedJs) {
            // JS executed but still no mouse event after the
            // classification minimum: the S_JS − S_MM term leans
            // robot. Promoting here keeps the paper's §4.1
            // adversary (a JS-capable bot) under robot-class
            // enforcement while it is live; a later mouse event
            // (hard) overturns this, and the flush applies the
            // full set algebra either way.
            state.verdict = Verdict::ProvisionalRobot(Reason::JsWithoutMouse);
        }
    }
    (state.verdict, prev != state.verdict, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, StatusCode, Uri};
    use botwall_instrument::{InstrumentConfig, Instrumenter};

    fn req(ip: u32, uri: &str, ua: &str) -> Request {
        Request::builder(Method::Get, uri)
            .header("User-Agent", ua)
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    }

    fn ok() -> Response {
        Response::builder(StatusCode::OK)
            .header("Content-Type", "text/html")
            .build()
    }

    /// Drives a full instrument → classify → detect loop for one client.
    fn pipeline() -> (Instrumenter, Detector) {
        (
            Instrumenter::new(InstrumentConfig::default(), 5),
            Detector::new(DetectorConfig::default()),
        )
    }

    #[test]
    fn mouse_beacon_yields_human_verdict() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(1);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // Page fetch.
        let r0 = req(1, "http://h/index.html", "Mozilla/5.0 Firefox/1.5");
        let c0 = ins.classify(&r0, SimTime::ZERO);
        det.observe(&r0, &ok(), &c0, SimTime::ZERO);
        // Beacon fetch after mouse movement.
        let beacon = manifest.mouse_beacon.unwrap();
        let r1 = req(1, &beacon.to_string(), "Mozilla/5.0 Firefox/1.5");
        let c1 = ins.classify(&r1, SimTime::from_secs(2));
        let out = det.observe(&r1, &ok(), &c1, SimTime::from_secs(2));
        assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
        assert!(out.transitioned);
        assert_eq!(out.request_index, 2);
    }

    #[test]
    fn decoy_fetch_yields_robot_verdict() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(2);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let decoy = manifest.decoy_beacons[0].clone();
        let r = req(2, &decoy.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::DecoyFetched));
    }

    #[test]
    fn ua_mismatch_detected_via_agent_beacon() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(3);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // The robot's JS engine reports its true agent, but the header
        // claims IE.
        let agent_url = manifest.agent_beacon.unwrap();
        let honest = "evilbot/1.0";
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(honest));
        let r = req(3, &fetch, "Mozilla/4.0 (compatible; MSIE 6.0)");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::BrowserTypeMismatch));
    }

    #[test]
    fn automation_leak_detected_via_agent_beacon() {
        let (mut ins, det) = pipeline();
        let ua = "Mozilla/5.0 (Windows) Firefox/1.5";
        let page: Uri = "http://h/index.html".parse().unwrap();
        // Webdriver flag admitted: hard robot even with a matching agent.
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            ClientIp::new(31),
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!(
            "{agent_url}?agent={}&wd=1&pl=3",
            UserAgent::canonicalize(ua)
        );
        let r = req(31, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::AutomationLeak));

        // Empty plugin list: the headless fingerprint also decides alone.
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            ClientIp::new(32),
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!(
            "{agent_url}?agent={}&wd=0&pl=0",
            UserAgent::canonicalize(ua)
        );
        let r = req(32, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::AutomationLeak));

        // A clean report (webdriver off, plugins present) stays soft.
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            ClientIp::new(33),
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!(
            "{agent_url}?agent={}&wd=0&pl=3",
            UserAgent::canonicalize(ua)
        );
        let r = req(33, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Undecided);
    }

    #[test]
    fn matching_agent_accumulates_js_without_deciding_online() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(4);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let ua = "Mozilla/5.0 (Windows) Firefox/1.5";
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(ua));
        let r = req(4, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        // JS execution is soft evidence: accumulated now, applied at the
        // batch flush. The fast path stays undecided.
        assert_eq!(out.verdict, Verdict::Undecided);
        let e = det.evidence(&out.key).unwrap();
        assert!(e.has(EvidenceKind::ExecutedJs));
        assert!(!e.has(EvidenceKind::UaMismatch));
        // Flush: JS-without-mouse decides robot via set algebra.
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::JsWithoutMouse);
    }

    #[test]
    fn css_probe_accumulates_and_flushes_human() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(5);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let css = manifest.css_probe.unwrap();
        let r = req(5, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        // Soft evidence: no online decision, but the batch pass at flush
        // applies S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM) ⇒ human.
        assert_eq!(out.verdict, Verdict::Undecided);
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::DownloadedCss));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
        assert_eq!(done[0].reason, Reason::BrowserTestPassed);
    }

    #[test]
    fn soft_signals_exempt_sessions_from_no_signal_promotion() {
        // A long session whose only evidence is a CSS download must stay
        // undecided online (a no-JS human), not get promoted to
        // provisional robot.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(14);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let css = manifest.css_probe.unwrap();
        let r = req(14, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        det.observe(&r, &ok(), &c, SimTime::ZERO);
        let mut last = Verdict::Undecided;
        for i in 0..20 {
            let r = req(14, &format!("http://h/{i}.html"), "Mozilla/5.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i))
                .verdict;
        }
        assert_eq!(last, Verdict::Undecided);
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn hidden_link_is_robot() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(6);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let hidden = manifest.hidden_link.unwrap();
        let r = req(6, &hidden.to_string(), "crawler/2.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::HiddenLink));
    }

    #[test]
    fn captcha_pass_recorded() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(7, "http://h/a.html", "x");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.record_captcha_pass(&out.key, SimTime::from_secs(1));
        assert_eq!(det.verdict(&out.key), Verdict::Human(Reason::CaptchaPassed));
        // The observation carries the session's current request index.
        let e = det.evidence(&out.key).unwrap();
        assert_eq!(e.first(EvidenceKind::PassedCaptcha).unwrap().at_request, 1);
    }

    #[test]
    fn captcha_pass_for_unknown_session_is_a_no_op() {
        use botwall_sessions::SessionKey;
        let det = Detector::new(DetectorConfig::default());
        let ghost = SessionKey::new(ClientIp::new(99), "never-seen");
        det.record_captcha_pass(&ghost, SimTime::ZERO);
        // No phantom evidence, no phantom verdict, no phantom session.
        assert!(det.evidence(&ghost).is_none());
        assert_eq!(det.verdict(&ghost), Verdict::Undecided);
        assert!(det.drain().is_empty());
    }

    #[test]
    fn drain_labels_sessions() {
        let det = Detector::new(DetectorConfig::default());
        // Session with zero probe evidence across 12 requests: robot.
        for i in 0..12 {
            let r = req(8, &format!("http://h/{i}.html"), "wget/1.0");
            det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i));
        }
        let done = det.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::NoBrowserSignals);
        assert!(done[0].classifiable);
    }

    #[test]
    fn short_sessions_marked_unclassifiable() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(9, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        let done = det.drain();
        assert!(!done[0].classifiable, "1 request < minimum of >10");
    }

    #[test]
    fn js_without_mouse_promotes_past_the_classification_minimum() {
        // The §4.1 adversary: executes JS honestly, never mouses. Soft
        // classification waits for the flush, but past the >10-request
        // minimum the fast path must lean robot so enforcement applies
        // while the bot is live.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(17);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let ua = "Mozilla/5.0 Firefox/1.5";
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(ua));
        let r = req(17, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Undecided, "below the minimum");
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(17, &format!("http://h/{i}.html"), ua);
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(1 + i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::JsWithoutMouse));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::JsWithoutMouse);
    }

    #[test]
    fn js_file_fetch_alone_does_not_block_the_no_signal_promotion() {
        // Crawlers download every link including the planted .js file —
        // without executing it. The set algebra ignores the bare fetch,
        // so the no-signal promotion must still fire and keep the
        // crawler under robot-class enforcement while it is live.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(18);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let js = manifest.js_file.unwrap();
        let r = req(18, &js.to_string(), "crawler/1.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::DownloadedJsFile));
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(18, &format!("http://h/{i}.html"), "crawler/1.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(1 + i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::NoBrowserSignals));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
    }

    #[test]
    fn late_browser_signals_clear_the_no_signal_promotion() {
        // A human whose CSS-probe fetch trails a burst of asset requests:
        // 11+ ordinary exchanges promote the session to provisional
        // robot, but the probe download must demote it back to Undecided
        // (and the flush must label it Human).
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(15);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(15, &format!("http://h/asset{i}.png"), "Mozilla/5.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::NoBrowserSignals));
        let css = manifest.css_probe.unwrap();
        let r = req(15, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::from_secs(20));
        let out = det.observe(&r, &ok(), &c, SimTime::from_secs(20));
        assert_eq!(out.verdict, Verdict::Undecided, "promotion premise gone");
        assert!(out.transitioned);
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn rollover_keeps_evidence_with_its_own_incarnation() {
        // A session goes idle past the timeout; the same key returns and
        // produces hard robot evidence. The old incarnation must flush
        // with *its* (empty) evidence, and the new incarnation must keep
        // the robot verdict instead of having its state stolen.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(16);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let r0 = req(16, "http://h/index.html", "Mozilla/5.0");
        det.observe(&r0, &ok(), &Classified::Ordinary, SimTime::ZERO);
        // Two hours later the key returns — a fresh incarnation — and
        // fetches a decoy beacon.
        let later = SimTime::from_hours(2);
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            later,
        );
        let decoy = manifest.decoy_beacons[0].clone();
        let r1 = req(16, &decoy.to_string(), "Mozilla/5.0");
        let c1 = ins.classify(&r1, later);
        let out = det.observe(&r1, &ok(), &c1, later);
        assert_eq!(out.verdict, Verdict::Robot(Reason::DecoyFetched));
        // Flush the rolled-over incarnation only: it must NOT take the
        // new incarnation's decoy evidence with it.
        let done = det.sweep(later + 1);
        assert_eq!(done.len(), 1);
        assert!(!done[0].evidence.has(EvidenceKind::FetchedDecoy));
        assert_eq!(done[0].reason, Reason::NoBrowserSignals);
        // The live incarnation still holds its hard evidence online...
        assert_eq!(det.verdict(&out.key), Verdict::Robot(Reason::DecoyFetched));
        // ...and flushes Robot.
        let done = det.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::DecoyFetched);
    }

    #[test]
    fn sweep_respects_idle_timeout() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(10, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        assert!(det.sweep(SimTime::from_secs(10)).is_empty());
        let done = det.sweep(SimTime::from_hours(2));
        assert_eq!(done.len(), 1);
    }

    /// Unwraps a fused gate result.
    fn done<T>(gated: Gated<T>) -> (ObserveOutcome, Action, Response, T) {
        match gated {
            Gated::Done {
                outcome,
                action,
                response,
                value,
            } => (outcome, action, response, value),
            Gated::NeedsOrigin(lease) => panic!("unexpected lease for {:?}", lease.key()),
        }
    }

    /// Unwraps a leased gate result.
    fn leased<T>(gated: Gated<T>) -> OriginLease {
        match gated {
            Gated::NeedsOrigin(lease) => lease,
            Gated::Done { outcome, .. } => panic!("expected a lease, got {outcome:?}"),
        }
    }

    #[test]
    fn gate_gates_on_pre_exchange_state_then_records_fused() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(30, "http://h/a.html", "wget/1.0");
        let gated = det.gate(
            &r,
            &Sighting::Ordinary,
            SimTime::ZERO,
            true,
            &policy,
            |action, session, _state, classified| {
                assert_eq!(
                    session.request_count(),
                    0,
                    "the gate must see pre-exchange counters"
                );
                assert_eq!(action, Action::Allow, "first exchange passes");
                assert_eq!(classified, &Classified::Ordinary);
                GateRespond::Respond(ok(), 7u32)
            },
        );
        let (out, action, response, seen) = done(gated);
        assert_eq!(seen, 7);
        assert_eq!(action, Action::Allow);
        assert_eq!(out.request_index, 1, "the exchange was recorded");
        assert_eq!(response.status(), StatusCode::OK);
        assert_eq!(det.tracker().get(&out.key).unwrap().request_count(), 1);
    }

    #[test]
    fn leased_exchange_commits_outside_the_gate() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(40, "http://h/a.html", "Mozilla/5.0");
        let lease = leased(det.gate(
            &r,
            &Sighting::Ordinary,
            SimTime::ZERO,
            true,
            &policy,
            |action, _, _, _| {
                assert_eq!(action, Action::Allow);
                GateRespond::<()>::NeedsOrigin
            },
        ));
        assert_eq!(lease.action(), Action::Allow);
        assert_eq!(lease.request_count(), 0);
        assert_eq!(lease.verdict(), Verdict::Undecided);
        // Nothing recorded while the origin fetch is in flight — and the
        // shard is free: the detector is fully reentrant here, even for
        // the same key.
        assert_eq!(det.tracker().get(lease.key()).unwrap().request_count(), 0);
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(1));
        let (out, response, served) = det.commit_exchange(
            lease,
            &r,
            SimTime::from_secs(2),
            |session, _state| {
                assert_eq!(session.request_count(), 1, "the interleaved exchange");
                (ok(), true)
            },
            || (Response::empty(StatusCode::BAD_GATEWAY), false),
        );
        assert!(served, "live lease commits through the fold path");
        assert_eq!(response.status(), StatusCode::OK);
        assert_eq!(out.request_index, 2);
        assert_eq!(det.tracker().get(&out.key).unwrap().request_count(), 2);
    }

    #[test]
    fn concurrent_leased_burst_is_blocked_while_its_origins_hang() {
        use crate::classifier::Reason;
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        // A loose robot bucket so the token-bucket throttle cannot mask
        // the behavioural threshold under test; rate threshold at the
        // default 10 req/s.
        let policy = PolicyEngine::new(PolicyConfig {
            robot_rate_per_sec: 100.0,
            robot_burst: 100.0,
            ..PolicyConfig::default()
        });
        let r = req(44, "http://h/a.html", "wget/1.0");
        // Recorded history: 6 exchanges over 2 s (3 req/s — under the
        // threshold), then classify the session as a robot.
        let mut key = None;
        for i in 0..6u64 {
            let out = det.observe(
                &r,
                &ok(),
                &Classified::Ordinary,
                SimTime::from_millis(i * 400),
            );
            key = Some(out.key);
        }
        let key = key.unwrap();
        det.with_key_state(&key, |_, state| {
            state.verdict = Verdict::Robot(Reason::DecoyFetched);
        });
        // A concurrent burst at t=2s: every request leases (slow origin,
        // nothing commits). Without the in-flight fold the recorded rate
        // stays 3 req/s for the whole burst and all 30 would pass; with
        // it the gate sees (6 + in_flight) / 2s and blocks mid-burst.
        let now = SimTime::from_secs(2);
        let mut leases = Vec::new();
        let mut blocked_at = None;
        for i in 0..30u32 {
            let gated = det.gate(
                &r,
                &Sighting::Ordinary,
                now,
                true,
                &policy,
                |action, _, _, _| {
                    if action == Action::Allow {
                        GateRespond::<()>::NeedsOrigin
                    } else {
                        GateRespond::Respond(Response::empty(StatusCode::FORBIDDEN), ())
                    }
                },
            );
            match gated {
                Gated::NeedsOrigin(lease) => leases.push(lease),
                Gated::Done { action, .. } => {
                    assert_eq!(action, Action::Block, "burst must block, not throttle");
                    blocked_at = Some(i);
                    break;
                }
            }
        }
        // (6 + i) / 2s crosses 10 req/s at the 16th in-flight lease.
        assert_eq!(
            blocked_at,
            Some(15),
            "behavioural blocking engages mid-burst, before any commit lands"
        );
        assert_eq!(
            det.with_key_state(&key, |_, state| state.in_flight),
            Some(15)
        );
        // The hanging origins answer: every commit folds its lease back
        // in and the in-flight census drains to zero.
        for lease in leases {
            let (_, response, ()) =
                det.commit_exchange(lease, &r, now + 100, |_, _| (ok(), ()), || (ok(), ()));
            assert_eq!(response.status(), StatusCode::OK);
        }
        assert_eq!(
            det.with_key_state(&key, |_, state| state.in_flight),
            Some(0),
            "commits drain the in-flight census"
        );
    }

    #[test]
    fn lost_commit_parks_a_carry_absorbed_by_the_next_incarnation() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let cfg = DetectorConfig {
            tracker: TrackerConfig {
                max_sessions: 1,
                ..TrackerConfig::default()
            },
        };
        let det = Detector::new(cfg);
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(41, "http://h/a.html", "Mozilla/5.0");
        let lease = leased(det.gate(
            &r,
            &Sighting::Ordinary,
            SimTime::ZERO,
            true,
            &policy,
            |_, _, _, _| GateRespond::<()>::NeedsOrigin,
        ));
        // Another key evicts the leased session while the fetch runs.
        let other = req(42, "http://h/b.html", "Mozilla/5.0");
        det.observe(&other, &ok(), &Classified::Ordinary, SimTime::from_secs(1));
        let (out, response, ()) = det.commit_exchange(
            lease,
            &r,
            SimTime::from_secs(2),
            |_, _| panic!("evicted lease must not fold"),
            || (ok(), ()),
        );
        // The client still got its answer...
        assert_eq!(response.status(), StatusCode::OK);
        assert_eq!(out.verdict, Verdict::Undecided);
        // ...and the key's next incarnation absorbs the lost exchange.
        let next = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(3));
        assert_eq!(
            det.with_key_state(&next.key, |_, state| state.lost_commits),
            Some(1)
        );
    }

    #[test]
    fn lost_commit_carries_hard_evidence_to_the_next_incarnation() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        use botwall_instrument::{ProbeHit, ProbeKind};
        let cfg = DetectorConfig {
            tracker: TrackerConfig {
                max_sessions: 1,
                ..TrackerConfig::default()
            },
        };
        let det = Detector::new(cfg);
        let policy = PolicyEngine::new(PolicyConfig::default());
        // The exchange caught mid-flight is a hidden-link follow — hard
        // robot evidence.
        let r = req(45, "http://h/trap.html", "Mozilla/5.0");
        let hit = Sighting::Probe(ProbeHit {
            kind: ProbeKind::HiddenLink,
            nonce: 7,
            reported_agent: None,
            automation: None,
        });
        let lease = leased(
            det.gate(&r, &hit, SimTime::ZERO, true, &policy, |_, _, _, _| {
                GateRespond::<()>::NeedsOrigin
            }),
        );
        // Another key evicts the leased session while the fetch runs.
        let other = req(46, "http://h/b.html", "Mozilla/5.0");
        det.observe(&other, &ok(), &Classified::Ordinary, SimTime::from_secs(1));
        let (out, _, ()) = det.commit_exchange(
            lease,
            &r,
            SimTime::from_secs(2),
            |_, _| panic!("evicted lease must not fold"),
            || (ok(), ()),
        );
        assert_eq!(out.verdict, Verdict::Undecided);
        // The eviction must not launder the evidence: the key's next
        // incarnation inherits the hidden-link signal, not just a
        // lost-commit count, and is convicted on arrival.
        let next = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(3));
        assert_eq!(next.verdict, Verdict::Robot(Reason::HiddenLink));
        det.with_key_state(&next.key, |_, state| {
            assert_eq!(state.lost_commits, 1);
            assert!(state.evidence.has(EvidenceKind::HiddenLinkFollowed));
            assert_eq!(state.verdict, Verdict::Robot(Reason::HiddenLink));
        })
        .expect("next incarnation is live");
    }

    #[test]
    fn lost_commit_with_a_live_successor_convicts_it_immediately() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        use botwall_instrument::{ProbeHit, ProbeKind};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(47, "http://h/trap.html", "Mozilla/5.0");
        let hit = Sighting::Probe(ProbeHit {
            kind: ProbeKind::HiddenLink,
            nonce: 9,
            reported_agent: None,
            automation: None,
        });
        let lease = leased(
            det.gate(&r, &hit, SimTime::ZERO, true, &policy, |_, _, _, _| {
                GateRespond::<()>::NeedsOrigin
            }),
        );
        // The key returns after the idle timeout mid-fetch: a successor
        // incarnation is live when the commit finally lands.
        let later = SimTime::from_hours(2);
        let successor = det.observe(&r, &ok(), &Classified::Ordinary, later);
        det.commit_exchange(
            lease,
            &r,
            later + 1,
            |_, _| panic!("rolled-over lease must not fold into the successor"),
            || (ok(), ()),
        );
        // The successor takes the evidence directly at commit time — no
        // further request needed to convict it.
        det.with_key_state(&successor.key, |_, state| {
            assert_eq!(state.lost_commits, 1);
            assert!(state.evidence.has(EvidenceKind::HiddenLinkFollowed));
            assert_eq!(state.verdict, Verdict::Robot(Reason::HiddenLink));
        })
        .expect("successor is live");
    }

    #[test]
    fn lost_commit_after_rollover_lands_on_the_successor_with_its_block_intact() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(43, "http://h/a.html", "Mozilla/5.0");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.with_key_state(&out.key, |_, state| state.policy.block());
        // Lease while blocked? No — enforcement off for the lease so the
        // gate allows it; the point is the successor's carried state.
        let lease = leased(det.gate(
            &r,
            &Sighting::Ordinary,
            SimTime::from_secs(1),
            false,
            &policy,
            |_, _, _, _| GateRespond::<()>::NeedsOrigin,
        ));
        // The key returns after the idle timeout mid-fetch: rollover.
        let later = SimTime::from_hours(2);
        det.observe(&r, &ok(), &Classified::Ordinary, later);
        let (_, response, ()) = det.commit_exchange(
            lease,
            &r,
            later + 1,
            |_, _| panic!("rolled-over lease must not fold into the successor"),
            || (ok(), ()),
        );
        assert_eq!(response.status(), StatusCode::OK);
        // The successor took the lost commit directly — and its
        // rollover-carried block flag is untouched.
        det.with_key_state(&out.key, |session, state| {
            assert_eq!(session.request_count(), 1);
            assert_eq!(state.lost_commits, 1);
            assert!(state.policy.is_blocked(), "carried block flag survives");
        })
        .expect("successor is live");
    }

    #[test]
    fn gate_redeems_beacons_against_session_tokens() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        use botwall_instrument::BeaconKey;
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r0 = req(31, "http://h/index.html", "Mozilla/5.0");
        let out = det.observe(&r0, &ok(), &Classified::Ordinary, SimTime::ZERO);
        // A page rewrite (normally the gateway's respond closure) parked
        // a beacon key in the session's colocated token state.
        let key = BeaconKey::from_raw(0xfeed);
        det.with_key_state(&out.key, |_, state| {
            state
                .tokens
                .issue("/index.html", key, vec![], None, SimTime::ZERO, 64);
        });
        // The beacon fetch resolves inside the same critical section —
        // the fused single-lock path, never leased.
        let beacon = botwall_instrument::beacon::encode("h", key);
        let r1 = req(31, &beacon.to_string(), "Mozilla/5.0");
        let (out, _, _, ()) = done(det.gate(
            &r1,
            &Sighting::MouseBeacon(key),
            SimTime::from_secs(1),
            true,
            &policy,
            |_, _, _, classified| {
                assert!(matches!(
                    classified,
                    Classified::MouseBeacon {
                        outcome: KeyOutcome::Valid,
                        ..
                    }
                ));
                GateRespond::Respond(ok(), ())
            },
        ));
        assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
    }

    #[test]
    fn gate_holds_a_carried_block_on_the_rollover_request() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(32, "http://h/a.html", "wget/1.0");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.with_key_state(&out.key, |_, state| state.policy.block());
        // Two hours idle: the return request starts a new incarnation,
        // but the carried block must gate it immediately.
        let later = SimTime::from_hours(2);
        let (_, action, response, ()) = done(det.gate(
            &r,
            &Sighting::Ordinary,
            later,
            true,
            &policy,
            |action, _, _, _| {
                assert_eq!(action, Action::Block);
                GateRespond::Respond(Response::empty(StatusCode::FORBIDDEN), ())
            },
        ));
        assert_eq!(action, Action::Block);
        assert_eq!(response.status(), StatusCode::FORBIDDEN);
    }

    #[test]
    fn pending_pass_carry_reaches_the_next_incarnation() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(33, "http://h/a.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        // A CAPTCHA pass verified while the key has no live session
        // parks in the shard...
        det.tracker().with_entry_and_carry(&key, |entry, slot| {
            assert!(entry.is_none());
            *slot = Some(KeyCarry::from(PendingCaptchaPass {
                at: SimTime::from_secs(5),
            }));
        });
        // ...and the key's first exchange absorbs it as ground truth.
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(6));
        assert_eq!(out.verdict, Verdict::Human(Reason::CaptchaPassed));
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::PassedCaptcha));
    }

    #[test]
    fn expire_key_state_purges_tokens_and_stale_challenges_of_live_sessions() {
        use botwall_instrument::BeaconKey;
        let det = Detector::new(DetectorConfig::default());
        let r = req(34, "http://h/a.html", "Mozilla/5.0");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.with_key_state(&out.key, |_, state| {
            state.tokens.issue(
                "/a.html",
                BeaconKey::from_raw(1),
                vec![],
                None,
                SimTime::ZERO,
                64,
            );
            state.challenge = Some(ChallengeState::new(9, SimTime::ZERO));
        });
        // Within TTL: untouched.
        det.expire_key_state(SimTime::from_secs(10), 3_600_000, 3_600_000);
        det.with_key_state(&out.key, |_, state| {
            assert_eq!(state.tokens.len(), 1);
            assert!(state.challenge.is_some());
        });
        // Past TTL: both expire, without flushing the session.
        det.expire_key_state(SimTime::from_hours(2), 3_600_000, 3_600_000);
        det.with_key_state(&out.key, |_, state| {
            assert!(state.tokens.is_empty());
            assert!(state.challenge.is_none());
        });
        assert_eq!(det.tracker().live_count(), 1);
    }

    #[test]
    fn detector_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Detector>();
    }

    #[test]
    fn parallel_observe_keeps_per_key_verdicts_isolated() {
        use std::sync::Arc;
        let det = Arc::new(Detector::new(DetectorConfig::default()));
        let handles: Vec<_> = (0..4u32)
            .map(|n| {
                let det = Arc::clone(&det);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let r = req(100 + n, &format!("http://h/{i}.html"), "wget/1.0");
                        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every thread's key is independently promoted to no-signal robot.
        for n in 0..4u32 {
            let key = SessionKey::new(ClientIp::new(100 + n), "wget/1.0");
            assert_eq!(
                det.verdict(&key),
                Verdict::ProvisionalRobot(Reason::NoBrowserSignals)
            );
        }
        let done = det.drain();
        assert_eq!(done.len(), 4);
        assert_eq!(
            done.iter().map(|c| c.session.request_count()).sum::<u64>(),
            800
        );
    }
}
