//! The online detection engine.
//!
//! [`Detector`] wires together the session tracker, the instrumentation
//! classification stream, and the set-algebra classifier, producing verdict
//! transitions in real time — the paper's core claim is that this works
//! "on-line at data request rates".
//!
//! # Staged evidence application
//!
//! Following the paper's "quick decision first" staging (§4.1), the
//! per-exchange fast path folds only *hard* evidence into the online
//! verdict (decoy fetches, beacon replays/forgeries, hidden links,
//! browser-type mismatches, mouse events, CAPTCHA passes), plus the
//! count-based no-browser-signals promotion that catches probe-blind
//! crawlers. Soft browser-test signals (CSS/JS downloads, JS execution)
//! are *accumulated* per exchange but only *applied* — via the full
//! set-algebra rule — in batch when a session flushes at [`Detector::sweep`]
//! / [`Detector::drain`] boundaries. Most exchanges carry no new evidence
//! at all, so the fast path is a cached-verdict read.
//!
//! # Shard-owned state
//!
//! All per-key mutable state — the evidence set, the cached fast-path
//! verdict, the enforcement [`PolicyState`], the outstanding beacon
//! tokens ([`TokenState`]), and the outstanding CAPTCHA challenge record
//! — lives in a [`KeyState`] colocated with the session record inside
//! the tracker's shard entry ([`ShardedTracker<KeyState>`]). The fused
//! entry point [`Detector::gate_and_observe`] runs policy gate →
//! response production → exchange observation → fast-path classification
//! inside **one** `with_exchange` critical section, so a steady-state
//! request costs exactly one shard-mutex acquisition; the whole API is
//! `&self`, and the detector is `Send + Sync`: requests for different
//! keys proceed in parallel on different shards. Incarnation pairing is
//! structural — when a key rolls over or is evicted, its state is
//! finalized *with* its session, so a flushed predecessor can never
//! steal (or leak into) a successor's evidence. A CAPTCHA pass that
//! lands while a key has no live session rides the tracker's
//! deferred-carry channel ([`PendingCaptchaPass`]) to the key's next
//! incarnation.

use crate::classifier::{self, Label, Reason, Verdict};
use crate::evidence::{EvidenceKind, EvidenceSet};
use crate::policy::{Action, PolicyEngine, PolicyState};
use botwall_http::{Request, Response, UserAgent};
use botwall_instrument::{Classified, KeyOutcome, ProbeKind, Sighting, TokenState};
use botwall_sessions::{
    Finalized, Session, SessionExt, SessionKey, ShardedTracker, SimTime, TrackerConfig,
};
use serde::{Deserialize, Serialize};

/// Configuration for [`Detector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectorConfig {
    /// Session tracking parameters (idle timeout, classification minimum).
    pub tracker: TrackerConfig,
}

/// What [`Detector::observe`] reports about one exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveOutcome {
    /// The session this exchange belongs to.
    pub key: SessionKey,
    /// The fast-path verdict after folding in this exchange: hard
    /// evidence plus the no-browser-signals promotion. Soft signals are
    /// applied in batch at flush (see the module docs), so a session with
    /// only CSS/JS evidence reads `Undecided` here.
    pub verdict: Verdict,
    /// Whether the verdict changed on this exchange.
    pub transitioned: bool,
    /// The request index within the session.
    pub request_index: u32,
}

/// A finished session with its evidence and final label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletedSession {
    /// The underlying session (records + counters).
    pub session: Session,
    /// All evidence collected.
    pub evidence: EvidenceSet,
    /// The final label per the set-algebra classifier.
    pub label: Label,
    /// The reason backing the label.
    pub reason: Reason,
    /// Whether the session met the >10-request classification minimum.
    pub classifiable: bool,
}

/// An outstanding CAPTCHA challenge for one session: which challenge the
/// session must answer, when it was issued, and how many wrong answers
/// it has burned. Colocated in [`KeyState`], replacing the old global
/// issue-table mutex — matching, clearing, and attempt counting all
/// happen under the session's shard lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeState {
    /// The outstanding challenge's id.
    pub id: u64,
    /// When it was issued.
    pub issued: SimTime,
    /// Wrong answers so far.
    pub attempts: u32,
}

impl ChallengeState {
    /// A freshly issued challenge record.
    pub fn new(id: u64, issued: SimTime) -> ChallengeState {
        ChallengeState {
            id,
            issued,
            attempts: 0,
        }
    }
}

/// A CAPTCHA pass verified while its key had no live session (swept or
/// evicted between issue and answer) — the detector's deferred-carry
/// payload. It parks in the key's tracker shard and is absorbed by the
/// key's next incarnation the moment it is created, so a correct answer
/// is never silently dropped and no global pending table exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingCaptchaPass {
    /// When the pass was verified.
    pub at: SimTime,
}

/// Per-key detection state, colocated with the session record in its
/// tracker shard entry: the accumulated evidence, the cached fast-path
/// verdict, the enforcement state, the outstanding beacon tokens, and
/// the outstanding challenge record.
#[derive(Debug)]
pub struct KeyState {
    /// Evidence accumulated for the live incarnation.
    pub evidence: EvidenceSet,
    /// The cached fast-path verdict.
    pub verdict: Verdict,
    /// Rate-bucket and block state for the policy engine.
    pub policy: PolicyState,
    /// Outstanding beacon keys and stored scripts for this session.
    pub tokens: TokenState,
    /// The CAPTCHA challenge this session must answer, if one is
    /// outstanding.
    pub challenge: Option<ChallengeState>,
}

impl Default for KeyState {
    fn default() -> Self {
        KeyState {
            evidence: EvidenceSet::new(),
            verdict: Verdict::Undecided,
            policy: PolicyState::default(),
            tokens: TokenState::default(),
            challenge: None,
        }
    }
}

impl SessionExt for KeyState {
    type Carry = PendingCaptchaPass;

    /// At idle rollover, evidence, verdict, tokens, and any outstanding
    /// challenge start clean (the successor is a *new* session and must
    /// be judged on its own behaviour; its beacon keys and challenges
    /// are long expired), but the policy block flag survives — a blocked
    /// robot does not earn a reset by going quiet for an hour.
    fn on_rollover(&self) -> KeyState {
        KeyState {
            policy: self.policy.carry_over(),
            ..KeyState::default()
        }
    }

    /// A deferred CAPTCHA pass reaches the key's next incarnation here:
    /// ground-truth-human evidence lands before the first exchange is
    /// even recorded, so mandatory-challenge gates already see a proven
    /// human.
    fn absorb(&mut self, carry: PendingCaptchaPass, session: &Session) {
        self.record_captcha_pass(session.request_count() as u32, carry.at);
    }
}

impl KeyState {
    /// Records a ground-truth CAPTCHA pass directly on this state (hard
    /// human evidence; the fast-path verdict updates immediately). For
    /// callers already holding the session's shard lock — the detector's
    /// [`Detector::record_captcha_pass`] and the carry absorption both
    /// route through here.
    pub fn record_captcha_pass(&mut self, index: u32, at: SimTime) {
        self.evidence.record(EvidenceKind::PassedCaptcha, index, at);
        self.verdict =
            classifier::classify_hard(&self.evidence).expect("captcha pass is hard evidence");
    }

    /// Records one evidence observation and returns whether it was hard
    /// (decides the verdict on its own).
    fn accumulate(&mut self, kind: EvidenceKind, index: u32, now: SimTime) -> bool {
        self.evidence.record(kind, index, now);
        kind.is_hard_robot_evidence() || kind.is_hard_human_evidence()
    }

    /// Whether a browser-test signal the set algebra credits (CSS
    /// download, JS execution) has been accumulated — soft evidence that
    /// exempts the session from the no-browser-signals promotion until
    /// the batch pass decides it. Merely *fetching* the .js file is not
    /// a signal: crawlers download every link, the set algebra ignores
    /// it, and waiting can never exonerate such a session.
    fn has_browser_signals(&self) -> bool {
        self.evidence.has(EvidenceKind::DownloadedCss)
            || self.evidence.has(EvidenceKind::ExecutedJs)
    }
}

/// The online human/robot detector.
///
/// Shard-parallel and `Send + Sync`: every method takes `&self`, and all
/// per-key state lives inside the sharded tracker (see the module docs).
///
/// # Examples
///
/// ```
/// use botwall_core::{Detector, DetectorConfig};
/// use botwall_core::classifier::Verdict;
/// use botwall_http::request::ClientIp;
/// use botwall_http::{Method, Request, Response, StatusCode};
/// use botwall_instrument::Classified;
/// use botwall_sessions::SimTime;
///
/// let det = Detector::new(DetectorConfig::default());
/// let req = Request::builder(Method::Get, "http://h/a.html")
///     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
///     .client(ClientIp::new(1))
///     .build()
///     .unwrap();
/// let resp = Response::empty(StatusCode::OK);
/// let out = det.observe(&req, &resp, &Classified::Ordinary, SimTime::ZERO);
/// assert_eq!(out.verdict, Verdict::Undecided);
/// ```
#[derive(Debug)]
pub struct Detector {
    tracker: ShardedTracker<KeyState>,
}

impl Detector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Detector {
        Detector {
            tracker: ShardedTracker::new(config.tracker),
        }
    }

    /// Feeds one exchange plus its instrumentation classification.
    ///
    /// `classified` should come from
    /// [`botwall_instrument::Instrumenter::classify`] on the same request.
    ///
    /// This is the fast path: evidence is accumulated, but only hard
    /// evidence updates the verdict here. Soft browser-test signals are
    /// applied in batch when the session flushes (see the module docs).
    /// Session update and evidence fold share one shard-lock acquisition.
    pub fn observe(
        &self,
        request: &Request,
        response: &Response,
        classified: &Classified,
        now: SimTime,
    ) -> ObserveOutcome {
        let min_to_classify = self.tracker.config().min_requests_to_classify;
        let (key, (verdict, transitioned, request_index)) =
            self.tracker
                .observe_with(request, Some(response), now, |session, state| {
                    fold_exchange(state, session, classified, request, min_to_classify, now)
                });
        ObserveOutcome {
            key,
            verdict,
            transitioned,
            request_index,
        }
    }

    /// The fused request path: policy gate → response production →
    /// exchange observation → fast-path classification, all inside
    /// **one** shard critical section — a steady-state request costs
    /// exactly one shard-mutex acquisition, where the PR-3 gateway took
    /// the same lock twice (gate, then observe) plus an instrumenter
    /// `RwLock` and assorted global mutexes.
    ///
    /// The flow inside the critical section:
    ///
    /// 1. **Gate.** With `enforce`, the policy engine decides on the
    ///    verdict and counters *as of the previous request*. The first
    ///    exchange of an incarnation has nothing to rate-limit yet and
    ///    passes — unless a rollover carried a block flag, which holds.
    /// 2. **Resolve.** The engine's stateless [`Sighting`] is resolved
    ///    against per-session state: a beacon-shaped fetch redeems its
    ///    key in the session's colocated [`TokenState`] (the operation
    ///    that used to write-lock a global token table).
    /// 3. **Respond.** The caller builds the response — serving probe
    ///    objects from session state, instrumenting origin pages into
    ///    it, issuing challenges into the session's [`ChallengeState`] —
    ///    with full mutable access to the [`KeyState`].
    /// 4. **Observe.** The finished exchange is recorded and its
    ///    evidence folded, updating the fast-path verdict.
    ///
    /// The respond callback runs under the shard lock: it must not call
    /// back into this detector (or anything that could take the same
    /// shard lock again).
    pub fn gate_and_observe<T>(
        &self,
        request: &Request,
        sighting: &Sighting,
        now: SimTime,
        enforce: bool,
        policy: &PolicyEngine,
        respond: impl FnOnce(Action, &Session, &mut KeyState, &Classified) -> (Response, T),
    ) -> (ObserveOutcome, Action, Response, T) {
        let min_to_classify = self.tracker.config().min_requests_to_classify;
        let (key, (action, response, value, verdict, transitioned, request_index)) =
            self.tracker.with_exchange(request, now, |entry| {
                // 1. Policy gate on pre-exchange state.
                let action = {
                    let (session, state) = entry.parts();
                    if !enforce {
                        Action::Allow
                    } else if session.request_count() == 0 {
                        // An incarnation's first exchange creates the
                        // state — nothing to enforce against yet, except
                        // a block flag carried over an idle rollover.
                        if state.policy.is_blocked() {
                            Action::Block
                        } else {
                            Action::Allow
                        }
                    } else {
                        policy.decide(
                            &mut state.policy,
                            state.verdict,
                            session.counters(),
                            session.request_rate(),
                            now,
                        )
                    }
                };
                // 2. Resolve the sighting against session token state.
                let classified = match sighting {
                    Sighting::MouseBeacon(key) => {
                        let outcome = entry.ext().tokens.redeem(*key, now);
                        Classified::MouseBeacon { key: *key, outcome }
                    }
                    Sighting::Probe(hit) => Classified::Probe(hit.clone()),
                    Sighting::Ordinary => Classified::Ordinary,
                };
                // 3. Build the response.
                let (response, value) = {
                    let (session, state) = entry.parts();
                    respond(action, session, state, &classified)
                };
                // 4. Record the exchange and fold its evidence.
                entry.record(request, Some(&response), now);
                let (session, state) = entry.parts();
                let (verdict, transitioned, index) =
                    fold_exchange(state, session, &classified, request, min_to_classify, now);
                (action, response, value, verdict, transitioned, index)
            });
        (
            ObserveOutcome {
                key,
                verdict,
                transitioned,
                request_index,
            },
            action,
            response,
            value,
        )
    }

    /// Records a CAPTCHA pass for a session (ground-truth human).
    ///
    /// A key the tracker has never seen is a no-op: there is no session
    /// to credit, and inventing one would attach ground-truth-human
    /// evidence to a phantom record.
    pub fn record_captcha_pass(&self, key: &SessionKey, now: SimTime) {
        self.tracker.with_entry(key, |session, state| {
            state.record_captcha_pass(session.request_count() as u32, now);
        });
    }

    /// The current fast-path verdict for a live session.
    pub fn verdict(&self, key: &SessionKey) -> Verdict {
        self.tracker
            .with_entry(key, |_, state| state.verdict)
            .unwrap_or(Verdict::Undecided)
    }

    /// A snapshot of the evidence collected so far for a live session
    /// (the original lives behind its shard lock).
    pub fn evidence(&self, key: &SessionKey) -> Option<EvidenceSet> {
        self.tracker
            .with_entry(key, |_, state| state.evidence.clone())
    }

    /// Runs `f` against a live session and its colocated detection/policy
    /// state under the key's shard lock; `None` when the key has no live
    /// session. This is the gateway's one-lock enforcement gate.
    pub fn with_key_state<R>(
        &self,
        key: &SessionKey,
        f: impl FnOnce(&Session, &mut KeyState) -> R,
    ) -> Option<R> {
        self.tracker.with_entry(key, f)
    }

    /// Read access to the underlying session tracker.
    pub fn tracker(&self) -> &ShardedTracker<KeyState> {
        &self.tracker
    }

    /// Folds every live session's colocated state (shards in index
    /// order, one lock at a time) — how per-key aggregates like token
    /// occupancy and outstanding challenges merge into stats without any
    /// global table.
    pub fn fold_key_states<A>(&self, init: A, f: impl FnMut(A, &Session, &KeyState) -> A) -> A {
        self.tracker.fold_entries(init, f)
    }

    /// Expires per-key instrumentation state of *live* sessions:
    /// beacon tokens older than `token_ttl_ms` and challenge records
    /// older than `challenge_ttl_ms` as of `now`. Dead sessions need no
    /// pass — their state flushes with the entry. Called by the
    /// gateway's sweep, replacing the old global token-table and
    /// issue-table sweeps.
    pub fn expire_key_state(&self, now: SimTime, token_ttl_ms: u64, challenge_ttl_ms: u64) {
        self.tracker.visit_entries_mut(|_, state| {
            state.tokens.sweep(now, token_ttl_ms);
            if state
                .challenge
                .is_some_and(|ch| now.since(ch.issued) > challenge_ttl_ms)
            {
                state.challenge = None;
            }
        });
    }

    /// Expires idle sessions as of `now`, applying the batch set-algebra
    /// classification to each and finalizing their labels.
    pub fn sweep(&self, now: SimTime) -> Vec<CompletedSession> {
        let finished = self.tracker.sweep(now);
        self.complete(finished)
    }

    /// Finalizes everything (end of experiment).
    pub fn drain(&self) -> Vec<CompletedSession> {
        let finished = self.tracker.drain();
        let mut out = self.complete(finished);
        out.sort_by(|a, b| a.session.key().cmp(b.session.key()));
        out
    }

    /// The batch boundary: accumulated evidence is applied through the
    /// full set-algebra rule for every flushed session at once. Pairing
    /// is structural — each finalized session carries the state of its
    /// own incarnation (tokens and challenge records expire with it).
    fn complete(&self, finished: Vec<Finalized<KeyState>>) -> Vec<CompletedSession> {
        finished
            .into_iter()
            .map(|Finalized { session, ext }| {
                let verdict = classifier::classify_online(&ext.evidence);
                let (label, reason) = classifier::finalize(verdict);
                let classifiable = self.tracker.classifiable(&session);
                CompletedSession {
                    session,
                    evidence: ext.evidence,
                    label,
                    reason,
                    classifiable,
                }
            })
            .collect()
    }
}

/// Folds one recorded exchange's evidence into the key state and updates
/// the fast-path verdict. Runs under the session's shard lock (called
/// from both [`Detector::observe`] and [`Detector::gate_and_observe`]);
/// the session's counters already include the exchange. Returns
/// `(verdict, transitioned, request_index)`.
fn fold_exchange(
    state: &mut KeyState,
    session: &Session,
    classified: &Classified,
    request: &Request,
    min_to_classify: u64,
    now: SimTime,
) -> (Verdict, bool, u32) {
    let request_count = session.request_count();
    let index = request_count as u32;
    let prev = state.verdict;

    let mut hard = false;
    match classified {
        Classified::MouseBeacon { outcome, .. } => {
            let kind = match outcome {
                KeyOutcome::Valid => EvidenceKind::MouseEvent,
                KeyOutcome::Replay => EvidenceKind::ReplayedBeacon,
                KeyOutcome::Decoy => EvidenceKind::FetchedDecoy,
                KeyOutcome::Unknown => EvidenceKind::ForgedBeacon,
            };
            hard |= state.accumulate(kind, index, now);
        }
        Classified::Probe(hit) => match hit.kind {
            ProbeKind::CssProbe => {
                hard |= state.accumulate(EvidenceKind::DownloadedCss, index, now);
            }
            ProbeKind::JsFile => {
                hard |= state.accumulate(EvidenceKind::DownloadedJsFile, index, now);
            }
            ProbeKind::AgentBeacon => {
                hard |= state.accumulate(EvidenceKind::ExecutedJs, index, now);
                if let Some(reported) = &hit.reported_agent {
                    let header = request.user_agent().unwrap_or("");
                    if !reported.is_empty() && UserAgent::canonicalize(header) != *reported {
                        hard |= state.accumulate(EvidenceKind::UaMismatch, index, now);
                    }
                }
            }
            ProbeKind::HiddenLink => {
                hard |= state.accumulate(EvidenceKind::HiddenLinkFollowed, index, now);
            }
            ProbeKind::TransparentPixel | ProbeKind::MouseBeacon => {}
        },
        Classified::Ordinary => {}
    }

    if hard {
        state.verdict =
            classifier::classify_hard(&state.evidence).expect("hard evidence just recorded");
    } else if state.verdict == Verdict::ProvisionalRobot(Reason::NoBrowserSignals)
        && state.has_browser_signals()
    {
        // Browser signals arrived after the no-signal promotion
        // (e.g. a human whose CSS probe fetch trailed a burst of
        // asset requests): the promotion's premise no longer
        // holds. Drop back to Undecided; the batch pass at
        // flush decides.
        state.verdict = Verdict::Undecided;
    } else if state.verdict == Verdict::Undecided && request_count > min_to_classify {
        if !state.has_browser_signals() {
            // A session past the classification minimum with no
            // browser signals at all is robot-leaning: crawlers,
            // spammers and scanners never touch a probe, and
            // waiting longer cannot exonerate them (§3.1's noise
            // rule doubles as the browser-test window).
            state.verdict = Verdict::ProvisionalRobot(Reason::NoBrowserSignals);
        } else if state.evidence.has(EvidenceKind::ExecutedJs) {
            // JS executed but still no mouse event after the
            // classification minimum: the S_JS − S_MM term leans
            // robot. Promoting here keeps the paper's §4.1
            // adversary (a JS-capable bot) under robot-class
            // enforcement while it is live; a later mouse event
            // (hard) overturns this, and the flush applies the
            // full set algebra either way.
            state.verdict = Verdict::ProvisionalRobot(Reason::JsWithoutMouse);
        }
    }
    (state.verdict, prev != state.verdict, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, StatusCode, Uri};
    use botwall_instrument::{InstrumentConfig, Instrumenter};

    fn req(ip: u32, uri: &str, ua: &str) -> Request {
        Request::builder(Method::Get, uri)
            .header("User-Agent", ua)
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    }

    fn ok() -> Response {
        Response::builder(StatusCode::OK)
            .header("Content-Type", "text/html")
            .build()
    }

    /// Drives a full instrument → classify → detect loop for one client.
    fn pipeline() -> (Instrumenter, Detector) {
        (
            Instrumenter::new(InstrumentConfig::default(), 5),
            Detector::new(DetectorConfig::default()),
        )
    }

    #[test]
    fn mouse_beacon_yields_human_verdict() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(1);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // Page fetch.
        let r0 = req(1, "http://h/index.html", "Mozilla/5.0 Firefox/1.5");
        let c0 = ins.classify(&r0, SimTime::ZERO);
        det.observe(&r0, &ok(), &c0, SimTime::ZERO);
        // Beacon fetch after mouse movement.
        let beacon = manifest.mouse_beacon.unwrap();
        let r1 = req(1, &beacon.to_string(), "Mozilla/5.0 Firefox/1.5");
        let c1 = ins.classify(&r1, SimTime::from_secs(2));
        let out = det.observe(&r1, &ok(), &c1, SimTime::from_secs(2));
        assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
        assert!(out.transitioned);
        assert_eq!(out.request_index, 2);
    }

    #[test]
    fn decoy_fetch_yields_robot_verdict() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(2);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let decoy = manifest.decoy_beacons[0].clone();
        let r = req(2, &decoy.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::DecoyFetched));
    }

    #[test]
    fn ua_mismatch_detected_via_agent_beacon() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(3);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // The robot's JS engine reports its true agent, but the header
        // claims IE.
        let agent_url = manifest.agent_beacon.unwrap();
        let honest = "evilbot/1.0";
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(honest));
        let r = req(3, &fetch, "Mozilla/4.0 (compatible; MSIE 6.0)");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::BrowserTypeMismatch));
    }

    #[test]
    fn matching_agent_accumulates_js_without_deciding_online() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(4);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let ua = "Mozilla/5.0 (Windows) Firefox/1.5";
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(ua));
        let r = req(4, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        // JS execution is soft evidence: accumulated now, applied at the
        // batch flush. The fast path stays undecided.
        assert_eq!(out.verdict, Verdict::Undecided);
        let e = det.evidence(&out.key).unwrap();
        assert!(e.has(EvidenceKind::ExecutedJs));
        assert!(!e.has(EvidenceKind::UaMismatch));
        // Flush: JS-without-mouse decides robot via set algebra.
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::JsWithoutMouse);
    }

    #[test]
    fn css_probe_accumulates_and_flushes_human() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(5);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let css = manifest.css_probe.unwrap();
        let r = req(5, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        // Soft evidence: no online decision, but the batch pass at flush
        // applies S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM) ⇒ human.
        assert_eq!(out.verdict, Verdict::Undecided);
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::DownloadedCss));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
        assert_eq!(done[0].reason, Reason::BrowserTestPassed);
    }

    #[test]
    fn soft_signals_exempt_sessions_from_no_signal_promotion() {
        // A long session whose only evidence is a CSS download must stay
        // undecided online (a no-JS human), not get promoted to
        // provisional robot.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(14);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let css = manifest.css_probe.unwrap();
        let r = req(14, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        det.observe(&r, &ok(), &c, SimTime::ZERO);
        let mut last = Verdict::Undecided;
        for i in 0..20 {
            let r = req(14, &format!("http://h/{i}.html"), "Mozilla/5.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i))
                .verdict;
        }
        assert_eq!(last, Verdict::Undecided);
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn hidden_link_is_robot() {
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(6);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let hidden = manifest.hidden_link.unwrap();
        let r = req(6, &hidden.to_string(), "crawler/2.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::HiddenLink));
    }

    #[test]
    fn captcha_pass_recorded() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(7, "http://h/a.html", "x");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.record_captcha_pass(&out.key, SimTime::from_secs(1));
        assert_eq!(det.verdict(&out.key), Verdict::Human(Reason::CaptchaPassed));
        // The observation carries the session's current request index.
        let e = det.evidence(&out.key).unwrap();
        assert_eq!(e.first(EvidenceKind::PassedCaptcha).unwrap().at_request, 1);
    }

    #[test]
    fn captcha_pass_for_unknown_session_is_a_no_op() {
        use botwall_sessions::SessionKey;
        let det = Detector::new(DetectorConfig::default());
        let ghost = SessionKey::new(ClientIp::new(99), "never-seen");
        det.record_captcha_pass(&ghost, SimTime::ZERO);
        // No phantom evidence, no phantom verdict, no phantom session.
        assert!(det.evidence(&ghost).is_none());
        assert_eq!(det.verdict(&ghost), Verdict::Undecided);
        assert!(det.drain().is_empty());
    }

    #[test]
    fn drain_labels_sessions() {
        let det = Detector::new(DetectorConfig::default());
        // Session with zero probe evidence across 12 requests: robot.
        for i in 0..12 {
            let r = req(8, &format!("http://h/{i}.html"), "wget/1.0");
            det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i));
        }
        let done = det.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::NoBrowserSignals);
        assert!(done[0].classifiable);
    }

    #[test]
    fn short_sessions_marked_unclassifiable() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(9, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        let done = det.drain();
        assert!(!done[0].classifiable, "1 request < minimum of >10");
    }

    #[test]
    fn js_without_mouse_promotes_past_the_classification_minimum() {
        // The §4.1 adversary: executes JS honestly, never mouses. Soft
        // classification waits for the flush, but past the >10-request
        // minimum the fast path must lean robot so enforcement applies
        // while the bot is live.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(17);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let ua = "Mozilla/5.0 Firefox/1.5";
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(ua));
        let r = req(17, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Undecided, "below the minimum");
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(17, &format!("http://h/{i}.html"), ua);
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(1 + i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::JsWithoutMouse));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::JsWithoutMouse);
    }

    #[test]
    fn js_file_fetch_alone_does_not_block_the_no_signal_promotion() {
        // Crawlers download every link including the planted .js file —
        // without executing it. The set algebra ignores the bare fetch,
        // so the no-signal promotion must still fire and keep the
        // crawler under robot-class enforcement while it is live.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(18);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let js = manifest.js_file.unwrap();
        let r = req(18, &js.to_string(), "crawler/1.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::DownloadedJsFile));
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(18, &format!("http://h/{i}.html"), "crawler/1.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(1 + i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::NoBrowserSignals));
        let done = det.drain();
        assert_eq!(done[0].label, Label::Robot);
    }

    #[test]
    fn late_browser_signals_clear_the_no_signal_promotion() {
        // A human whose CSS-probe fetch trails a burst of asset requests:
        // 11+ ordinary exchanges promote the session to provisional
        // robot, but the probe download must demote it back to Undecided
        // (and the flush must label it Human).
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(15);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let mut last = Verdict::Undecided;
        for i in 0..12 {
            let r = req(15, &format!("http://h/asset{i}.png"), "Mozilla/5.0");
            last = det
                .observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i))
                .verdict;
        }
        assert_eq!(last, Verdict::ProvisionalRobot(Reason::NoBrowserSignals));
        let css = manifest.css_probe.unwrap();
        let r = req(15, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::from_secs(20));
        let out = det.observe(&r, &ok(), &c, SimTime::from_secs(20));
        assert_eq!(out.verdict, Verdict::Undecided, "promotion premise gone");
        assert!(out.transitioned);
        let done = det.drain();
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn rollover_keeps_evidence_with_its_own_incarnation() {
        // A session goes idle past the timeout; the same key returns and
        // produces hard robot evidence. The old incarnation must flush
        // with *its* (empty) evidence, and the new incarnation must keep
        // the robot verdict instead of having its state stolen.
        let (mut ins, det) = pipeline();
        let client = ClientIp::new(16);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let r0 = req(16, "http://h/index.html", "Mozilla/5.0");
        det.observe(&r0, &ok(), &Classified::Ordinary, SimTime::ZERO);
        // Two hours later the key returns — a fresh incarnation — and
        // fetches a decoy beacon.
        let later = SimTime::from_hours(2);
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            later,
        );
        let decoy = manifest.decoy_beacons[0].clone();
        let r1 = req(16, &decoy.to_string(), "Mozilla/5.0");
        let c1 = ins.classify(&r1, later);
        let out = det.observe(&r1, &ok(), &c1, later);
        assert_eq!(out.verdict, Verdict::Robot(Reason::DecoyFetched));
        // Flush the rolled-over incarnation only: it must NOT take the
        // new incarnation's decoy evidence with it.
        let done = det.sweep(later + 1);
        assert_eq!(done.len(), 1);
        assert!(!done[0].evidence.has(EvidenceKind::FetchedDecoy));
        assert_eq!(done[0].reason, Reason::NoBrowserSignals);
        // The live incarnation still holds its hard evidence online...
        assert_eq!(det.verdict(&out.key), Verdict::Robot(Reason::DecoyFetched));
        // ...and flushes Robot.
        let done = det.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::DecoyFetched);
    }

    #[test]
    fn sweep_respects_idle_timeout() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(10, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        assert!(det.sweep(SimTime::from_secs(10)).is_empty());
        let done = det.sweep(SimTime::from_hours(2));
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn gate_and_observe_gates_on_pre_exchange_state_then_records() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(30, "http://h/a.html", "wget/1.0");
        let (out, action, response, seen) = det.gate_and_observe(
            &r,
            &Sighting::Ordinary,
            SimTime::ZERO,
            true,
            &policy,
            |action, session, _state, classified| {
                assert_eq!(
                    session.request_count(),
                    0,
                    "the gate must see pre-exchange counters"
                );
                assert_eq!(action, Action::Allow, "first exchange passes");
                assert_eq!(classified, &Classified::Ordinary);
                (ok(), 7u32)
            },
        );
        assert_eq!(seen, 7);
        assert_eq!(action, Action::Allow);
        assert_eq!(out.request_index, 1, "the exchange was recorded");
        assert_eq!(response.status(), StatusCode::OK);
        assert_eq!(det.tracker().get(&out.key).unwrap().request_count(), 1);
    }

    #[test]
    fn gate_and_observe_redeems_beacons_against_session_tokens() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        use botwall_instrument::BeaconKey;
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r0 = req(31, "http://h/index.html", "Mozilla/5.0");
        let out = det.observe(&r0, &ok(), &Classified::Ordinary, SimTime::ZERO);
        // A page rewrite (normally the gateway's respond closure) parked
        // a beacon key in the session's colocated token state.
        let key = BeaconKey::from_raw(0xfeed);
        det.with_key_state(&out.key, |_, state| {
            state
                .tokens
                .issue("/index.html", key, vec![], None, SimTime::ZERO, 64);
        });
        // The beacon fetch resolves inside the same critical section.
        let beacon = botwall_instrument::beacon::encode("h", key);
        let r1 = req(31, &beacon.to_string(), "Mozilla/5.0");
        let (out, _, _, ()) = det.gate_and_observe(
            &r1,
            &Sighting::MouseBeacon(key),
            SimTime::from_secs(1),
            true,
            &policy,
            |_, _, _, classified| {
                assert!(matches!(
                    classified,
                    Classified::MouseBeacon {
                        outcome: KeyOutcome::Valid,
                        ..
                    }
                ));
                (ok(), ())
            },
        );
        assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
    }

    #[test]
    fn gate_and_observe_holds_a_carried_block_on_the_rollover_request() {
        use crate::policy::{PolicyConfig, PolicyEngine};
        let det = Detector::new(DetectorConfig::default());
        let policy = PolicyEngine::new(PolicyConfig::default());
        let r = req(32, "http://h/a.html", "wget/1.0");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.with_key_state(&out.key, |_, state| state.policy.block());
        // Two hours idle: the return request starts a new incarnation,
        // but the carried block must gate it immediately.
        let later = SimTime::from_hours(2);
        let (_, action, response, ()) = det.gate_and_observe(
            &r,
            &Sighting::Ordinary,
            later,
            true,
            &policy,
            |action, _, _, _| {
                assert_eq!(action, Action::Block);
                (Response::empty(StatusCode::FORBIDDEN), ())
            },
        );
        assert_eq!(action, Action::Block);
        assert_eq!(response.status(), StatusCode::FORBIDDEN);
    }

    #[test]
    fn pending_pass_carry_reaches_the_next_incarnation() {
        let det = Detector::new(DetectorConfig::default());
        let r = req(33, "http://h/a.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        // A CAPTCHA pass verified while the key has no live session
        // parks in the shard...
        det.tracker().with_entry_and_carry(&key, |entry, slot| {
            assert!(entry.is_none());
            *slot = Some(PendingCaptchaPass {
                at: SimTime::from_secs(5),
            });
        });
        // ...and the key's first exchange absorbs it as ground truth.
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(6));
        assert_eq!(out.verdict, Verdict::Human(Reason::CaptchaPassed));
        assert!(det
            .evidence(&out.key)
            .unwrap()
            .has(EvidenceKind::PassedCaptcha));
    }

    #[test]
    fn expire_key_state_purges_tokens_and_stale_challenges_of_live_sessions() {
        use botwall_instrument::BeaconKey;
        let det = Detector::new(DetectorConfig::default());
        let r = req(34, "http://h/a.html", "Mozilla/5.0");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.with_key_state(&out.key, |_, state| {
            state.tokens.issue(
                "/a.html",
                BeaconKey::from_raw(1),
                vec![],
                None,
                SimTime::ZERO,
                64,
            );
            state.challenge = Some(ChallengeState::new(9, SimTime::ZERO));
        });
        // Within TTL: untouched.
        det.expire_key_state(SimTime::from_secs(10), 3_600_000, 3_600_000);
        det.with_key_state(&out.key, |_, state| {
            assert_eq!(state.tokens.len(), 1);
            assert!(state.challenge.is_some());
        });
        // Past TTL: both expire, without flushing the session.
        det.expire_key_state(SimTime::from_hours(2), 3_600_000, 3_600_000);
        det.with_key_state(&out.key, |_, state| {
            assert!(state.tokens.is_empty());
            assert!(state.challenge.is_none());
        });
        assert_eq!(det.tracker().live_count(), 1);
    }

    #[test]
    fn detector_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Detector>();
    }

    #[test]
    fn parallel_observe_keeps_per_key_verdicts_isolated() {
        use std::sync::Arc;
        let det = Arc::new(Detector::new(DetectorConfig::default()));
        let handles: Vec<_> = (0..4u32)
            .map(|n| {
                let det = Arc::clone(&det);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let r = req(100 + n, &format!("http://h/{i}.html"), "wget/1.0");
                        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every thread's key is independently promoted to no-signal robot.
        for n in 0..4u32 {
            let key = SessionKey::new(ClientIp::new(100 + n), "wget/1.0");
            assert_eq!(
                det.verdict(&key),
                Verdict::ProvisionalRobot(Reason::NoBrowserSignals)
            );
        }
        let done = det.drain();
        assert_eq!(done.len(), 4);
        assert_eq!(
            done.iter().map(|c| c.session.request_count()).sum::<u64>(),
            800
        );
    }
}
