//! The online detection engine.
//!
//! [`Detector`] wires together the session tracker, the instrumentation
//! classification stream, and the set-algebra classifier, producing verdict
//! transitions in real time — the paper's core claim is that this works
//! "on-line at data request rates".

use crate::classifier::{self, Label, Reason, Verdict};
use crate::evidence::{EvidenceKind, EvidenceSet};
use botwall_http::{Request, Response, UserAgent};
use botwall_instrument::{Classified, KeyOutcome, ProbeKind};
use botwall_sessions::{Session, SessionKey, SessionTracker, SimTime, TrackerConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for [`Detector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectorConfig {
    /// Session tracking parameters (idle timeout, classification minimum).
    pub tracker: TrackerConfig,
}

/// What [`Detector::observe`] reports about one exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveOutcome {
    /// The session this exchange belongs to.
    pub key: SessionKey,
    /// The verdict after folding in this exchange.
    pub verdict: Verdict,
    /// Whether the verdict changed on this exchange.
    pub transitioned: bool,
    /// The request index within the session.
    pub request_index: u32,
}

/// A finished session with its evidence and final label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletedSession {
    /// The underlying session (records + counters).
    pub session: Session,
    /// All evidence collected.
    pub evidence: EvidenceSet,
    /// The final label per the set-algebra classifier.
    pub label: Label,
    /// The reason backing the label.
    pub reason: Reason,
    /// Whether the session met the >10-request classification minimum.
    pub classifiable: bool,
}

/// The online human/robot detector.
///
/// # Examples
///
/// ```
/// use botwall_core::{Detector, DetectorConfig};
/// use botwall_core::classifier::Verdict;
/// use botwall_http::request::ClientIp;
/// use botwall_http::{Method, Request, Response, StatusCode};
/// use botwall_instrument::Classified;
/// use botwall_sessions::SimTime;
///
/// let mut det = Detector::new(DetectorConfig::default());
/// let req = Request::builder(Method::Get, "http://h/a.html")
///     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
///     .client(ClientIp::new(1))
///     .build()
///     .unwrap();
/// let resp = Response::empty(StatusCode::OK);
/// let out = det.observe(&req, &resp, &Classified::Ordinary, SimTime::ZERO);
/// assert_eq!(out.verdict, Verdict::Undecided);
/// ```
#[derive(Debug)]
pub struct Detector {
    tracker: SessionTracker,
    evidence: HashMap<SessionKey, EvidenceSet>,
    verdicts: HashMap<SessionKey, Verdict>,
}

impl Detector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Detector {
        Detector {
            tracker: SessionTracker::new(config.tracker),
            evidence: HashMap::new(),
            verdicts: HashMap::new(),
        }
    }

    /// Feeds one exchange plus its instrumentation classification.
    ///
    /// `classified` should come from
    /// [`botwall_instrument::Instrumenter::classify`] on the same request.
    pub fn observe(
        &mut self,
        request: &Request,
        response: &Response,
        classified: &Classified,
        now: SimTime,
    ) -> ObserveOutcome {
        let key = self.tracker.observe(request, response, now);
        let session = self.tracker.get(&key).expect("session just observed");
        let index = session.request_count() as u32;
        let evidence = self.evidence.entry(key.clone()).or_default();

        match classified {
            Classified::MouseBeacon { outcome, .. } => {
                let kind = match outcome {
                    KeyOutcome::Valid => EvidenceKind::MouseEvent,
                    KeyOutcome::Replay => EvidenceKind::ReplayedBeacon,
                    KeyOutcome::Decoy => EvidenceKind::FetchedDecoy,
                    KeyOutcome::Unknown => EvidenceKind::ForgedBeacon,
                };
                evidence.record(kind, index, now);
            }
            Classified::Probe(hit) => match hit.kind {
                ProbeKind::CssProbe => evidence.record(EvidenceKind::DownloadedCss, index, now),
                ProbeKind::JsFile => evidence.record(EvidenceKind::DownloadedJsFile, index, now),
                ProbeKind::AgentBeacon => {
                    evidence.record(EvidenceKind::ExecutedJs, index, now);
                    if let Some(reported) = &hit.reported_agent {
                        let header = request.user_agent().unwrap_or("");
                        if !reported.is_empty() && UserAgent::canonicalize(header) != *reported {
                            evidence.record(EvidenceKind::UaMismatch, index, now);
                        }
                    }
                }
                ProbeKind::HiddenLink => {
                    evidence.record(EvidenceKind::HiddenLinkFollowed, index, now)
                }
                ProbeKind::TransparentPixel | ProbeKind::MouseBeacon => {}
            },
            Classified::Ordinary => {}
        }

        let mut verdict = classifier::classify_online(evidence);
        // A session past the classification minimum with no browser
        // signals at all is robot-leaning: crawlers, spammers and
        // scanners never touch a probe, and waiting longer cannot
        // exonerate them (§3.1's noise rule doubles as the browser-test
        // window).
        if verdict == Verdict::Undecided
            && session.request_count() > self.tracker.config().min_requests_to_classify
        {
            verdict = Verdict::ProvisionalRobot(Reason::NoBrowserSignals);
        }
        let prev = self.verdicts.insert(key.clone(), verdict);
        ObserveOutcome {
            transitioned: prev != Some(verdict),
            key,
            verdict,
            request_index: index,
        }
    }

    /// Records a CAPTCHA pass for a session (ground-truth human).
    pub fn record_captcha_pass(&mut self, key: &SessionKey, now: SimTime) {
        let index = self
            .tracker
            .get(key)
            .map(|s| s.request_count() as u32)
            .unwrap_or(0);
        self.evidence.entry(key.clone()).or_default().record(
            EvidenceKind::PassedCaptcha,
            index,
            now,
        );
        self.verdicts.insert(
            key.clone(),
            classifier::classify_online(&self.evidence[key]),
        );
    }

    /// The current verdict for a live session.
    pub fn verdict(&self, key: &SessionKey) -> Verdict {
        self.verdicts
            .get(key)
            .copied()
            .unwrap_or(Verdict::Undecided)
    }

    /// The evidence collected so far for a live session.
    pub fn evidence(&self, key: &SessionKey) -> Option<&EvidenceSet> {
        self.evidence.get(key)
    }

    /// Read access to the underlying session tracker.
    pub fn tracker(&self) -> &SessionTracker {
        &self.tracker
    }

    /// Expires idle sessions as of `now`, finalizing their labels.
    pub fn sweep(&mut self, now: SimTime) -> Vec<CompletedSession> {
        let finished = self.tracker.sweep(now);
        self.complete(finished)
    }

    /// Finalizes everything (end of experiment).
    pub fn drain(&mut self) -> Vec<CompletedSession> {
        let finished = self.tracker.drain();
        let mut out = self.complete(finished);
        self.evidence.clear();
        self.verdicts.clear();
        out.sort_by(|a, b| a.session.key().cmp(b.session.key()));
        out
    }

    fn complete(&mut self, finished: Vec<Session>) -> Vec<CompletedSession> {
        finished
            .into_iter()
            .map(|session| {
                let key = session.key().clone();
                let evidence = self.evidence.remove(&key).unwrap_or_default();
                self.verdicts.remove(&key);
                let verdict = classifier::classify_online(&evidence);
                let (label, reason) = classifier::finalize(verdict);
                let classifiable = self.tracker.classifiable(&session);
                CompletedSession {
                    session,
                    evidence,
                    label,
                    reason,
                    classifiable,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, StatusCode, Uri};
    use botwall_instrument::{InstrumentConfig, Instrumenter};

    fn req(ip: u32, uri: &str, ua: &str) -> Request {
        Request::builder(Method::Get, uri)
            .header("User-Agent", ua)
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    }

    fn ok() -> Response {
        Response::builder(StatusCode::OK)
            .header("Content-Type", "text/html")
            .build()
    }

    /// Drives a full instrument → classify → detect loop for one client.
    fn pipeline() -> (Instrumenter, Detector) {
        (
            Instrumenter::new(InstrumentConfig::default(), 5),
            Detector::new(DetectorConfig::default()),
        )
    }

    #[test]
    fn mouse_beacon_yields_human_verdict() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(1);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // Page fetch.
        let r0 = req(1, "http://h/index.html", "Mozilla/5.0 Firefox/1.5");
        let c0 = ins.classify(&r0, SimTime::ZERO);
        det.observe(&r0, &ok(), &c0, SimTime::ZERO);
        // Beacon fetch after mouse movement.
        let beacon = manifest.mouse_beacon.unwrap();
        let r1 = req(1, &beacon.to_string(), "Mozilla/5.0 Firefox/1.5");
        let c1 = ins.classify(&r1, SimTime::from_secs(2));
        let out = det.observe(&r1, &ok(), &c1, SimTime::from_secs(2));
        assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
        assert!(out.transitioned);
        assert_eq!(out.request_index, 2);
    }

    #[test]
    fn decoy_fetch_yields_robot_verdict() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(2);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let decoy = manifest.decoy_beacons[0].clone();
        let r = req(2, &decoy.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::DecoyFetched));
    }

    #[test]
    fn ua_mismatch_detected_via_agent_beacon() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(3);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        // The robot's JS engine reports its true agent, but the header
        // claims IE.
        let agent_url = manifest.agent_beacon.unwrap();
        let honest = "evilbot/1.0";
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(honest));
        let r = req(3, &fetch, "Mozilla/4.0 (compatible; MSIE 6.0)");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::BrowserTypeMismatch));
    }

    #[test]
    fn matching_agent_reports_executed_js_only() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(4);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let ua = "Mozilla/5.0 (Windows) Firefox/1.5";
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let agent_url = manifest.agent_beacon.unwrap();
        let fetch = format!("{agent_url}?agent={}", UserAgent::canonicalize(ua));
        let r = req(4, &fetch, ua);
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        // JS executed, no mouse yet: provisionally robot.
        assert_eq!(
            out.verdict,
            Verdict::ProvisionalRobot(Reason::JsWithoutMouse)
        );
        let e = det.evidence(&out.key).unwrap();
        assert!(e.has(EvidenceKind::ExecutedJs));
        assert!(!e.has(EvidenceKind::UaMismatch));
    }

    #[test]
    fn css_probe_gives_provisional_human() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(5);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let css = manifest.css_probe.unwrap();
        let r = req(5, &css.to_string(), "Mozilla/5.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(
            out.verdict,
            Verdict::ProvisionalHuman(Reason::BrowserTestPassed)
        );
    }

    #[test]
    fn hidden_link_is_robot() {
        let (mut ins, mut det) = pipeline();
        let client = ClientIp::new(6);
        let page: Uri = "http://h/index.html".parse().unwrap();
        let (_, manifest) = ins.instrument_page(
            "<html><head></head><body></body></html>",
            &page,
            client,
            SimTime::ZERO,
        );
        let hidden = manifest.hidden_link.unwrap();
        let r = req(6, &hidden.to_string(), "crawler/2.0");
        let c = ins.classify(&r, SimTime::ZERO);
        let out = det.observe(&r, &ok(), &c, SimTime::ZERO);
        assert_eq!(out.verdict, Verdict::Robot(Reason::HiddenLink));
    }

    #[test]
    fn captcha_pass_recorded() {
        let mut det = Detector::new(DetectorConfig::default());
        let r = req(7, "http://h/a.html", "x");
        let out = det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        det.record_captcha_pass(&out.key, SimTime::from_secs(1));
        assert_eq!(det.verdict(&out.key), Verdict::Human(Reason::CaptchaPassed));
    }

    #[test]
    fn drain_labels_sessions() {
        let mut det = Detector::new(DetectorConfig::default());
        // Session with zero probe evidence across 12 requests: robot.
        for i in 0..12 {
            let r = req(8, &format!("http://h/{i}.html"), "wget/1.0");
            det.observe(&r, &ok(), &Classified::Ordinary, SimTime::from_secs(i));
        }
        let done = det.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Robot);
        assert_eq!(done[0].reason, Reason::NoBrowserSignals);
        assert!(done[0].classifiable);
    }

    #[test]
    fn short_sessions_marked_unclassifiable() {
        let mut det = Detector::new(DetectorConfig::default());
        let r = req(9, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        let done = det.drain();
        assert!(!done[0].classifiable, "1 request < minimum of >10");
    }

    #[test]
    fn sweep_respects_idle_timeout() {
        let mut det = Detector::new(DetectorConfig::default());
        let r = req(10, "http://h/a.html", "x");
        det.observe(&r, &ok(), &Classified::Ordinary, SimTime::ZERO);
        assert!(det.sweep(SimTime::from_secs(10)).is_empty());
        let done = det.sweep(SimTime::from_hours(2));
        assert_eq!(done.len(), 1);
    }
}
