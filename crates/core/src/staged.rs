//! The staged decision pipeline (§4.1).
//!
//! "A more practical solution may combine multiple approaches in a staged
//! manner — making quick decisions by fast analysis (e.g., standard
//! browser test), then perform a careful decision algorithm for boundary
//! cases (e.g., AI-based techniques)."
//!
//! Stage 1 is the browser test: cheap, early, covers most sessions.
//! Stage 2 is human-activity evidence: definitive when present.
//! Stage 3 hands *boundary* sessions to a pluggable classifier (the
//! AdaBoost model from `botwall-ml` implements [`BoundaryClassifier`]).

use crate::classifier::{self, Label};
use crate::evidence::{EvidenceKind, EvidenceSet};
use botwall_sessions::Session;
use serde::{Deserialize, Serialize};

/// Which stage produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Hard evidence (mouse event, CAPTCHA, decoy, hidden link, replay,
    /// mismatch) decided immediately.
    HardEvidence,
    /// The fast standard-browser test decided.
    BrowserTest,
    /// The boundary classifier (machine learning) decided.
    MlBoundary,
    /// No stage could decide; the set-algebra default applied.
    Fallback,
}

/// A staged decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagedDecision {
    /// The label assigned.
    pub label: Label,
    /// The stage that produced it.
    pub stage: Stage,
}

/// A pluggable classifier consulted for boundary cases.
///
/// Implemented by `botwall-ml`'s AdaBoost model; `None` means the
/// classifier abstains and the pipeline falls back to set algebra.
pub trait BoundaryClassifier {
    /// Classifies a session, or abstains with `None`.
    fn classify_session(&self, session: &Session) -> Option<Label>;
}

/// A boundary classifier that always abstains.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBoundary;

impl BoundaryClassifier for NoBoundary {
    fn classify_session(&self, _session: &Session) -> Option<Label> {
        None
    }
}

impl<F> BoundaryClassifier for F
where
    F: Fn(&Session) -> Option<Label>,
{
    fn classify_session(&self, session: &Session) -> Option<Label> {
        self(session)
    }
}

/// Configuration for [`StagedPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagedConfig {
    /// The browser test is trusted once a session has at least this many
    /// requests without contradicting signals (Figure 2: CSS downloads
    /// classify 95% of browser users within 19 requests).
    pub browser_test_window: u64,
}

impl Default for StagedConfig {
    fn default() -> Self {
        StagedConfig {
            browser_test_window: 19,
        }
    }
}

/// The staged decision pipeline.
///
/// # Examples
///
/// ```
/// use botwall_core::staged::{NoBoundary, StagedConfig, StagedPipeline, Stage};
/// use botwall_core::evidence::{EvidenceKind, EvidenceSet};
/// use botwall_core::classifier::Label;
/// use botwall_http::request::ClientIp;
/// use botwall_sessions::SimTime;
///
/// let pipeline = StagedPipeline::new(StagedConfig::default(), NoBoundary);
/// let mut e = EvidenceSet::new();
/// e.record(EvidenceKind::MouseEvent, 5, SimTime::ZERO);
/// // A session object is only needed for the ML stage; hard evidence
/// // decides without one.
/// let d = pipeline.decide_evidence_only(&e);
/// assert_eq!(d.label, Label::Human);
/// assert_eq!(d.stage, Stage::HardEvidence);
/// ```
#[derive(Debug)]
pub struct StagedPipeline<C> {
    config: StagedConfig,
    boundary: C,
}

impl<C: BoundaryClassifier> StagedPipeline<C> {
    /// Creates a pipeline with the given boundary classifier.
    pub fn new(config: StagedConfig, boundary: C) -> StagedPipeline<C> {
        StagedPipeline { config, boundary }
    }

    /// Decides a session using evidence plus (for boundary cases) the
    /// session's request history.
    pub fn decide(&self, session: &Session, evidence: &EvidenceSet) -> StagedDecision {
        // Stage 1: hard evidence.
        if let Some(d) = Self::hard_stage(evidence) {
            return d;
        }
        // Stage 2: fast browser test.
        if let Some(d) = self.browser_stage(session.request_count(), evidence) {
            return d;
        }
        // Stage 3: ML on boundary cases.
        if let Some(label) = self.boundary.classify_session(session) {
            return StagedDecision {
                label,
                stage: Stage::MlBoundary,
            };
        }
        // Fallback: set algebra.
        StagedDecision {
            label: classifier::classify_final(evidence),
            stage: Stage::Fallback,
        }
    }

    /// Decides from evidence alone (no ML stage possible).
    pub fn decide_evidence_only(&self, evidence: &EvidenceSet) -> StagedDecision {
        if let Some(d) = Self::hard_stage(evidence) {
            return d;
        }
        if let Some(d) = self.browser_stage(u64::MAX, evidence) {
            return d;
        }
        StagedDecision {
            label: classifier::classify_final(evidence),
            stage: Stage::Fallback,
        }
    }

    fn hard_stage(evidence: &EvidenceSet) -> Option<StagedDecision> {
        if evidence.any_hard_robot() {
            return Some(StagedDecision {
                label: Label::Robot,
                stage: Stage::HardEvidence,
            });
        }
        if evidence.any_hard_human() {
            return Some(StagedDecision {
                label: Label::Human,
                stage: Stage::HardEvidence,
            });
        }
        None
    }

    fn browser_stage(&self, request_count: u64, evidence: &EvidenceSet) -> Option<StagedDecision> {
        let css = evidence.has(EvidenceKind::DownloadedCss);
        let js = evidence.has(EvidenceKind::ExecutedJs);
        // Clean browser signal with no contradiction: human.
        if css && !js {
            return Some(StagedDecision {
                label: Label::Human,
                stage: Stage::BrowserTest,
            });
        }
        // A long session that never touched any browser probe: robot.
        if !css
            && !js
            && !evidence.has(EvidenceKind::DownloadedJsFile)
            && request_count >= self.config.browser_test_window
        {
            return Some(StagedDecision {
                label: Label::Robot,
                stage: Stage::BrowserTest,
            });
        }
        // JS-without-mouse and short no-signal sessions are boundary
        // cases: fall through to ML.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, Request, Response, StatusCode};
    use botwall_sessions::{SessionTracker, SimTime, TrackerConfig};

    fn session(requests: u64) -> Session {
        let t = SessionTracker::new(TrackerConfig::default());
        let mut key = None;
        for i in 0..requests {
            let r = Request::builder(Method::Get, format!("http://h/{i}.html"))
                .header("User-Agent", "x")
                .client(ClientIp::new(1))
                .build()
                .unwrap();
            key = Some(t.observe(&r, &Response::empty(StatusCode::OK), SimTime::from_secs(i)));
        }
        t.get(&key.unwrap()).unwrap().clone()
    }

    fn ev(kinds: &[EvidenceKind]) -> EvidenceSet {
        let mut e = EvidenceSet::new();
        for (i, k) in kinds.iter().enumerate() {
            e.record(*k, (i + 1) as u32, SimTime::ZERO);
        }
        e
    }

    #[test]
    fn hard_evidence_short_circuits() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let d = p.decide(&session(5), &ev(&[EvidenceKind::HiddenLinkFollowed]));
        assert_eq!(d.stage, Stage::HardEvidence);
        assert_eq!(d.label, Label::Robot);
        let d = p.decide(&session(5), &ev(&[EvidenceKind::MouseEvent]));
        assert_eq!(d.label, Label::Human);
    }

    #[test]
    fn browser_test_decides_css_sessions() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let d = p.decide(&session(8), &ev(&[EvidenceKind::DownloadedCss]));
        assert_eq!(d.stage, Stage::BrowserTest);
        assert_eq!(d.label, Label::Human);
    }

    #[test]
    fn long_signalless_sessions_are_robots_via_browser_test() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let d = p.decide(&session(25), &EvidenceSet::new());
        assert_eq!(d.stage, Stage::BrowserTest);
        assert_eq!(d.label, Label::Robot);
    }

    #[test]
    fn short_signalless_sessions_fall_through() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let d = p.decide(&session(5), &EvidenceSet::new());
        assert_eq!(d.stage, Stage::Fallback);
    }

    #[test]
    fn boundary_classifier_gets_js_without_mouse() {
        // An ML stage that labels everything human, to prove it is
        // consulted for the boundary case.
        let ml = |_: &Session| Some(Label::Human);
        let p = StagedPipeline::new(StagedConfig::default(), ml);
        let d = p.decide(
            &session(30),
            &ev(&[EvidenceKind::DownloadedCss, EvidenceKind::ExecutedJs]),
        );
        assert_eq!(d.stage, Stage::MlBoundary);
        assert_eq!(d.label, Label::Human);
    }

    #[test]
    fn abstaining_ml_falls_back_to_set_algebra() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let e = ev(&[EvidenceKind::DownloadedCss, EvidenceKind::ExecutedJs]);
        let d = p.decide(&session(30), &e);
        assert_eq!(d.stage, Stage::Fallback);
        // Set algebra: JS without mouse ⇒ robot.
        assert_eq!(d.label, Label::Robot);
    }

    #[test]
    fn evidence_only_decides_without_session() {
        let p = StagedPipeline::new(StagedConfig::default(), NoBoundary);
        let d = p.decide_evidence_only(&ev(&[EvidenceKind::DownloadedCss]));
        assert_eq!(d.label, Label::Human);
        // No-signal evidence-only decisions lean robot via the (infinite)
        // window browser test.
        let d = p.decide_evidence_only(&EvidenceSet::new());
        assert_eq!(d.label, Label::Robot);
        assert_eq!(d.stage, Stage::BrowserTest);
    }
}
