//! Per-session evidence accumulation.
//!
//! Every detection signal the paper uses is an *evidence kind*; the
//! detector records the first occurrence of each kind together with the
//! request index at which it arrived — that index is exactly what
//! Figure 2 plots ("number of requests required to detect").

use botwall_sessions::SimTime;
use serde::{Deserialize, Serialize};

/// A detection signal observed within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceKind {
    /// Fetched the injected empty CSS probe (standard-browser behaviour).
    DownloadedCss,
    /// Fetched the injected external JavaScript file.
    DownloadedJsFile,
    /// Fired the agent beacon — proves JavaScript execution.
    ExecutedJs,
    /// Redeemed a valid mouse-event beacon key — proves human activity.
    MouseEvent,
    /// Fetched one of the decoy beacon URLs — a blind robot.
    FetchedDecoy,
    /// Presented an already-redeemed beacon key — a replay attack.
    ReplayedBeacon,
    /// Presented a beacon-shaped key never issued to this client — key
    /// guessing or cross-client theft.
    ForgedBeacon,
    /// Followed the hidden link humans cannot see.
    HiddenLinkFollowed,
    /// The JavaScript-reported agent string contradicts the User-Agent
    /// header (browser type mismatch, Table 1).
    UaMismatch,
    /// Passed a CAPTCHA challenge (ground-truth human, §3.1).
    PassedCaptcha,
    /// The executing script admitted automation control
    /// (`navigator.webdriver` was truthy) — the flag WebDriver-compliant
    /// frameworks must raise and naive headless drivers forget to hide.
    AutomationFlag,
    /// The executing script reported a headless-shaped environment (an
    /// empty `navigator.plugins` array), the classic headless-browser
    /// fingerprint real desktop browsers of the era never exhibit.
    HeadlessFingerprint,
}

impl EvidenceKind {
    /// Evidence kinds that prove (or near-prove) a robot on their own.
    pub fn is_hard_robot_evidence(self) -> bool {
        matches!(
            self,
            EvidenceKind::FetchedDecoy
                | EvidenceKind::ReplayedBeacon
                | EvidenceKind::ForgedBeacon
                | EvidenceKind::HiddenLinkFollowed
                | EvidenceKind::UaMismatch
                | EvidenceKind::AutomationFlag
                | EvidenceKind::HeadlessFingerprint
        )
    }

    /// Evidence kinds that prove a human on their own.
    pub fn is_hard_human_evidence(self) -> bool {
        matches!(self, EvidenceKind::MouseEvent | EvidenceKind::PassedCaptcha)
    }

    /// Every kind, in declaration order — the bit positions of
    /// [`EvidenceKinds`] and the recording order when a carried set is
    /// folded back into an [`EvidenceSet`].
    pub const ALL: [EvidenceKind; 12] = [
        EvidenceKind::DownloadedCss,
        EvidenceKind::DownloadedJsFile,
        EvidenceKind::ExecutedJs,
        EvidenceKind::MouseEvent,
        EvidenceKind::FetchedDecoy,
        EvidenceKind::ReplayedBeacon,
        EvidenceKind::ForgedBeacon,
        EvidenceKind::HiddenLinkFollowed,
        EvidenceKind::UaMismatch,
        EvidenceKind::PassedCaptcha,
        EvidenceKind::AutomationFlag,
        EvidenceKind::HeadlessFingerprint,
    ];
}

/// A compact set of evidence *kinds* — no observation indices or
/// timestamps, just which signals fired. `Copy` and two bytes wide, so
/// it can ride the detector's deferred-carry payload when a leased
/// exchange outlives its session incarnation: the kinds survive the
/// eviction and fold into the successor's [`EvidenceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvidenceKinds(u16);

impl EvidenceKinds {
    /// The empty set.
    pub const EMPTY: EvidenceKinds = EvidenceKinds(0);

    /// Adds one kind (idempotent).
    pub fn insert(&mut self, kind: EvidenceKind) {
        self.0 |= 1 << kind as u16;
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: EvidenceKind) -> bool {
        self.0 & (1 << kind as u16) != 0
    }

    /// Unions `other` into this set.
    pub fn merge(&mut self, other: EvidenceKinds) {
        self.0 |= other.0;
    }

    /// Whether no kind is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The kinds present, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = EvidenceKind> {
        EvidenceKind::ALL
            .into_iter()
            .filter(move |&kind| self.contains(kind))
    }
}

/// First observation of one evidence kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// 1-based request index within the session when first observed.
    pub at_request: u32,
    /// Simulated time when first observed.
    pub at_time: SimTime,
}

/// The set of evidence collected for one session.
///
/// Only the *first* observation per kind is retained (Figure 2 needs
/// first-detection indices) along with a per-kind count.
///
/// # Examples
///
/// ```
/// use botwall_core::evidence::{EvidenceKind, EvidenceSet};
/// use botwall_sessions::SimTime;
///
/// let mut e = EvidenceSet::new();
/// e.record(EvidenceKind::DownloadedCss, 3, SimTime::from_secs(1));
/// e.record(EvidenceKind::DownloadedCss, 9, SimTime::from_secs(2));
/// assert_eq!(e.first(EvidenceKind::DownloadedCss).unwrap().at_request, 3);
/// assert_eq!(e.count(EvidenceKind::DownloadedCss), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceSet {
    entries: Vec<(EvidenceKind, Observation, u32)>,
}

impl EvidenceSet {
    /// Creates an empty set.
    pub fn new() -> EvidenceSet {
        EvidenceSet::default()
    }

    /// Records an observation of `kind` at request `index`.
    pub fn record(&mut self, kind: EvidenceKind, index: u32, time: SimTime) {
        for (k, _, count) in self.entries.iter_mut() {
            if *k == kind {
                *count += 1;
                return;
            }
        }
        self.entries.push((
            kind,
            Observation {
                at_request: index,
                at_time: time,
            },
            1,
        ));
    }

    /// Whether `kind` has been observed.
    pub fn has(&self, kind: EvidenceKind) -> bool {
        self.entries.iter().any(|(k, _, _)| *k == kind)
    }

    /// First observation of `kind`, if any.
    pub fn first(&self, kind: EvidenceKind) -> Option<Observation> {
        self.entries
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, o, _)| *o)
    }

    /// How many times `kind` was observed.
    pub fn count(&self, kind: EvidenceKind) -> u32 {
        self.entries
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, _, c)| *c)
            .unwrap_or(0)
    }

    /// Iterates `(kind, first observation, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (EvidenceKind, Observation, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Whether any hard robot evidence is present.
    pub fn any_hard_robot(&self) -> bool {
        self.entries
            .iter()
            .any(|(k, _, _)| k.is_hard_robot_evidence())
    }

    /// Whether any hard human evidence is present.
    pub fn any_hard_human(&self) -> bool {
        self.entries
            .iter()
            .any(|(k, _, _)| k.is_hard_human_evidence())
    }

    /// Number of distinct evidence kinds observed.
    pub fn distinct_kinds(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_is_kept() {
        let mut e = EvidenceSet::new();
        e.record(EvidenceKind::MouseEvent, 17, SimTime::from_secs(5));
        e.record(EvidenceKind::MouseEvent, 40, SimTime::from_secs(9));
        let o = e.first(EvidenceKind::MouseEvent).unwrap();
        assert_eq!(o.at_request, 17);
        assert_eq!(o.at_time, SimTime::from_secs(5));
        assert_eq!(e.count(EvidenceKind::MouseEvent), 2);
    }

    #[test]
    fn absent_kind() {
        let e = EvidenceSet::new();
        assert!(!e.has(EvidenceKind::DownloadedCss));
        assert_eq!(e.first(EvidenceKind::DownloadedCss), None);
        assert_eq!(e.count(EvidenceKind::DownloadedCss), 0);
    }

    #[test]
    fn hard_evidence_partition() {
        assert!(EvidenceKind::MouseEvent.is_hard_human_evidence());
        assert!(EvidenceKind::PassedCaptcha.is_hard_human_evidence());
        assert!(EvidenceKind::FetchedDecoy.is_hard_robot_evidence());
        assert!(EvidenceKind::HiddenLinkFollowed.is_hard_robot_evidence());
        assert!(EvidenceKind::UaMismatch.is_hard_robot_evidence());
        assert!(EvidenceKind::ReplayedBeacon.is_hard_robot_evidence());
        assert!(EvidenceKind::ForgedBeacon.is_hard_robot_evidence());
        assert!(EvidenceKind::AutomationFlag.is_hard_robot_evidence());
        assert!(EvidenceKind::HeadlessFingerprint.is_hard_robot_evidence());
        // Soft signals are neither.
        for k in [
            EvidenceKind::DownloadedCss,
            EvidenceKind::DownloadedJsFile,
            EvidenceKind::ExecutedJs,
        ] {
            assert!(!k.is_hard_robot_evidence());
            assert!(!k.is_hard_human_evidence());
        }
    }

    #[test]
    fn any_hard_flags() {
        let mut e = EvidenceSet::new();
        e.record(EvidenceKind::DownloadedCss, 1, SimTime::ZERO);
        assert!(!e.any_hard_robot());
        assert!(!e.any_hard_human());
        e.record(EvidenceKind::FetchedDecoy, 2, SimTime::ZERO);
        assert!(e.any_hard_robot());
        e.record(EvidenceKind::MouseEvent, 3, SimTime::ZERO);
        assert!(e.any_hard_human());
        assert_eq!(e.distinct_kinds(), 3);
    }
}
