//! The `botwall` detector: the primary contribution of Park, Pai, Lee &
//! Calo, *Securing Web Service by Automatic Robot Detection* (USENIX
//! 2006), as a reusable library.
//!
//! The paper frames robot detection as a practical Turing test over HTTP
//! request streams and contributes two real-time algorithms:
//!
//! 1. **Human activity detection** (§2.1): injected JavaScript fetches a
//!    keyed beacon on mouse/keyboard events; a valid key proves a human.
//! 2. **Standard browser testing** (§2.2): probes (an empty CSS file, the
//!    script file, hidden links) separate clients that behave like stock
//!    browsers from goal-oriented robots.
//!
//! Sessions are then classified with the set-algebra rule
//! `S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)` and robot sessions are rate
//! limited and blocked on behavioural thresholds (§3.2). A staged
//! pipeline (§4.1) escalates boundary cases to a machine-learning
//! classifier (`botwall-ml`).
//!
//! # Architecture
//!
//! * [`evidence`] — per-session evidence sets with first-detection indices
//! * [`classifier`] — the set-algebra rule, online and final forms
//! * [`detector`] — the streaming engine over `<IP, User-Agent>` sessions
//! * [`policy`] — rate limiting and behavioural blocking
//! * [`staged`] — fast-path/boundary-case escalation
//! * [`report`] — Table-1 and Figure-2 aggregation
//!
//! # Examples
//!
//! ```
//! use botwall_core::{Detector, DetectorConfig};
//! use botwall_core::classifier::{Reason, Verdict};
//! use botwall_http::request::ClientIp;
//! use botwall_http::{Method, Request, Response, StatusCode, Uri};
//! use botwall_instrument::{InstrumentConfig, Instrumenter};
//! use botwall_sessions::SimTime;
//!
//! let mut ins = Instrumenter::new(InstrumentConfig::default(), 7);
//! let mut det = Detector::new(DetectorConfig::default());
//!
//! // Server side: instrument a page for client 1.
//! let page: Uri = "http://site.example/index.html".parse().unwrap();
//! let (_html, manifest) = ins.instrument_page(
//!     "<html><head></head><body></body></html>",
//!     &page,
//!     ClientIp::new(1),
//!     SimTime::ZERO,
//! );
//!
//! // Client side: a human moves the mouse, firing the beacon.
//! let beacon = manifest.mouse_beacon.unwrap();
//! let req = Request::builder(Method::Get, beacon.to_string())
//!     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
//!     .client(ClientIp::new(1))
//!     .build()
//!     .unwrap();
//! let classified = ins.classify(&req, SimTime::from_secs(3));
//! let out = det.observe(
//!     &req,
//!     &Response::empty(StatusCode::OK),
//!     &classified,
//!     SimTime::from_secs(3),
//! );
//! assert_eq!(out.verdict, Verdict::Human(Reason::MouseActivity));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod detector;
pub mod evidence;
pub mod policy;
pub mod report;
pub mod staged;

pub use classifier::{Label, Reason, Verdict};
pub use detector::{
    ChallengeState, CompletedSession, Detector, DetectorConfig, GateRespond, Gated, KeyCarry,
    KeyState, ObserveOutcome, OriginLease, PendingCaptchaPass,
};
pub use evidence::{EvidenceKind, EvidenceSet};
pub use policy::{Action, PolicyConfig, PolicyEngine, PolicyState};
pub use report::{Figure2Report, RequestCdf, Table1Report};
pub use staged::{BoundaryClassifier, Stage, StagedConfig, StagedDecision, StagedPipeline};
