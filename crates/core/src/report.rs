//! Aggregate reporting: Table 1 and Figure 2 of the paper.

use crate::detector::CompletedSession;
use crate::evidence::EvidenceKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The Table-1 session breakdown plus the §3.1 human-set bounds.
///
/// The paper reports, over 929,922 sessions: CSS 28.9%, JS 27.1%, mouse
/// 22.3%, CAPTCHA 9.1%, hidden links 1.0%, browser-type mismatch 0.7%;
/// `S_H` = 24.2% with lower bound 22.3% and max false-positive rate 2.4%.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// Sessions considered (those above the >10-request noise floor).
    pub total_sessions: u64,
    /// Sessions that downloaded the CSS probe.
    pub downloaded_css: u64,
    /// Sessions that executed the injected JavaScript.
    pub executed_js: u64,
    /// Sessions with a valid mouse-event beacon.
    pub mouse_movement: u64,
    /// Sessions that passed a CAPTCHA.
    pub passed_captcha: u64,
    /// Sessions that followed the hidden link.
    pub followed_hidden: u64,
    /// Sessions with a browser-type mismatch.
    pub ua_mismatch: u64,
    /// Sessions in the computed human set `S_H`.
    pub human_set: u64,
}

impl Table1Report {
    /// Builds the report from completed sessions, applying the paper's
    /// noise rule (only classifiable sessions count).
    pub fn from_sessions<'a>(
        sessions: impl IntoIterator<Item = &'a CompletedSession>,
    ) -> Table1Report {
        let mut r = Table1Report::default();
        for cs in sessions {
            if !cs.classifiable {
                continue;
            }
            r.total_sessions += 1;
            let e = &cs.evidence;
            if e.has(EvidenceKind::DownloadedCss) {
                r.downloaded_css += 1;
            }
            if e.has(EvidenceKind::ExecutedJs) {
                r.executed_js += 1;
            }
            if e.has(EvidenceKind::MouseEvent) {
                r.mouse_movement += 1;
            }
            if e.has(EvidenceKind::PassedCaptcha) {
                r.passed_captcha += 1;
            }
            if e.has(EvidenceKind::HiddenLinkFollowed) {
                r.followed_hidden += 1;
            }
            if e.has(EvidenceKind::UaMismatch) {
                r.ua_mismatch += 1;
            }
            // S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM), membership test.
            let css = e.has(EvidenceKind::DownloadedCss);
            let mm = e.has(EvidenceKind::MouseEvent);
            let js = e.has(EvidenceKind::ExecutedJs);
            // Deliberately non-minimal: the shape mirrors the formula above.
            #[allow(clippy::nonminimal_bool)]
            if (css || mm) && !(js && !mm) {
                r.human_set += 1;
            }
        }
        r
    }

    /// Share of `n` among total sessions, in percent.
    pub fn pct(&self, n: u64) -> f64 {
        if self.total_sessions == 0 {
            0.0
        } else {
            n as f64 * 100.0 / self.total_sessions as f64
        }
    }

    /// The lower bound on the human share: sessions with mouse movement.
    pub fn human_lower_bound_pct(&self) -> f64 {
        self.pct(self.mouse_movement)
    }

    /// The upper bound on the human share: `|S_H|`.
    pub fn human_upper_bound_pct(&self) -> f64 {
        self.pct(self.human_set)
    }

    /// The paper's maximum false-positive rate:
    /// `(upper − lower) / (100 − lower)` — potential false positives over
    /// the negative population.
    pub fn max_false_positive_rate_pct(&self) -> f64 {
        let lower = self.human_lower_bound_pct();
        let upper = self.human_upper_bound_pct();
        let negatives = 100.0 - lower;
        if negatives <= 0.0 {
            0.0
        } else {
            (upper - lower).max(0.0) * 100.0 / negatives
        }
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28}{:>14}{:>14}",
            "Description", "# of Sessions", "Percentage(%)"
        )?;
        let rows = [
            ("Downloaded CSS", self.downloaded_css),
            ("Executed JavaScript", self.executed_js),
            ("Mouse movement detected", self.mouse_movement),
            ("Passed CAPTCHA test", self.passed_captcha),
            ("Followed hidden links", self.followed_hidden),
            ("Browser type mismatch", self.ua_mismatch),
        ];
        for (name, n) in rows {
            writeln!(f, "{:<28}{:>14}{:>14.1}", name, n, self.pct(n))?;
        }
        writeln!(
            f,
            "{:<28}{:>14}{:>14.1}",
            "Total sessions", self.total_sessions, 100.0
        )?;
        writeln!(
            f,
            "S_H = {} sessions ({:.1}%), lower bound {:.1}%, max FPR {:.1}%",
            self.human_set,
            self.human_upper_bound_pct(),
            self.human_lower_bound_pct(),
            self.max_false_positive_rate_pct()
        )
    }
}

/// An empirical CDF over "requests needed to detect" values (Figure 2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCdf {
    sorted: Vec<u32>,
}

impl RequestCdf {
    /// Builds a CDF from raw first-detection indices.
    pub fn new(mut values: Vec<u32>) -> RequestCdf {
        values.sort_unstable();
        RequestCdf { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The value at quantile `q ∈ [0, 1]` (e.g. `0.95` → the request count
    /// by which 95% of detections happened). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Fraction of observations at or below `x`.
    pub fn fraction_at(&self, x: u32) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Samples the CDF at each of `xs`, producing `(x, fraction)` pairs —
    /// the series a Figure-2-style plot needs.
    pub fn series(&self, xs: impl IntoIterator<Item = u32>) -> Vec<(u32, f64)> {
        xs.into_iter().map(|x| (x, self.fraction_at(x))).collect()
    }
}

/// The three Figure-2 CDFs: CSS files, JavaScript files, mouse events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Figure2Report {
    /// First-detection indices for CSS probe downloads.
    pub css: RequestCdf,
    /// First-detection indices for JS file downloads.
    pub js: RequestCdf,
    /// First-detection indices for valid mouse events.
    pub mouse: RequestCdf,
}

impl Figure2Report {
    /// Builds the CDFs from completed sessions (classifiable only).
    pub fn from_sessions<'a>(
        sessions: impl IntoIterator<Item = &'a CompletedSession>,
    ) -> Figure2Report {
        let mut css = Vec::new();
        let mut js = Vec::new();
        let mut mouse = Vec::new();
        for cs in sessions {
            if !cs.classifiable {
                continue;
            }
            if let Some(o) = cs.evidence.first(EvidenceKind::DownloadedCss) {
                css.push(o.at_request);
            }
            if let Some(o) = cs.evidence.first(EvidenceKind::DownloadedJsFile) {
                js.push(o.at_request);
            }
            if let Some(o) = cs.evidence.first(EvidenceKind::MouseEvent) {
                mouse.push(o.at_request);
            }
        }
        Figure2Report {
            css: RequestCdf::new(css),
            js: RequestCdf::new(js),
            mouse: RequestCdf::new(mouse),
        }
    }
}

impl fmt::Display for Figure2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10}{:>10}{:>10}{:>10}",
            "quantile", "CSS", "JS", "mouse"
        )?;
        for q in [0.5, 0.8, 0.9, 0.95, 0.99] {
            writeln!(
                f,
                "{:<10}{:>10}{:>10}{:>10}",
                format!("p{:.0}", q * 100.0),
                self.css.quantile(q).map_or("-".into(), |v| v.to_string()),
                self.js.quantile(q).map_or("-".into(), |v| v.to_string()),
                self.mouse.quantile(q).map_or("-".into(), |v| v.to_string()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Label, Reason};
    use crate::evidence::EvidenceSet;
    use botwall_http::request::ClientIp;
    use botwall_http::{Method, Request, Response, StatusCode};
    use botwall_sessions::{SessionTracker, SimTime, TrackerConfig};

    fn completed(kinds: &[(EvidenceKind, u32)], classifiable: bool) -> CompletedSession {
        let tracker = SessionTracker::new(TrackerConfig::default());
        let n = if classifiable { 12 } else { 3 };
        let mut key = None;
        for i in 0..n {
            let r = Request::builder(Method::Get, format!("http://h/{i}"))
                .client(ClientIp::new(1))
                .build()
                .unwrap();
            key =
                Some(tracker.observe(&r, &Response::empty(StatusCode::OK), SimTime::from_secs(i)));
        }
        let session = tracker.get(&key.unwrap()).unwrap().clone();
        let mut evidence = EvidenceSet::new();
        for (k, idx) in kinds {
            evidence.record(*k, *idx, SimTime::ZERO);
        }
        CompletedSession {
            session,
            evidence,
            label: Label::Robot,
            reason: Reason::NoBrowserSignals,
            classifiable,
        }
    }

    #[test]
    fn table1_counts_evidence_kinds() {
        use EvidenceKind::*;
        let sessions = vec![
            completed(&[(DownloadedCss, 3), (MouseEvent, 7)], true),
            completed(&[(DownloadedCss, 2), (ExecutedJs, 4)], true),
            completed(&[(ExecutedJs, 9)], true),
            completed(&[], true),
            completed(&[(HiddenLinkFollowed, 1)], true),
        ];
        let r = Table1Report::from_sessions(&sessions);
        assert_eq!(r.total_sessions, 5);
        assert_eq!(r.downloaded_css, 2);
        assert_eq!(r.executed_js, 2);
        assert_eq!(r.mouse_movement, 1);
        assert_eq!(r.followed_hidden, 1);
        // S_H: session 1 (css+mm) only; session 2 is css+js-no-mouse.
        assert_eq!(r.human_set, 1);
        assert!((r.pct(r.downloaded_css) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn table1_skips_unclassifiable() {
        use EvidenceKind::*;
        let sessions = vec![
            completed(&[(DownloadedCss, 1)], false),
            completed(&[(DownloadedCss, 1)], true),
        ];
        let r = Table1Report::from_sessions(&sessions);
        assert_eq!(r.total_sessions, 1);
        assert_eq!(r.downloaded_css, 1);
    }

    #[test]
    fn fpr_matches_paper_arithmetic() {
        // Construct shares: lower 22.3%, upper 24.2% -> FPR 2.44%.
        let mut r = Table1Report {
            total_sessions: 1000,
            mouse_movement: 223,
            human_set: 242,
            ..Table1Report::default()
        };
        r.downloaded_css = 289;
        let fpr = r.max_false_positive_rate_pct();
        assert!((fpr - 1.9 * 100.0 / 77.7).abs() < 0.05, "fpr = {fpr}");
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = RequestCdf::new(vec![5, 1, 3, 2, 4]);
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(cdf.quantile(0.2), Some(1));
        assert_eq!(cdf.quantile(0.5), Some(3));
        assert_eq!(cdf.quantile(1.0), Some(5));
        assert_eq!(cdf.len(), 5);
    }

    #[test]
    fn cdf_fraction_at() {
        let cdf = RequestCdf::new(vec![10, 20, 30, 40]);
        assert_eq!(cdf.fraction_at(9), 0.0);
        assert_eq!(cdf.fraction_at(10), 0.25);
        assert_eq!(cdf.fraction_at(25), 0.5);
        assert_eq!(cdf.fraction_at(100), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = RequestCdf::new((0..100).map(|i| (i * 7) % 53).collect());
        let mut prev = 0.0;
        for x in 0..60 {
            let f = cdf.fraction_at(x);
            assert!(f >= prev, "CDF must be monotone");
            prev = f;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn empty_cdf() {
        let cdf = RequestCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_at(10), 0.0);
    }

    #[test]
    fn figure2_collects_first_indices() {
        use EvidenceKind::*;
        let sessions = vec![
            completed(&[(DownloadedCss, 3), (MouseEvent, 15)], true),
            completed(&[(DownloadedCss, 7), (DownloadedJsFile, 8)], true),
            completed(&[(MouseEvent, 30)], true),
        ];
        let f2 = Figure2Report::from_sessions(&sessions);
        assert_eq!(f2.css.len(), 2);
        assert_eq!(f2.js.len(), 1);
        assert_eq!(f2.mouse.len(), 2);
        assert_eq!(f2.mouse.quantile(1.0), Some(30));
    }

    #[test]
    fn display_renders_tables() {
        let r = Table1Report {
            total_sessions: 10,
            downloaded_css: 3,
            ..Table1Report::default()
        };
        let s = r.to_string();
        assert!(s.contains("Downloaded CSS"));
        assert!(s.contains("30.0"));
        let f2 = Figure2Report::default();
        assert!(f2.to_string().contains("quantile"));
    }

    #[test]
    fn series_produces_plot_points() {
        let cdf = RequestCdf::new(vec![1, 2, 3, 4, 5]);
        let pts = cdf.series([0, 2, 5]);
        assert_eq!(pts, vec![(0, 0.0), (2, 0.4), (5, 1.0)]);
    }
}
