//! Policy enforcement (§3.2).
//!
//! After classifying a session as robot, CoDeeN "enforced aggressive rate
//! limiting on the robot traffic … and blocked its traffic as soon as its
//! behavior deviated from predefined thresholds" (CGI request rate, GET
//! request rate, error response codes). This module implements that
//! enforcement: per-verdict token-bucket rate limits plus behavioural
//! blocking thresholds.
//!
//! Since PR 3 the engine itself is stateless per key: everything mutable
//! per session lives in a [`PolicyState`] the caller colocates with the
//! session record (inside the tracker's shard entry), so one shard lock
//! covers the whole enforcement decision. The engine keeps only the
//! immutable thresholds plus atomic cross-key totals, and every method
//! takes `&self`.

use crate::classifier::Verdict;
use botwall_sessions::{SessionCounters, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// What the policy engine decides for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Serve normally.
    Allow,
    /// Reject this request (rate limit exceeded); serve a 429-style error.
    Throttle,
    /// The session is blocked outright; serve a 403-style error.
    Block,
}

/// Tunables for [`PolicyEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Sustained requests/second allowed for robot-classified sessions.
    pub robot_rate_per_sec: f64,
    /// Burst size for robot-classified sessions.
    pub robot_burst: f64,
    /// Sustained requests/second for undecided sessions (lenient).
    pub undecided_rate_per_sec: f64,
    /// Burst size for undecided sessions.
    pub undecided_burst: f64,
    /// Block a robot session once its CGI request share exceeds this.
    pub cgi_ratio_threshold: f64,
    /// Block a robot session once its 4xx share exceeds this.
    pub error_ratio_threshold: f64,
    /// Block a robot session once its sustained request rate (req/s over
    /// the whole session) exceeds this.
    pub rate_threshold: f64,
    /// Behavioural thresholds only engage after this many requests.
    pub min_requests_for_thresholds: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            robot_rate_per_sec: 0.2,
            robot_burst: 2.0,
            undecided_rate_per_sec: 20.0,
            undecided_burst: 60.0,
            cgi_ratio_threshold: 0.5,
            error_ratio_threshold: 0.4,
            rate_threshold: 10.0,
            min_requests_for_thresholds: 10,
        }
    }
}

/// A classic token bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate_per_ms: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket with `capacity` tokens refilling at
    /// `rate_per_sec`.
    pub fn new(capacity: f64, rate_per_sec: f64, now: SimTime) -> TokenBucket {
        TokenBucket {
            capacity,
            tokens: capacity,
            rate_per_ms: rate_per_sec / 1000.0,
            last_refill: now,
        }
    }

    /// Attempts to take one token; returns `false` when empty.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.since(self.last_refill) as f64;
        self.tokens = (self.tokens + elapsed * self.rate_per_ms).min(self.capacity);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count (after a refill to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        let elapsed = now.since(self.last_refill) as f64;
        self.tokens = (self.tokens + elapsed * self.rate_per_ms).min(self.capacity);
        self.last_refill = now;
        self.tokens
    }
}

// Which rate class a bucket was provisioned for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RateClass {
    Robot,
    Undecided,
}

/// Per-session enforcement state: the provisioned rate bucket plus the
/// block flag. Lives inside the session's tracker shard entry, so the
/// enforcement decision shares the session's shard lock.
#[derive(Debug, Clone, Default)]
pub struct PolicyState {
    bucket: Option<(RateClass, TokenBucket)>,
    blocked: bool,
}

impl PolicyState {
    /// Whether the session is blocked outright.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Blocks the session (operator action or threshold trip).
    pub fn block(&mut self) {
        self.blocked = true;
    }

    /// State for the key's next incarnation at idle rollover: the block
    /// verdict survives (a blocked robot does not earn a reset by going
    /// quiet for an hour), while the rate bucket re-provisions from the
    /// fresh incarnation's verdict.
    pub fn carry_over(&self) -> PolicyState {
        PolicyState {
            bucket: None,
            blocked: self.blocked,
        }
    }
}

/// The enforcement decider: immutable thresholds plus atomic cross-key
/// totals. Per-session state is passed in as [`PolicyState`].
///
/// # Examples
///
/// ```
/// use botwall_core::classifier::{Reason, Verdict};
/// use botwall_core::policy::{Action, PolicyConfig, PolicyEngine, PolicyState};
/// use botwall_sessions::{SessionCounters, SimTime};
///
/// let engine = PolicyEngine::new(PolicyConfig::default());
/// let mut state = PolicyState::default();
/// let counters = SessionCounters::new();
/// let action = engine.decide(
///     &mut state,
///     Verdict::Human(Reason::MouseActivity),
///     &counters,
///     0.0,
///     0,
///     SimTime::ZERO,
/// );
/// assert_eq!(action, Action::Allow);
/// ```
#[derive(Debug, Default)]
pub struct PolicyEngine {
    config: PolicyConfig,
    throttled_total: AtomicU64,
    blocked_total: AtomicU64,
}

impl PolicyEngine {
    /// Creates an engine.
    pub fn new(config: PolicyConfig) -> PolicyEngine {
        PolicyEngine {
            config,
            throttled_total: AtomicU64::new(0),
            blocked_total: AtomicU64::new(0),
        }
    }

    /// Decides the fate of the current request given the session's
    /// enforcement state, updating the state in place.
    ///
    /// `session_rate` is the session's sustained request rate in req/s
    /// (see [`botwall_sessions::Session::request_rate`]); callers with
    /// leases outstanding pass a rate that already counts them.
    ///
    /// `in_flight` is the number of leased exchanges currently awaiting
    /// their origin fetch: they are not in `counters` yet (recording
    /// happens at commit), but they are real requests the session has
    /// already issued, so the history gate counts them — without it, a
    /// burst riding a slow origin stays under
    /// `min_requests_for_thresholds` until the first commits land and
    /// behavioural blocking lags by origin latency × concurrency.
    pub fn decide(
        &self,
        state: &mut PolicyState,
        verdict: Verdict,
        counters: &SessionCounters,
        session_rate: f64,
        in_flight: u32,
        now: SimTime,
    ) -> Action {
        if state.blocked {
            return Action::Block;
        }
        let is_robot = matches!(verdict, Verdict::Robot(_) | Verdict::ProvisionalRobot(_));
        // Behavioural blocking thresholds apply to robot-classified
        // sessions with enough history — recorded or in flight.
        let effective_total = counters.total + u64::from(in_flight);
        if is_robot && effective_total >= self.config.min_requests_for_thresholds {
            let over_cgi = counters.cgi_ratio() > self.config.cgi_ratio_threshold;
            let over_err = counters.error_ratio() > self.config.error_ratio_threshold;
            let over_rate = session_rate > self.config.rate_threshold;
            if over_cgi || over_err || over_rate {
                state.blocked = true;
                self.blocked_total.fetch_add(1, Ordering::Relaxed);
                return Action::Block;
            }
        }
        // Rate limiting: humans unlimited; robots tight; undecided loose.
        let (class, rate, burst) = match verdict {
            Verdict::Human(_) | Verdict::ProvisionalHuman(_) => return Action::Allow,
            Verdict::Robot(_) | Verdict::ProvisionalRobot(_) => (
                RateClass::Robot,
                self.config.robot_rate_per_sec,
                self.config.robot_burst,
            ),
            Verdict::Undecided => (
                RateClass::Undecided,
                self.config.undecided_rate_per_sec,
                self.config.undecided_burst,
            ),
        };
        // A verdict change re-provisions the bucket: a session promoted to
        // robot must not keep coasting on its undecided allowance.
        let entry = state
            .bucket
            .get_or_insert_with(|| (class, TokenBucket::new(burst, rate, now)));
        if entry.0 != class {
            *entry = (class, TokenBucket::new(burst, rate, now));
        }
        if entry.1.try_take(now) {
            Action::Allow
        } else {
            self.throttled_total.fetch_add(1, Ordering::Relaxed);
            Action::Throttle
        }
    }

    /// Explicitly blocks a session (operator action).
    pub fn block(&self, state: &mut PolicyState) {
        if !state.blocked {
            state.blocked = true;
            self.blocked_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total requests throttled so far.
    pub fn throttled_total(&self) -> u64 {
        self.throttled_total.load(Ordering::Relaxed)
    }

    /// Total sessions blocked so far.
    pub fn blocked_total(&self) -> u64 {
        self.blocked_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Reason;

    fn engine() -> PolicyEngine {
        PolicyEngine::new(PolicyConfig::default())
    }

    #[test]
    fn token_bucket_drains_and_refills() {
        let mut b = TokenBucket::new(2.0, 1.0, SimTime::ZERO);
        assert!(b.try_take(SimTime::ZERO));
        assert!(b.try_take(SimTime::ZERO));
        assert!(!b.try_take(SimTime::ZERO), "burst exhausted");
        // One second refills one token.
        assert!(b.try_take(SimTime::from_secs(1)));
        assert!(!b.try_take(SimTime::from_secs(1)));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(3.0, 100.0, SimTime::ZERO);
        assert!((b.available(SimTime::from_hours(5)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn humans_are_never_limited() {
        let e = engine();
        let mut s = PolicyState::default();
        let c = SessionCounters::new();
        for _ in 0..1000 {
            assert_eq!(
                e.decide(
                    &mut s,
                    Verdict::Human(Reason::MouseActivity),
                    &c,
                    100.0,
                    0,
                    SimTime::ZERO
                ),
                Action::Allow
            );
        }
        assert_eq!(e.throttled_total(), 0);
    }

    #[test]
    fn robots_hit_the_rate_limit() {
        let e = engine();
        let mut s = PolicyState::default();
        let c = SessionCounters::new();
        let mut throttled = 0;
        for _ in 0..20 {
            if e.decide(
                &mut s,
                Verdict::Robot(Reason::DecoyFetched),
                &c,
                1.0,
                0,
                SimTime::ZERO,
            ) == Action::Throttle
            {
                throttled += 1;
            }
        }
        // Burst of 2 allowed, the rest throttled.
        assert_eq!(throttled, 18);
        assert_eq!(e.throttled_total(), 18);
    }

    #[test]
    fn verdict_change_reprovisions_the_bucket() {
        // A session that coasts as Undecided must drop to the robot
        // allowance the moment it is classified.
        let e = engine();
        let mut s = PolicyState::default();
        let c = SessionCounters::new();
        for _ in 0..10 {
            assert_eq!(
                e.decide(&mut s, Verdict::Undecided, &c, 1.0, 0, SimTime::ZERO),
                Action::Allow
            );
        }
        let mut allowed = 0;
        for _ in 0..10 {
            if e.decide(
                &mut s,
                Verdict::ProvisionalRobot(Reason::NoBrowserSignals),
                &c,
                1.0,
                0,
                SimTime::ZERO,
            ) == Action::Allow
            {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 2, "fresh robot bucket: burst of 2 only");
    }

    #[test]
    fn cgi_storm_gets_blocked() {
        let e = engine();
        let mut s = PolicyState::default();
        let mut c = SessionCounters::new();
        c.total = 20;
        c.cgi = 15; // 75% CGI.
        let a = e.decide(
            &mut s,
            Verdict::Robot(Reason::NoBrowserSignals),
            &c,
            1.0,
            0,
            SimTime::ZERO,
        );
        assert_eq!(a, Action::Block);
        assert!(s.is_blocked());
        // Subsequent requests stay blocked.
        assert_eq!(
            e.decide(
                &mut s,
                Verdict::Undecided,
                &c,
                0.0,
                0,
                SimTime::from_secs(9)
            ),
            Action::Block
        );
    }

    #[test]
    fn error_storm_gets_blocked() {
        let e = engine();
        let mut s = PolicyState::default();
        let mut c = SessionCounters::new();
        c.total = 50;
        c.resp_4xx = 30;
        assert_eq!(
            e.decide(
                &mut s,
                Verdict::ProvisionalRobot(Reason::JsWithoutMouse),
                &c,
                0.1,
                0,
                SimTime::ZERO
            ),
            Action::Block
        );
    }

    #[test]
    fn high_request_rate_gets_blocked() {
        let e = engine();
        let mut s = PolicyState::default();
        let mut c = SessionCounters::new();
        c.total = 100;
        assert_eq!(
            e.decide(
                &mut s,
                Verdict::Robot(Reason::HiddenLink),
                &c,
                50.0,
                0,
                SimTime::ZERO
            ),
            Action::Block
        );
    }

    #[test]
    fn thresholds_require_history() {
        let e = engine();
        let mut s = PolicyState::default();
        let mut c = SessionCounters::new();
        c.total = 5; // Below min_requests_for_thresholds.
        c.cgi = 5;
        let a = e.decide(
            &mut s,
            Verdict::Robot(Reason::NoBrowserSignals),
            &c,
            1.0,
            0,
            SimTime::ZERO,
        );
        assert_ne!(a, Action::Block, "not enough history to block");
    }

    #[test]
    fn thresholds_do_not_block_humans() {
        let e = engine();
        let mut s = PolicyState::default();
        let mut c = SessionCounters::new();
        c.total = 100;
        c.cgi = 90;
        assert_eq!(
            e.decide(
                &mut s,
                Verdict::Human(Reason::MouseActivity),
                &c,
                50.0,
                0,
                SimTime::ZERO
            ),
            Action::Allow,
            "humans are exempt from robot thresholds"
        );
    }

    #[test]
    fn explicit_block_is_counted_once() {
        let e = engine();
        let mut s = PolicyState::default();
        e.block(&mut s);
        e.block(&mut s);
        assert!(s.is_blocked());
        assert_eq!(e.blocked_total(), 1);
    }

    #[test]
    fn carry_over_keeps_the_block_but_drops_the_bucket() {
        let e = engine();
        let mut s = PolicyState::default();
        let c = SessionCounters::new();
        // Provision a bucket, then block.
        e.decide(&mut s, Verdict::Undecided, &c, 1.0, 0, SimTime::ZERO);
        assert!(s.bucket.is_some());
        e.block(&mut s);
        let next = s.carry_over();
        assert!(next.is_blocked(), "block survives rollover");
        assert!(next.bucket.is_none(), "bucket re-provisions");
        // An unblocked session carries over clean.
        assert!(!PolicyState::default().carry_over().is_blocked());
    }

    #[test]
    fn undecided_sessions_get_loose_limit() {
        let e = engine();
        let mut s = PolicyState::default();
        let c = SessionCounters::new();
        let mut throttled = 0;
        for _ in 0..100 {
            if e.decide(&mut s, Verdict::Undecided, &c, 1.0, 0, SimTime::ZERO) == Action::Throttle {
                throttled += 1;
            }
        }
        assert_eq!(throttled, 40, "burst of 60 allowed out of 100");
    }
}
