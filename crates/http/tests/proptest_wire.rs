//! Property tests for the HTTP substrate: wire roundtrips, URI invariants,
//! and status classification.

use botwall_http::request::ClientIp;
use botwall_http::{wire, Method, Request, Response, StatusCode, Uri};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Head),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
        Just(Method::Options),
        "[A-Z]{3,10}".prop_map(|s| s.parse::<Method>().unwrap()),
    ]
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9_.-]{1,8}", 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn arb_uri() -> impl Strategy<Value = String> {
    (
        "[a-z][a-z0-9]{0,10}(\\.[a-z]{2,4}){1,2}",
        arb_path(),
        proptest::option::of("[a-z]=[a-z0-9]{1,6}(&[a-z]=[a-z0-9]{1,6}){0,3}"),
    )
        .prop_map(|(host, path, query)| match query {
            Some(q) => format!("http://{host}{path}?{q}"),
            None => format!("http://{host}{path}"),
        })
}

fn arb_header() -> impl Strategy<Value = (String, String)> {
    ("[A-Za-z][A-Za-z0-9-]{0,15}", "[a-zA-Z0-9 /;=.,+()-]{0,40}")
        .prop_map(|(n, v)| (n, v.trim().to_string()))
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

proptest! {
    /// parse(serialize(request)) is the identity.
    #[test]
    fn request_wire_roundtrip(
        method in arb_method(),
        uri in arb_uri(),
        headers in proptest::collection::vec(arb_header(), 0..8),
        body in arb_body(),
        ip in any::<u32>(),
    ) {
        let mut b = Request::builder(method, uri).client(ClientIp::new(ip));
        for (n, v) in &headers {
            // Content-Length is derived from the body; skip colliding names.
            if n.eq_ignore_ascii_case("content-length") { continue; }
            b = b.header(n.clone(), v.clone());
        }
        let req = b.body_bytes(body).build().unwrap();
        let bytes = wire::serialize_request(&req);
        let back = wire::parse_request(&bytes, ClientIp::new(ip)).unwrap();
        prop_assert_eq!(back, req);
    }

    /// parse(serialize(response)) is the identity.
    #[test]
    fn response_wire_roundtrip(
        code in 100u16..=599,
        headers in proptest::collection::vec(arb_header(), 0..8),
        body in arb_body(),
    ) {
        let mut b = Response::builder(StatusCode::new(code).unwrap());
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length") { continue; }
            b = b.header(n.clone(), v.clone());
        }
        let resp = b.body_bytes(body).build();
        let bytes = wire::serialize_response(&resp);
        let back = wire::parse_response(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// URI display/parse is the identity on generated URIs.
    #[test]
    fn uri_display_roundtrip(uri in arb_uri()) {
        let parsed: Uri = uri.parse().unwrap();
        let redisplayed = parsed.to_string();
        let reparsed: Uri = redisplayed.parse().unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Status codes land in exactly one class.
    #[test]
    fn status_class_partition(code in 100u16..=599) {
        let s = StatusCode::new(code).unwrap();
        let classes = [
            s.is_informational(),
            s.is_success(),
            s.is_redirect(),
            s.is_client_error(),
            s.is_server_error(),
        ];
        prop_assert_eq!(classes.iter().filter(|&&x| x).count(), 1);
    }

    /// `wire_len` is an upper bound within slack of the real serialization
    /// (exact for requests built without auto Content-Length).
    #[test]
    fn request_wire_len_is_exact(
        method in arb_method(),
        uri in arb_uri(),
    ) {
        let req = Request::builder(method, uri).build().unwrap();
        let bytes = wire::serialize_request(&req);
        prop_assert_eq!(bytes.len(), req.wire_len());
    }

    /// Joining a parsed sibling reference keeps the host and scheme.
    #[test]
    fn uri_join_preserves_authority(base in arb_uri(), name in "[a-z]{1,8}\\.html") {
        let base: Uri = base.parse().unwrap();
        let joined = base.join(&name).unwrap();
        prop_assert_eq!(joined.host(), base.host());
        prop_assert_eq!(joined.scheme(), base.scheme());
        prop_assert!(joined.path().ends_with(&name));
    }

    /// Truncating a serialized request below the header terminator always
    /// produces an error, never a bogus parse.
    #[test]
    fn truncated_header_block_never_parses(
        uri in arb_uri(),
        cut in 0usize..16,
    ) {
        let req = Request::builder(Method::Get, uri).build().unwrap();
        let bytes = wire::serialize_request(&req);
        let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let cut_at = cut.min(head_end);
        prop_assert!(wire::parse_request(&bytes[..cut_at], ClientIp::new(0)).is_err());
    }
}
