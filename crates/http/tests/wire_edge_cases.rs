//! Edge cases for the HTTP/1.x wire parser: malformed start lines, broken
//! and oversized header blocks, and Content-Length pathologies. The whole
//! pipeline sessionizes on what this parser accepts, so rejections must be
//! precise and accepts must be lossless.

use botwall_http::request::ClientIp;
use botwall_http::wire::{parse_request, parse_response, serialize_request};
use botwall_http::HttpError;

fn parse(raw: &[u8]) -> Result<botwall_http::Request, HttpError> {
    parse_request(raw, ClientIp::new(1))
}

#[test]
fn empty_input_is_eof() {
    assert_eq!(parse(b""), Err(HttpError::UnexpectedEof));
}

#[test]
fn missing_header_terminator_is_eof() {
    assert_eq!(
        parse(b"GET / HTTP/1.1\r\nHost: h\r\n"),
        Err(HttpError::UnexpectedEof)
    );
}

#[test]
fn bare_lf_line_endings_are_not_a_terminator() {
    // 2006-era robots often sent sloppy framing; the substrate is strict.
    assert_eq!(
        parse(b"GET / HTTP/1.1\nHost: h\n\n"),
        Err(HttpError::UnexpectedEof)
    );
}

#[test]
fn request_line_with_too_few_tokens_is_rejected() {
    let raw = b"GET /\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidStartLine(_))));
}

#[test]
fn request_line_with_extra_tokens_is_rejected() {
    let raw = b"GET / HTTP/1.1 surprise\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidStartLine(_))));
}

#[test]
fn non_http_version_is_rejected() {
    let raw = b"GET / SPDY/3\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidStartLine(_))));
}

#[test]
fn method_with_illegal_byte_is_rejected() {
    let raw = b"G@T / HTTP/1.1\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidMethod(_))));
}

#[test]
fn unknown_token_method_is_an_extension() {
    let req = parse(b"PURGE /cache HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(req.method().as_str(), "PURGE");
}

#[test]
fn header_without_colon_is_rejected() {
    let raw = b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidHeader(_))));
}

#[test]
fn header_with_empty_name_is_rejected() {
    let raw = b"GET / HTTP/1.1\r\n: value\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidHeader(_))));
}

#[test]
fn header_name_with_space_is_rejected() {
    let raw = b"GET / HTTP/1.1\r\nUser Agent: x\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidHeader(_))));
}

#[test]
fn non_utf8_header_block_is_rejected() {
    let raw = b"GET / HTTP/1.1\r\nX-Junk: \xff\xfe\r\n\r\n";
    assert!(matches!(parse(raw), Err(HttpError::InvalidHeader(_))));
}

#[test]
fn content_length_must_be_numeric() {
    let raw = b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    assert!(matches!(
        parse(raw),
        Err(HttpError::InvalidContentLength(_))
    ));
}

#[test]
fn short_body_reports_expected_and_actual() {
    let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\nUser-Agent: u\r\n\r\nabc";
    assert_eq!(
        parse(raw),
        Err(HttpError::TruncatedBody {
            expected: 10,
            actual: 3
        })
    );
}

#[test]
fn content_length_truncates_trailing_garbage() {
    let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcXYZ";
    let req = parse(raw).unwrap();
    assert_eq!(req.body(), b"abc");
}

#[test]
fn body_without_content_length_runs_to_end() {
    let raw = b"POST / HTTP/1.1\r\n\r\neverything counts";
    let req = parse(raw).unwrap();
    assert_eq!(req.body(), b"everything counts");
}

#[test]
fn oversized_header_value_roundtrips() {
    // No artificial limit in the substrate: a 64 KiB cookie survives intact.
    let big = "c=".to_string() + &"x".repeat(64 * 1024);
    let raw = format!("GET / HTTP/1.1\r\nCookie: {big}\r\nUser-Agent: u\r\n\r\n");
    let req = parse(raw.as_bytes()).unwrap();
    assert_eq!(req.headers().get("Cookie"), Some(big.as_str()));
    let bytes = serialize_request(&req);
    let back = parse(&bytes).unwrap();
    assert_eq!(back, req);
}

#[test]
fn many_headers_roundtrip() {
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..200 {
        raw.push_str(&format!("X-H-{i}: v{i}\r\n"));
    }
    raw.push_str("\r\n");
    let req = parse(raw.as_bytes()).unwrap();
    assert_eq!(req.headers().get("X-H-0"), Some("v0"));
    assert_eq!(req.headers().get("X-H-199"), Some("v199"));
    let back = parse(&serialize_request(&req)).unwrap();
    assert_eq!(back, req);
}

#[test]
fn header_values_are_trimmed() {
    let raw = b"GET / HTTP/1.1\r\nUser-Agent:   padded value  \r\n\r\n";
    let req = parse(raw).unwrap();
    assert_eq!(req.user_agent(), Some("padded value"));
}

#[test]
fn response_status_out_of_range_is_rejected() {
    assert!(matches!(
        parse_response(b"HTTP/1.1 999 Weird\r\n\r\n"),
        Err(HttpError::InvalidStatus(999))
    ));
}

#[test]
fn response_non_numeric_status_is_rejected() {
    assert!(matches!(
        parse_response(b"HTTP/1.1 abc Weird\r\n\r\n"),
        Err(HttpError::InvalidStartLine(_))
    ));
}

#[test]
fn response_reason_phrase_may_contain_spaces() {
    let resp = parse_response(b"HTTP/1.1 404 Not Found At All\r\n\r\n").unwrap();
    assert_eq!(resp.status().as_u16(), 404);
}
