//! A minimal URI parser for proxy-style request lines.
//!
//! Open-proxy traffic (the paper's CoDeeN substrate) uses absolute-form
//! request targets (`GET http://host/path HTTP/1.0`); origin servers see
//! origin-form (`GET /path HTTP/1.0`). This parser handles both plus the
//! query string, which the beacon/probe URL codec relies on.

use crate::error::HttpError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A parsed URI: optional scheme/host/port plus path and optional query.
///
/// # Examples
///
/// ```
/// use botwall_http::Uri;
///
/// let u: Uri = "http://www.example.com:8080/a/b.html?k=1".parse().unwrap();
/// assert_eq!(u.scheme(), Some("http"));
/// assert_eq!(u.host(), Some("www.example.com"));
/// assert_eq!(u.port(), Some(8080));
/// assert_eq!(u.path(), "/a/b.html");
/// assert_eq!(u.query(), Some("k=1"));
///
/// let rel: Uri = "/index.html".parse().unwrap();
/// assert_eq!(rel.host(), None);
/// assert_eq!(rel.path(), "/index.html");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Uri {
    scheme: Option<String>,
    host: Option<String>,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

impl Uri {
    /// Parses an absolute-form (`http://host[:port]/path[?q]`) or
    /// origin-form (`/path[?q]`) URI.
    ///
    /// Returns [`HttpError::InvalidUri`] for empty input, unsupported
    /// schemes, empty hosts, bad ports, or whitespace in the URI.
    pub fn parse(s: &str) -> Result<Uri, HttpError> {
        if s.is_empty() {
            return Err(HttpError::InvalidUri("empty".to_string()));
        }
        if s.bytes().any(|b| b.is_ascii_whitespace()) {
            return Err(HttpError::InvalidUri(format!("whitespace in {s:?}")));
        }
        if let Some(rest) = s
            .strip_prefix("http://")
            .map(|r| ("http", r))
            .or_else(|| s.strip_prefix("https://").map(|r| ("https", r)))
        {
            let (scheme, rest) = rest;
            let (authority, path_and_query) = match rest.find('/') {
                Some(i) => (&rest[..i], &rest[i..]),
                None => (rest, "/"),
            };
            if authority.is_empty() {
                return Err(HttpError::InvalidUri(format!("empty host in {s:?}")));
            }
            let (host, port) = match authority.rsplit_once(':') {
                Some((h, p)) => {
                    if h.is_empty() {
                        return Err(HttpError::InvalidUri(format!("empty host in {s:?}")));
                    }
                    let port: u16 = p
                        .parse()
                        .map_err(|_| HttpError::InvalidUri(format!("bad port in {s:?}")))?;
                    (h.to_string(), Some(port))
                }
                None => (authority.to_string(), None),
            };
            let (path, query) = split_query(path_and_query);
            Ok(Uri {
                scheme: Some(scheme.to_string()),
                host: Some(host),
                port,
                path,
                query,
            })
        } else if s.starts_with('/') {
            let (path, query) = split_query(s);
            Ok(Uri {
                scheme: None,
                host: None,
                port: None,
                path,
                query,
            })
        } else if s == "*" {
            // Asterisk-form for OPTIONS.
            Ok(Uri {
                scheme: None,
                host: None,
                port: None,
                path: "*".to_string(),
                query: None,
            })
        } else {
            Err(HttpError::InvalidUri(format!("unsupported form: {s:?}")))
        }
    }

    /// Builds an absolute `http` URI from parts.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::Uri;
    /// let u = Uri::absolute("example.com", "/x.css");
    /// assert_eq!(u.to_string(), "http://example.com/x.css");
    /// ```
    pub fn absolute(host: impl Into<String>, path: impl Into<String>) -> Uri {
        let path = path.into();
        let (path, query) = split_query(&path);
        Uri {
            scheme: Some("http".to_string()),
            host: Some(host.into()),
            port: None,
            path,
            query,
        }
    }

    /// The scheme (`http`/`https`), if absolute-form.
    pub fn scheme(&self) -> Option<&str> {
        self.scheme.as_deref()
    }

    /// The host, if absolute-form.
    pub fn host(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// The explicit port, if one was given.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The effective port: explicit, or the scheme default.
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or(match self.scheme.as_deref() {
            Some("https") => 443,
            _ => 80,
        })
    }

    /// The path component (always starts with `/`, or is `*`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without the leading `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Path plus query, as it would appear in origin-form.
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// The final path segment (after the last `/`), without the query.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::Uri;
    /// let u: Uri = "http://h/a/b/pic.jpg?x=1".parse().unwrap();
    /// assert_eq!(u.file_name(), "pic.jpg");
    /// ```
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }

    /// The lowercase extension of [`Uri::file_name`], if any.
    pub fn extension(&self) -> Option<String> {
        let name = self.file_name();
        let (stem, ext) = name.rsplit_once('.')?;
        if stem.is_empty() || ext.is_empty() {
            return None;
        }
        Some(ext.to_ascii_lowercase())
    }

    /// Resolves a (possibly relative) reference against this URI, which
    /// must be treated as the base document URI.
    ///
    /// Handles absolute URIs, absolute paths, and sibling-relative paths.
    pub fn join(&self, reference: &str) -> Result<Uri, HttpError> {
        if reference.starts_with("http://") || reference.starts_with("https://") {
            return Uri::parse(reference);
        }
        let mut out = self.clone();
        if let Some(path) = reference.strip_prefix('/') {
            let (path, query) = split_query(&format!("/{path}"));
            out.path = path;
            out.query = query;
            return Ok(out);
        }
        // Sibling-relative: replace the last segment of the base path.
        let base = match self.path.rfind('/') {
            Some(i) => &self.path[..=i],
            None => "/",
        };
        let (path, query) = split_query(&format!("{base}{reference}"));
        out.path = path;
        out.query = query;
        Ok(out)
    }
}

fn split_query(s: &str) -> (String, Option<String>) {
    match s.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (s.to_string(), None),
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let (Some(scheme), Some(host)) = (&self.scheme, &self.host) {
            write!(f, "{scheme}://{host}")?;
            if let Some(p) = self.port {
                write!(f, ":{p}")?;
            }
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Uri {
    type Err = HttpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_form() {
        let u: Uri = "http://www.example.com/index.html".parse().unwrap();
        assert_eq!(u.scheme(), Some("http"));
        assert_eq!(u.host(), Some("www.example.com"));
        assert_eq!(u.port(), None);
        assert_eq!(u.effective_port(), 80);
        assert_eq!(u.path(), "/index.html");
        assert_eq!(u.query(), None);
    }

    #[test]
    fn parses_https_default_port() {
        let u: Uri = "https://secure.example.com/".parse().unwrap();
        assert_eq!(u.effective_port(), 443);
    }

    #[test]
    fn parses_explicit_port_and_query() {
        let u: Uri = "http://h:8080/cgi-bin/s?q=a&b=c".parse().unwrap();
        assert_eq!(u.port(), Some(8080));
        assert_eq!(u.query(), Some("q=a&b=c"));
        assert_eq!(u.path_and_query(), "/cgi-bin/s?q=a&b=c");
    }

    #[test]
    fn host_only_gets_root_path() {
        let u: Uri = "http://example.com".parse().unwrap();
        assert_eq!(u.path(), "/");
    }

    #[test]
    fn parses_origin_form() {
        let u: Uri = "/a/b?x=1".parse().unwrap();
        assert_eq!(u.host(), None);
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.query(), Some("x=1"));
    }

    #[test]
    fn asterisk_form() {
        let u: Uri = "*".parse().unwrap();
        assert_eq!(u.path(), "*");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Uri::parse("").is_err());
        assert!(Uri::parse("ftp://x/").is_err());
        assert!(Uri::parse("http:///path").is_err());
        assert!(Uri::parse("http://h:99999/").is_err());
        assert!(Uri::parse("http://h/a b").is_err());
        assert!(Uri::parse("relative.html").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "http://example.com/",
            "http://example.com:8080/x?y=z",
            "/p/q.css",
            "https://h/",
        ] {
            let u: Uri = s.parse().unwrap();
            assert_eq!(u.to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn file_name_and_extension() {
        let u: Uri = "http://h/img/pic.JPG?v=2".parse().unwrap();
        assert_eq!(u.file_name(), "pic.JPG");
        assert_eq!(u.extension(), Some("jpg".to_string()));

        let u: Uri = "http://h/dir/".parse().unwrap();
        assert_eq!(u.file_name(), "");
        assert_eq!(u.extension(), None);

        let u: Uri = "http://h/.hidden".parse().unwrap();
        assert_eq!(u.extension(), None, "dotfile has no extension");
    }

    #[test]
    fn join_absolute_reference() {
        let base: Uri = "http://a.com/x/y.html".parse().unwrap();
        let j = base.join("http://b.com/z").unwrap();
        assert_eq!(j.host(), Some("b.com"));
    }

    #[test]
    fn join_absolute_path() {
        let base: Uri = "http://a.com/x/y.html".parse().unwrap();
        let j = base.join("/css/site.css").unwrap();
        assert_eq!(j.to_string(), "http://a.com/css/site.css");
    }

    #[test]
    fn join_sibling_relative() {
        let base: Uri = "http://a.com/x/y.html".parse().unwrap();
        let j = base.join("pic.gif").unwrap();
        assert_eq!(j.to_string(), "http://a.com/x/pic.gif");
    }

    #[test]
    fn join_preserves_query_of_reference() {
        let base: Uri = "http://a.com/x/y.html?old=1".parse().unwrap();
        let j = base.join("next.html?new=2").unwrap();
        assert_eq!(j.query(), Some("new=2"));
    }
}
