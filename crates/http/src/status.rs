//! HTTP response status codes.

use crate::error::HttpError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An HTTP status code in `100..=599`.
///
/// The paper's ML features (Table 2) include the share of 2xx, 3xx and 4xx
/// responses per session — `RESPCODE 3XX %` turned out to be the single most
/// informative attribute — so status *classes* are first-class here.
///
/// # Examples
///
/// ```
/// use botwall_http::StatusCode;
/// assert!(StatusCode::OK.is_success());
/// assert!(StatusCode::FOUND.is_redirect());
/// assert!(StatusCode::NOT_FOUND.is_client_error());
/// assert_eq!(StatusCode::new(301).unwrap().class(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(u16);

impl StatusCode {
    /// `200 OK`.
    pub const OK: StatusCode = StatusCode(200);
    /// `204 No Content`.
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// `301 Moved Permanently`.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// `302 Found` (the classic redirect).
    pub const FOUND: StatusCode = StatusCode(302);
    /// `304 Not Modified`.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// `400 Bad Request`.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// `401 Unauthorized`.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// `403 Forbidden`.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// `404 Not Found`.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// `408 Request Timeout` (client took too long to send its request).
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// `429 Too Many Requests` (what the rate limiter returns).
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// `500 Internal Server Error`.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// `502 Bad Gateway` (proxy could not reach the origin).
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// `503 Service Unavailable`.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// `504 Gateway Timeout` (origin did not answer in time).
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// Creates a status code, rejecting values outside `100..=599`.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::StatusCode;
    /// assert!(StatusCode::new(200).is_ok());
    /// assert!(StatusCode::new(99).is_err());
    /// assert!(StatusCode::new(600).is_err());
    /// ```
    pub fn new(code: u16) -> Result<StatusCode, HttpError> {
        if (100..=599).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(HttpError::InvalidStatus(code))
        }
    }

    /// Returns the numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the hundreds digit: 1, 2, 3, 4 or 5.
    pub fn class(self) -> u8 {
        (self.0 / 100) as u8
    }

    /// Returns `true` for 1xx codes.
    pub fn is_informational(self) -> bool {
        self.class() == 1
    }

    /// Returns `true` for 2xx codes.
    pub fn is_success(self) -> bool {
        self.class() == 2
    }

    /// Returns `true` for 3xx codes.
    pub fn is_redirect(self) -> bool {
        self.class() == 3
    }

    /// Returns `true` for 4xx codes.
    pub fn is_client_error(self) -> bool {
        self.class() == 4
    }

    /// Returns `true` for 5xx codes.
    pub fn is_server_error(self) -> bool {
        self.class() == 5
    }

    /// Returns the canonical reason phrase for well-known codes, or
    /// `"Unknown"` otherwise.
    pub fn reason(self) -> &'static str {
        match self.0 {
            100 => "Continue",
            101 => "Switching Protocols",
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            206 => "Partial Content",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            304 => "Not Modified",
            307 => "Temporary Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            410 => "Gone",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u16> for StatusCode {
    type Error = HttpError;

    fn try_from(code: u16) -> Result<Self, Self::Error> {
        StatusCode::new(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_ranges() {
        assert_eq!(StatusCode::new(101).unwrap().class(), 1);
        assert_eq!(StatusCode::OK.class(), 2);
        assert_eq!(StatusCode::FOUND.class(), 3);
        assert_eq!(StatusCode::NOT_FOUND.class(), 4);
        assert_eq!(StatusCode::BAD_GATEWAY.class(), 5);
    }

    #[test]
    fn boundary_validation() {
        assert!(StatusCode::new(100).is_ok());
        assert!(StatusCode::new(599).is_ok());
        assert_eq!(StatusCode::new(99), Err(HttpError::InvalidStatus(99)));
        assert_eq!(StatusCode::new(600), Err(HttpError::InvalidStatus(600)));
        assert_eq!(StatusCode::new(0), Err(HttpError::InvalidStatus(0)));
    }

    #[test]
    fn predicates_are_mutually_exclusive() {
        for code in 100u16..=599 {
            let s = StatusCode::new(code).unwrap();
            let count = [
                s.is_informational(),
                s.is_success(),
                s.is_redirect(),
                s.is_client_error(),
                s.is_server_error(),
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(count, 1, "code {code} should be in exactly one class");
        }
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode::NOT_FOUND.reason(), "Not Found");
        assert_eq!(StatusCode::new(599).unwrap().reason(), "Unknown");
    }

    #[test]
    fn try_from_roundtrip() {
        let s = StatusCode::try_from(418u16).unwrap();
        assert_eq!(s.as_u16(), 418);
        assert_eq!(s.to_string(), "418");
    }
}
