//! Error type shared by the HTTP substrate.

use std::fmt;

/// Errors produced while constructing or parsing HTTP artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// A URI string failed to parse; the payload describes why.
    InvalidUri(String),
    /// A request or status line was malformed.
    InvalidStartLine(String),
    /// A header line was malformed (missing colon, illegal name byte, …).
    InvalidHeader(String),
    /// An HTTP method token was not recognized and not a valid token.
    InvalidMethod(String),
    /// A status code was outside `100..=599`.
    InvalidStatus(u16),
    /// The message body was shorter than the declared `Content-Length`.
    TruncatedBody {
        /// Bytes promised by the `Content-Length` header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The wire input ended before the header block terminator.
    UnexpectedEof,
    /// A `Content-Length` header failed to parse as an integer.
    InvalidContentLength(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::InvalidUri(s) => write!(f, "invalid URI: {s}"),
            HttpError::InvalidStartLine(s) => write!(f, "invalid start line: {s}"),
            HttpError::InvalidHeader(s) => write!(f, "invalid header: {s}"),
            HttpError::InvalidMethod(s) => write!(f, "invalid method: {s}"),
            HttpError::InvalidStatus(c) => write!(f, "invalid status code: {c}"),
            HttpError::TruncatedBody { expected, actual } => {
                write!(f, "truncated body: expected {expected} bytes, got {actual}")
            }
            HttpError::UnexpectedEof => write!(f, "unexpected end of input"),
            HttpError::InvalidContentLength(s) => {
                write!(f, "invalid Content-Length: {s}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HttpError::TruncatedBody {
            expected: 10,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(HttpError::InvalidStatus(999), HttpError::InvalidStatus(999));
        assert_ne!(HttpError::InvalidStatus(999), HttpError::InvalidStatus(998));
    }
}
