//! User-Agent string parsing.
//!
//! The paper is explicit that the `User-Agent` header is "easily forged,
//! and we find that it is commonly forged in practice. As a result, we
//! ignore this field" — as *direct* evidence. It is still useful in two
//! ways the detector exploits:
//!
//! 1. **Browser-type mismatch** (Table 1's 0.7% row): the claim made in the
//!    header can be contradicted by observed behaviour (e.g. claims IE but
//!    never fetches CSS, or the JavaScript-reported agent string differs
//!    from the header).
//! 2. **Session keying**: sessions are `<IP, User-Agent>` pairs, so the raw
//!    string participates in identity even when untrusted.

use serde::{Deserialize, Serialize};

/// Browser families the paper names as "typical browsers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrowserFamily {
    /// Microsoft Internet Explorer.
    InternetExplorer,
    /// Mozilla Firefox.
    Firefox,
    /// Mozilla Suite / Seamonkey.
    Mozilla,
    /// Apple Safari.
    Safari,
    /// Netscape Navigator.
    Netscape,
    /// Opera.
    Opera,
}

impl BrowserFamily {
    /// All families, in the order the paper lists them.
    pub const ALL: [BrowserFamily; 6] = [
        BrowserFamily::InternetExplorer,
        BrowserFamily::Firefox,
        BrowserFamily::Mozilla,
        BrowserFamily::Safari,
        BrowserFamily::Netscape,
        BrowserFamily::Opera,
    ];

    /// A human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BrowserFamily::InternetExplorer => "Internet Explorer",
            BrowserFamily::Firefox => "Firefox",
            BrowserFamily::Mozilla => "Mozilla",
            BrowserFamily::Safari => "Safari",
            BrowserFamily::Netscape => "Netscape",
            BrowserFamily::Opera => "Opera",
        }
    }

    /// A period-accurate example User-Agent string for this family.
    pub fn example_string(self) -> &'static str {
        match self {
            BrowserFamily::InternetExplorer => {
                "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)"
            }
            BrowserFamily::Firefox => {
                "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            }
            BrowserFamily::Mozilla => {
                "Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.12) Gecko/20050922"
            }
            BrowserFamily::Safari => {
                "Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en) AppleWebKit/418 (KHTML, like Gecko) Safari/417.9.2"
            }
            BrowserFamily::Netscape => {
                "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.7.5) Gecko/20050512 Netscape/8.0"
            }
            BrowserFamily::Opera => "Opera/8.51 (Windows NT 5.1; U; en)",
        }
    }
}

/// What a `User-Agent` string *claims* to be.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserAgent {
    /// Claims to be a standard browser.
    Browser(BrowserFamily),
    /// Self-identifies as a robot (contains `bot`, `crawler`, `spider`,
    /// `wget`, `curl`, … or a contact URL/email per the Robot Exclusion
    /// Protocol convention).
    DeclaredRobot(String),
    /// Some other non-empty string.
    Unknown(String),
    /// No `User-Agent` header at all — itself a robot tell.
    Missing,
}

impl UserAgent {
    /// Parses a `User-Agent` header value into a claim.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::{BrowserFamily, UserAgent};
    /// assert_eq!(
    ///     UserAgent::parse(Some("Opera/8.51 (Windows NT 5.1; U; en)")),
    ///     UserAgent::Browser(BrowserFamily::Opera)
    /// );
    /// assert!(matches!(
    ///     UserAgent::parse(Some("Googlebot/2.1 (+http://www.google.com/bot.html)")),
    ///     UserAgent::DeclaredRobot(_)
    /// ));
    /// assert_eq!(UserAgent::parse(None), UserAgent::Missing);
    /// ```
    pub fn parse(value: Option<&str>) -> UserAgent {
        let Some(raw) = value else {
            return UserAgent::Missing;
        };
        let raw = raw.trim();
        if raw.is_empty() {
            return UserAgent::Missing;
        }
        let lower = raw.to_ascii_lowercase();
        for marker in [
            "bot", "crawler", "spider", "wget", "curl", "libwww", "harvest", "fetch", "scan",
            "slurp", "archiver", "java/", "python",
        ] {
            if lower.contains(marker) {
                return UserAgent::DeclaredRobot(raw.to_string());
            }
        }
        // Order matters: many strings contain "Mozilla/"; check the most
        // specific markers first (the historical UA sniffing dance).
        if lower.contains("opera") {
            UserAgent::Browser(BrowserFamily::Opera)
        } else if lower.contains("netscape") {
            UserAgent::Browser(BrowserFamily::Netscape)
        } else if lower.contains("firefox") {
            UserAgent::Browser(BrowserFamily::Firefox)
        } else if lower.contains("safari") {
            UserAgent::Browser(BrowserFamily::Safari)
        } else if lower.contains("msie") {
            UserAgent::Browser(BrowserFamily::InternetExplorer)
        } else if lower.contains("gecko") || lower.starts_with("mozilla/") {
            UserAgent::Browser(BrowserFamily::Mozilla)
        } else {
            UserAgent::Unknown(raw.to_string())
        }
    }

    /// Returns the claimed browser family, if the claim is a browser.
    pub fn browser(&self) -> Option<BrowserFamily> {
        match self {
            UserAgent::Browser(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns `true` if the string claims to be a standard browser.
    pub fn claims_browser(&self) -> bool {
        matches!(self, UserAgent::Browser(_))
    }

    /// Canonicalizes an agent string the way the paper's injected
    /// JavaScript does (`navigator.userAgent.toLowerCase()` with spaces
    /// removed) so header and script-reported strings can be compared.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::UserAgent;
    /// assert_eq!(
    ///     UserAgent::canonicalize("Mozilla/4.0 (compatible; MSIE 6.0)"),
    ///     "mozilla/4.0(compatible;msie6.0)"
    /// );
    /// ```
    pub fn canonicalize(raw: &str) -> String {
        raw.to_ascii_lowercase().replace(' ', "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_example_strings_to_their_family() {
        for f in BrowserFamily::ALL {
            assert_eq!(
                UserAgent::parse(Some(f.example_string())),
                UserAgent::Browser(f),
                "family {}",
                f.name()
            );
        }
    }

    #[test]
    fn missing_and_empty_are_missing() {
        assert_eq!(UserAgent::parse(None), UserAgent::Missing);
        assert_eq!(UserAgent::parse(Some("")), UserAgent::Missing);
        assert_eq!(UserAgent::parse(Some("   ")), UserAgent::Missing);
    }

    #[test]
    fn declared_robots() {
        for s in [
            "Googlebot/2.1 (+http://www.google.com/bot.html)",
            "Wget/1.10.2",
            "curl/7.15.1",
            "EmailSiphon", // contains no marker… see below
            "Python-urllib/2.4",
            "Java/1.5.0_06",
            "Yahoo! Slurp",
        ] {
            let ua = UserAgent::parse(Some(s));
            if s == "EmailSiphon" {
                // No standard marker — falls through to Unknown, which the
                // detector treats as suspicious anyway.
                assert!(matches!(ua, UserAgent::Unknown(_)), "{s}");
            } else {
                assert!(matches!(ua, UserAgent::DeclaredRobot(_)), "{s}");
            }
        }
    }

    #[test]
    fn robot_marker_beats_browser_marker() {
        // Many robots embed "Mozilla/" to sneak past naive filters while
        // still declaring themselves.
        let ua = UserAgent::parse(Some("Mozilla/5.0 (compatible; SuperCrawler/1.0)"));
        assert!(matches!(ua, UserAgent::DeclaredRobot(_)));
    }

    #[test]
    fn bare_mozilla_is_mozilla_family() {
        assert_eq!(
            UserAgent::parse(Some("Mozilla/4.76 [en] (X11; U; Linux 2.4.2)")),
            UserAgent::Browser(BrowserFamily::Mozilla)
        );
    }

    #[test]
    fn unknown_strings() {
        assert!(matches!(
            UserAgent::parse(Some("TotallyLegitClient/9.9")),
            UserAgent::Unknown(_)
        ));
    }

    #[test]
    fn canonicalization_matches_js_behaviour() {
        // The injected script lowercases and strips spaces; both sides must
        // agree for the mismatch test to be sound.
        let raw = "Opera/8.51 (Windows NT 5.1; U; en)";
        let canon = UserAgent::canonicalize(raw);
        assert!(!canon.contains(' '));
        assert_eq!(canon, canon.to_ascii_lowercase());
        assert_eq!(canon, "opera/8.51(windowsnt5.1;u;en)");
    }
}
