//! Request content classification.
//!
//! The detector and the Table-2 feature extractor both need to know *what
//! kind of thing* a request asked for: HTML pages, embedded images, CSS,
//! JavaScript, CGI programs, or the favicon. Robots reveal themselves by
//! the mix they fetch — crawlers and email harvesters request only HTML,
//! referrer spammers fetch nothing presentation-related, off-line browsers
//! fetch everything.

use crate::request::Request;
use crate::response::Response;
use crate::uri::Uri;
use serde::{Deserialize, Serialize};

/// The content class of a requested resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentClass {
    /// An HTML page (including directory indexes).
    Html,
    /// A cascading style sheet.
    Css,
    /// A JavaScript file.
    Script,
    /// An image (`image/*`, or an image extension).
    Image,
    /// The special `/favicon.ico` request browsers issue spontaneously.
    Favicon,
    /// A CGI/dynamic endpoint (path contains `cgi-bin`, `.cgi`, `.php`,
    /// `.asp`, `.jsp`, or carries a query string on an executable path).
    Cgi,
    /// Audio content (the paper suggests silent audio probes).
    Audio,
    /// Anything else (downloads, archives, unknown types).
    Other,
}

impl ContentClass {
    /// Classifies a request, preferring the response `Content-Type` when a
    /// response is available and falling back to URI heuristics.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_http::{ContentClass, Method, Request};
    /// let r = Request::builder(Method::Get, "http://h/style/main.css")
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(ContentClass::of(&r, None), ContentClass::Css);
    /// ```
    pub fn of(request: &Request, response: Option<&Response>) -> ContentClass {
        // Favicon is special-cased by path: browsers fetch it unprompted
        // and Table 2 counts it separately (`FAVICON %`).
        if request
            .uri()
            .file_name()
            .eq_ignore_ascii_case("favicon.ico")
        {
            return ContentClass::Favicon;
        }
        if Self::is_cgi_path(request.uri()) {
            return ContentClass::Cgi;
        }
        if let Some(ct) = response.and_then(|r| r.content_type()) {
            if let Some(c) = Self::from_content_type(ct) {
                return c;
            }
        }
        Self::from_uri(request.uri())
    }

    /// Classifies by MIME type alone. Returns `None` for types that need
    /// URI context.
    pub fn from_content_type(ct: &str) -> Option<ContentClass> {
        let ct = ct
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        match ct.as_str() {
            "text/html" | "application/xhtml+xml" => Some(ContentClass::Html),
            "text/css" => Some(ContentClass::Css),
            "text/javascript" | "application/javascript" | "application/x-javascript" => {
                Some(ContentClass::Script)
            }
            _ if ct.starts_with("image/") => Some(ContentClass::Image),
            _ if ct.starts_with("audio/") => Some(ContentClass::Audio),
            "" => None,
            _ => Some(ContentClass::Other),
        }
    }

    /// Classifies by URI heuristics (extension, path shape).
    pub fn from_uri(uri: &Uri) -> ContentClass {
        if uri.file_name().eq_ignore_ascii_case("favicon.ico") {
            return ContentClass::Favicon;
        }
        if Self::is_cgi_path(uri) {
            return ContentClass::Cgi;
        }
        match uri.extension().as_deref() {
            Some("html") | Some("htm") | Some("xhtml") => ContentClass::Html,
            Some("css") => ContentClass::Css,
            Some("js") => ContentClass::Script,
            Some("jpg") | Some("jpeg") | Some("gif") | Some("png") | Some("bmp") | Some("ico")
            | Some("svg") => ContentClass::Image,
            Some("wav") | Some("mp3") | Some("ogg") | Some("au") => ContentClass::Audio,
            Some(_) => ContentClass::Other,
            // Extensionless paths ending in `/` (or bare) are pages.
            None => ContentClass::Html,
        }
    }

    fn is_cgi_path(uri: &Uri) -> bool {
        let path = uri.path().to_ascii_lowercase();
        path.contains("/cgi-bin/")
            || matches!(
                uri.extension().as_deref(),
                Some("cgi") | Some("php") | Some("asp") | Some("jsp") | Some("pl")
            )
    }

    /// Returns `true` for classes that exist only to render a page
    /// (CSS, images, scripts, favicon, audio).
    ///
    /// The paper's browser test keys on exactly this distinction:
    /// goal-oriented robots skip presentation content.
    pub fn is_presentation(self) -> bool {
        matches!(
            self,
            ContentClass::Css
                | ContentClass::Image
                | ContentClass::Script
                | ContentClass::Favicon
                | ContentClass::Audio
        )
    }

    /// Returns `true` for embedded-object classes (anything a page pulls in
    /// automatically rather than via a followed link).
    pub fn is_embedded_object(self) -> bool {
        matches!(
            self,
            ContentClass::Css | ContentClass::Image | ContentClass::Script | ContentClass::Audio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;

    fn req(uri: &str) -> Request {
        Request::builder(Method::Get, uri).build().unwrap()
    }

    #[test]
    fn classifies_by_extension() {
        assert_eq!(
            ContentClass::of(&req("http://h/a.html"), None),
            ContentClass::Html
        );
        assert_eq!(
            ContentClass::of(&req("http://h/a.css"), None),
            ContentClass::Css
        );
        assert_eq!(
            ContentClass::of(&req("http://h/a.js"), None),
            ContentClass::Script
        );
        assert_eq!(
            ContentClass::of(&req("http://h/a.png"), None),
            ContentClass::Image
        );
        assert_eq!(
            ContentClass::of(&req("http://h/a.wav"), None),
            ContentClass::Audio
        );
        assert_eq!(
            ContentClass::of(&req("http://h/a.zip"), None),
            ContentClass::Other
        );
    }

    #[test]
    fn favicon_wins_over_image_extension() {
        assert_eq!(
            ContentClass::of(&req("http://h/favicon.ico"), None),
            ContentClass::Favicon
        );
        assert_eq!(
            ContentClass::of(&req("http://h/sub/FAVICON.ICO"), None),
            ContentClass::Favicon
        );
        // Some other .ico is just an image.
        assert_eq!(
            ContentClass::of(&req("http://h/logo.ico"), None),
            ContentClass::Image
        );
    }

    #[test]
    fn cgi_detection() {
        assert_eq!(
            ContentClass::of(&req("http://h/cgi-bin/search"), None),
            ContentClass::Cgi
        );
        assert_eq!(
            ContentClass::of(&req("http://h/login.php"), None),
            ContentClass::Cgi
        );
        assert_eq!(
            ContentClass::of(&req("http://h/x.asp?q=1"), None),
            ContentClass::Cgi
        );
        assert_eq!(
            ContentClass::of(&req("http://h/x.jsp"), None),
            ContentClass::Cgi
        );
    }

    #[test]
    fn extensionless_paths_are_pages() {
        assert_eq!(
            ContentClass::of(&req("http://h/"), None),
            ContentClass::Html
        );
        assert_eq!(
            ContentClass::of(&req("http://h/articles/today"), None),
            ContentClass::Html
        );
    }

    #[test]
    fn content_type_overrides_uri() {
        use crate::response::Response;
        use crate::status::StatusCode;
        let resp = Response::builder(StatusCode::OK)
            .header("Content-Type", "image/jpeg")
            .build();
        // Path suggests HTML; Content-Type says image.
        assert_eq!(
            ContentClass::of(&req("http://h/weird"), Some(&resp)),
            ContentClass::Image
        );
    }

    #[test]
    fn content_type_with_parameters() {
        assert_eq!(
            ContentClass::from_content_type("text/html; charset=utf-8"),
            Some(ContentClass::Html)
        );
        assert_eq!(
            ContentClass::from_content_type("application/javascript"),
            Some(ContentClass::Script)
        );
        assert_eq!(ContentClass::from_content_type(""), None);
    }

    #[test]
    fn presentation_and_embedded_predicates() {
        assert!(ContentClass::Css.is_presentation());
        assert!(ContentClass::Favicon.is_presentation());
        assert!(!ContentClass::Html.is_presentation());
        assert!(!ContentClass::Cgi.is_presentation());
        assert!(ContentClass::Image.is_embedded_object());
        assert!(!ContentClass::Favicon.is_embedded_object());
    }
}
