//! An ordered, case-insensitive HTTP header multimap.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered multimap of HTTP headers with case-insensitive name lookup.
///
/// Insertion order is preserved because the wire codec must serialize
/// headers back in the order they were parsed (some robot fingerprints key
/// on header ordering). Lookups fold names to ASCII lowercase.
///
/// # Examples
///
/// ```
/// use botwall_http::Headers;
///
/// let mut h = Headers::new();
/// h.insert("Content-Type", "text/html");
/// h.insert("Set-Cookie", "a=1");
/// h.insert("Set-Cookie", "b=2");
/// assert_eq!(h.get("content-type"), Some("text/html"));
/// assert_eq!(h.get_all("SET-COOKIE").count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headers {
    // Invariant: `entries[i].0` keeps the original casing for serialization;
    // lookups compare case-insensitively.
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Returns the number of header lines (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a header line, preserving any existing lines with the same
    /// name.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replaces every line named `name` with a single line, or appends it if
    /// absent.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        self.remove(&name);
        self.entries.push((name, value));
    }

    /// Removes all lines named `name` (case-insensitive) and returns how
    /// many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// Returns the first value for `name` (case-insensitive), if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns every value for `name` (case-insensitive) in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns `true` if at least one line named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Total serialized size of all header lines in bytes, including the
    /// `": "` separator and CRLF per line. Used by bandwidth accounting.
    pub fn wire_len(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, v)| n.len() + 2 + v.len() + 2)
            .sum()
    }

    /// Parses the `Content-Length` header if present and well-formed.
    pub fn content_length(&self) -> Option<usize> {
        self.get("Content-Length")?.trim().parse().ok()
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.iter() {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl<'a> FromIterator<(&'a str, &'a str)> for Headers {
    fn from_iter<T: IntoIterator<Item = (&'a str, &'a str)>>(iter: T) -> Self {
        let mut h = Headers::new();
        for (n, v) in iter {
            h.insert(n, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.insert("User-Agent", "Mozilla/5.0");
        assert_eq!(h.get("user-agent"), Some("Mozilla/5.0"));
        assert_eq!(h.get("USER-AGENT"), Some("Mozilla/5.0"));
        assert!(h.contains("uSeR-aGeNt"));
        assert_eq!(h.get("Referer"), None);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut h = Headers::new();
        h.insert("A", "1");
        h.insert("B", "2");
        h.insert("A", "3");
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![("A", "1"), ("B", "2"), ("A", "3")]);
    }

    #[test]
    fn get_all_returns_duplicates_in_order() {
        let mut h = Headers::new();
        h.insert("Set-Cookie", "a=1");
        h.insert("Other", "x");
        h.insert("set-cookie", "b=2");
        let vals: Vec<_> = h.get_all("Set-Cookie").collect();
        assert_eq!(vals, vec!["a=1", "b=2"]);
    }

    #[test]
    fn set_replaces_all_occurrences() {
        let mut h = Headers::new();
        h.insert("Cache-Control", "private");
        h.insert("cache-control", "max-age=3600");
        h.set("Cache-Control", "no-cache, no-store");
        assert_eq!(h.get_all("cache-control").count(), 1);
        assert_eq!(h.get("Cache-Control"), Some("no-cache, no-store"));
    }

    #[test]
    fn remove_reports_count() {
        let mut h = Headers::new();
        h.insert("X", "1");
        h.insert("x", "2");
        assert_eq!(h.remove("X"), 2);
        assert_eq!(h.remove("X"), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length(), None);
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nope");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn wire_len_counts_separators() {
        let mut h = Headers::new();
        h.insert("A", "b");
        // "A: b\r\n" = 1 + 2 + 1 + 2.
        assert_eq!(h.wire_len(), 6);
    }

    #[test]
    fn from_iterator_collects() {
        let h: Headers = [("A", "1"), ("B", "2")].into_iter().collect();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get("b"), Some("2"));
    }
}
