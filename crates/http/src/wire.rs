//! HTTP/1.x wire codec.
//!
//! The proxy substrate frames messages the classic way: start line, header
//! block terminated by an empty line, and a body sized by `Content-Length`.
//! Chunked transfer is deliberately out of scope (period-accurate CoDeeN
//! traffic was overwhelmingly 1.0-style), and malformed framing is reported
//! precisely so failure-injection tests can assert on it.

use crate::error::HttpError;
use crate::headers::Headers;
use crate::method::Method;
use crate::request::{ClientIp, Request};
use crate::response::Response;
use crate::status::StatusCode;

/// Serializes a request to HTTP/1.x wire format.
///
/// # Examples
///
/// ```
/// use botwall_http::{Method, Request, wire};
/// let r = Request::builder(Method::Get, "http://h/x").build().unwrap();
/// let bytes = wire::serialize_request(&r);
/// assert!(bytes.starts_with(b"GET http://h/x HTTP/1.1\r\n"));
/// ```
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(req.wire_len());
    serialize_request_into(req, &mut buf);
    buf
}

/// Appends a request's wire bytes to `out` without an intermediate
/// buffer — the zero-copy sibling of [`serialize_request`] for callers
/// that serialize into a pooled buffer.
pub fn serialize_request_into(req: &Request, out: &mut Vec<u8>) {
    out.reserve(req.wire_len());
    out.extend_from_slice(req.method().as_str().as_bytes());
    out.push(b' ');
    // `Uri` renders via `Display`; `write!` into the byte buffer avoids
    // the intermediate `String`.
    use std::io::Write;
    let _ = write!(out, "{}", req.uri());
    out.push(b' ');
    out.extend_from_slice(req.version().as_bytes());
    out.extend_from_slice(b"\r\n");
    put_headers(out, req.headers());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(req.body());
}

/// Serializes a response to HTTP/1.x wire format.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(resp.wire_len());
    serialize_response_into(resp, &mut buf);
    buf
}

/// Appends a response's wire bytes to `out` — head serialized directly
/// into the caller's buffer, body copied once after it. Callers with a
/// pooled write buffer use this to stage an entire response for a
/// single `write` without the build-then-copy of
/// [`serialize_response`].
pub fn serialize_response_into(resp: &Response, out: &mut Vec<u8>) {
    out.reserve(resp.wire_len());
    out.extend_from_slice(resp.version().as_bytes());
    out.push(b' ');
    let mut code = [0u8; 3];
    out.extend_from_slice(format_u16(resp.status().as_u16(), &mut code));
    out.push(b' ');
    out.extend_from_slice(resp.status().reason().as_bytes());
    out.extend_from_slice(b"\r\n");
    put_headers(out, resp.headers());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(resp.body());
}

/// Renders a status code (always three digits) without allocating.
fn format_u16(mut n: u16, buf: &mut [u8; 3]) -> &[u8] {
    for slot in buf.iter_mut().rev() {
        *slot = b'0' + (n % 10) as u8;
        n /= 10;
    }
    &buf[..]
}

fn put_headers(buf: &mut Vec<u8>, headers: &Headers) {
    for (n, v) in headers.iter() {
        buf.extend_from_slice(n.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(v.as_bytes());
        buf.extend_from_slice(b"\r\n");
    }
}

/// Parses a request from wire bytes. The `client` address is attached to
/// the parsed request (wire format does not carry it).
///
/// # Examples
///
/// ```
/// use botwall_http::{wire, request::ClientIp};
/// let raw = b"GET /index.html HTTP/1.0\r\nHost: h\r\n\r\n";
/// let req = wire::parse_request(raw, ClientIp::new(1)).unwrap();
/// assert_eq!(req.uri().path(), "/index.html");
/// assert_eq!(req.headers().get("Host"), Some("h"));
/// ```
pub fn parse_request(input: &[u8], client: ClientIp) -> Result<Request, HttpError> {
    let (start, headers, body) = split_message(input)?;
    let mut parts = start.split(' ');
    let method: Method = parts
        .next()
        .ok_or_else(|| HttpError::InvalidStartLine(start.to_string()))?
        .parse()?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::InvalidStartLine(start.to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::InvalidStartLine(start.to_string()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return Err(HttpError::InvalidStartLine(start.to_string()));
    }
    let mut builder = Request::builder(method, target)
        .version(version)
        .client(client);
    for (n, v) in headers {
        builder = builder.header(n, v);
    }
    builder.body_bytes(body.to_vec()).build()
}

/// Parses a response from wire bytes.
pub fn parse_response(input: &[u8]) -> Result<Response, HttpError> {
    let (start, headers, body) = split_message(input)?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .filter(|v| v.starts_with("HTTP/"))
        .ok_or_else(|| HttpError::InvalidStartLine(start.to_string()))?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| HttpError::InvalidStartLine(start.to_string()))?;
    let status = StatusCode::new(code)?;
    let mut b = Response::builder(status).version(version);
    for (n, v) in headers {
        b = b.header(n, v);
    }
    Ok(b.body_bytes(body.to_vec()).build())
}

/// A parsed message before any allocation: start line, header
/// name/value pairs, and body, all borrowed from the input buffer.
type BorrowedMessage<'a> = (&'a str, Vec<(&'a str, &'a str)>, &'a [u8]);

/// Splits raw bytes into (start line, headers, body), enforcing
/// `Content-Length` when present.
///
/// Zero-copy: the start line, header names/values, and body are slices
/// borrowed straight from `input` — nothing allocates until the caller
/// builds the owned message (one `String` per header there, instead of
/// the former intermediate-`Headers`-then-rebuild double allocation).
/// Error paths still allocate their diagnostic strings; they are off the
/// hot path by definition.
fn split_message(input: &[u8]) -> Result<BorrowedMessage<'_>, HttpError> {
    let head_end = find_header_end(input).ok_or(HttpError::UnexpectedEof)?;
    let head = std::str::from_utf8(&input[..head_end])
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 header block".to_string()))?;
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or(HttpError::UnexpectedEof)?;
    let mut headers: Vec<(&str, &str)> = Vec::new();
    let mut content_length: Option<&str> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::InvalidHeader(line.to_string()))?;
        if name.is_empty() || !name.bytes().all(Method::is_token_byte) {
            return Err(HttpError::InvalidHeader(line.to_string()));
        }
        let value = value.trim();
        // First Content-Length line wins, matching `Headers::get`.
        if content_length.is_none() && name.eq_ignore_ascii_case("Content-Length") {
            content_length = Some(value);
        }
        headers.push((name, value));
    }
    let body_start = head_end + 4;
    let available = &input[body_start.min(input.len())..];
    let body = match content_length {
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| HttpError::InvalidContentLength(raw.to_string()))?;
            if available.len() < n {
                return Err(HttpError::TruncatedBody {
                    expected: n,
                    actual: available.len(),
                });
            }
            &available[..n]
        }
        None => available,
    };
    Ok((start, headers, body))
}

fn find_header_end(input: &[u8]) -> Option<usize> {
    input.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request::builder(Method::Post, "http://h/cgi-bin/x")
            .header("User-Agent", "test/1.0")
            .header("Referer", "http://h/")
            .body_bytes(b"a=1".to_vec())
            .client(ClientIp::new(42))
            .build()
            .unwrap();
        let bytes = serialize_request(&r);
        let back = parse_request(&bytes, ClientIp::new(42)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::builder(StatusCode::OK)
            .header("Content-Type", "text/html")
            .body_bytes(b"<html></html>".to_vec())
            .build();
        let bytes = serialize_response(&r);
        let back = parse_response(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parse_http10_request_without_body() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let r = parse_request(raw, ClientIp::new(0)).unwrap();
        assert_eq!(r.version(), "HTTP/1.0");
        assert!(r.body().is_empty());
    }

    #[test]
    fn truncated_body_is_detected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let err = parse_request(raw, ClientIp::new(0)).unwrap_err();
        assert_eq!(
            err,
            HttpError::TruncatedBody {
                expected: 10,
                actual: 3
            }
        );
    }

    #[test]
    fn missing_header_terminator_is_eof() {
        let raw = b"GET / HTTP/1.1\r\nHost: h\r\n";
        assert_eq!(
            parse_request(raw, ClientIp::new(0)).unwrap_err(),
            HttpError::UnexpectedEof
        );
    }

    #[test]
    fn malformed_header_line_rejected() {
        let raw = b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n";
        assert!(matches!(
            parse_request(raw, ClientIp::new(0)).unwrap_err(),
            HttpError::InvalidHeader(_)
        ));
    }

    #[test]
    fn bad_start_lines_rejected() {
        for raw in [
            &b"GET /\r\n\r\n"[..],
            &b"GET / HTTP/1.1 EXTRA\r\n\r\n"[..],
            &b"G ET / HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(parse_request(raw, ClientIp::new(0)).is_err());
        }
    }

    #[test]
    fn bad_content_length_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(
            parse_request(raw, ClientIp::new(0)).unwrap_err(),
            HttpError::InvalidContentLength(_)
        ));
    }

    #[test]
    fn response_status_out_of_range_rejected() {
        let raw = b"HTTP/1.1 999 Whatever\r\n\r\n";
        assert_eq!(
            parse_response(raw).unwrap_err(),
            HttpError::InvalidStatus(999)
        );
    }

    #[test]
    fn header_values_are_trimmed() {
        let raw = b"GET / HTTP/1.1\r\nHost:    spacey.example.com   \r\n\r\n";
        let r = parse_request(raw, ClientIp::new(0)).unwrap();
        assert_eq!(r.headers().get("Host"), Some("spacey.example.com"));
    }

    #[test]
    fn reason_phrase_with_spaces_parses() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status(), StatusCode::NOT_FOUND);
    }
}
