//! HTTP/1.x substrate for the `botwall` robot-detection system.
//!
//! This crate provides the typed HTTP vocabulary that every other `botwall`
//! crate speaks: request/response messages, a header multimap, a minimal URI
//! parser suited to proxy-style (absolute-form) request lines, a wire codec
//! for HTTP/1.x framing, content classification used by the detector's
//! feature extraction, and a User-Agent parser.
//!
//! The design follows the needs of the robot detector from Park et al.,
//! *Securing Web Service by Automatic Robot Detection* (USENIX 2006):
//!
//! * The detector sessionizes traffic by `<client IP, User-Agent>` pairs, so
//!   [`Request`] carries both.
//! * Feature extraction (Table 2 of the paper) needs request *content
//!   classes* (HTML, image, CGI, favicon, …) and response *status classes*
//!   (2xx/3xx/4xx), so [`ContentClass`] and [`StatusCode`] expose them
//!   directly.
//! * The User-Agent header is routinely forged by robots; [`useragent`]
//!   parses the *claim* so the detector can test behaviour against it
//!   (browser-type mismatch), never trusting it as direct evidence.
//!
//! # Examples
//!
//! ```
//! use botwall_http::{Method, Request, StatusCode, Response, ContentClass};
//!
//! let req = Request::builder(Method::Get, "http://www.example.com/index.html")
//!     .header("User-Agent", "Mozilla/5.0 (Windows; U) Firefox/1.5")
//!     .header("Referer", "http://www.example.com/")
//!     .build()
//!     .unwrap();
//! assert_eq!(req.uri().host(), Some("www.example.com"));
//!
//! let resp = Response::builder(StatusCode::OK)
//!     .header("Content-Type", "text/html")
//!     .body_bytes(b"<html></html>".to_vec())
//!     .build();
//! assert!(resp.status().is_success());
//! assert_eq!(ContentClass::of(&req, Some(&resp)), ContentClass::Html);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod error;
pub mod headers;
pub mod method;
pub mod request;
pub mod response;
pub mod status;
pub mod uri;
pub mod useragent;
pub mod wire;

pub use content::ContentClass;
pub use error::HttpError;
pub use headers::Headers;
pub use method::Method;
pub use request::{Request, RequestBuilder};
pub use response::{Response, ResponseBuilder};
pub use status::StatusCode;
pub use uri::Uri;
pub use useragent::{BrowserFamily, UserAgent};
