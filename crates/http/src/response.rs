//! Typed HTTP responses.

use crate::headers::Headers;
use crate::status::StatusCode;
use serde::{Deserialize, Serialize};

/// A typed HTTP response.
///
/// # Examples
///
/// ```
/// use botwall_http::{Response, StatusCode};
///
/// let r = Response::builder(StatusCode::FOUND)
///     .header("Location", "http://example.com/moved.html")
///     .build();
/// assert!(r.status().is_redirect());
/// assert_eq!(r.location(), Some("http://example.com/moved.html"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    status: StatusCode,
    version: String,
    headers: Headers,
    body: Vec<u8>,
}

impl Response {
    /// Starts building a response with the given status.
    pub fn builder(status: StatusCode) -> ResponseBuilder {
        ResponseBuilder {
            status,
            version: "HTTP/1.1".to_string(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Convenience constructor for a bodyless response.
    pub fn empty(status: StatusCode) -> Response {
        Response::builder(status).build()
    }

    /// The status code.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    /// The protocol version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The header map.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// Mutable access to the header map.
    pub fn headers_mut(&mut self) -> &mut Headers {
        &mut self.headers
    }

    /// The response body.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Replaces the body, updating `Content-Length`.
    pub fn set_body(&mut self, body: Vec<u8>) {
        self.headers.set("Content-Length", body.len().to_string());
        self.body = body;
    }

    /// The `Content-Type` header value, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get("Content-Type")
    }

    /// The `Location` header value, if present (redirect target).
    pub fn location(&self) -> Option<&str> {
        self.headers.get("Location")
    }

    /// Returns `true` if the response forbids caching.
    ///
    /// The instrumenter marks every rewritten page and generated probe
    /// `Cache-Control: no-cache, no-store` so browsers re-fetch them and
    /// the beacon keys stay fresh (§2.1 of the paper).
    pub fn is_uncacheable(&self) -> bool {
        self.headers
            .get_all("Cache-Control")
            .any(|v| v.contains("no-store") || v.contains("no-cache"))
    }

    /// Approximate wire size in bytes (status line + headers + body).
    pub fn wire_len(&self) -> usize {
        let line = self.version.len() + 1 + 3 + 1 + self.status.reason().len() + 2;
        line + self.headers.wire_len() + 2 + self.body.len()
    }
}

/// Builder for [`Response`].
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    status: StatusCode,
    version: String,
    headers: Headers,
    body: Vec<u8>,
}

impl ResponseBuilder {
    /// Appends a header line.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Sets the protocol version string.
    pub fn version(mut self, v: impl Into<String>) -> Self {
        self.version = v.into();
        self
    }

    /// Sets the body and a matching `Content-Length` header (unless one was
    /// already set explicitly).
    pub fn body_bytes(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Produces the response.
    pub fn build(mut self) -> Response {
        if !self.body.is_empty() && !self.headers.contains("Content-Length") {
            self.headers
                .set("Content-Length", self.body.len().to_string());
        }
        Response {
            status: self.status,
            version: self.version,
            headers: self.headers,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_content_length() {
        let r = Response::builder(StatusCode::OK)
            .body_bytes(b"hello".to_vec())
            .build();
        assert_eq!(r.headers().content_length(), Some(5));
        assert_eq!(r.body(), b"hello");
    }

    #[test]
    fn empty_response_has_no_content_length() {
        let r = Response::empty(StatusCode::NO_CONTENT);
        assert_eq!(r.headers().content_length(), None);
    }

    #[test]
    fn set_body_updates_content_length() {
        let mut r = Response::empty(StatusCode::OK);
        r.set_body(vec![0u8; 10]);
        assert_eq!(r.headers().content_length(), Some(10));
    }

    #[test]
    fn uncacheable_detection() {
        let r = Response::builder(StatusCode::OK)
            .header("Cache-Control", "no-cache, no-store")
            .build();
        assert!(r.is_uncacheable());
        let r = Response::builder(StatusCode::OK)
            .header("Cache-Control", "max-age=3600")
            .build();
        assert!(!r.is_uncacheable());
        assert!(!Response::empty(StatusCode::OK).is_uncacheable());
    }

    #[test]
    fn location_accessor() {
        let r = Response::builder(StatusCode::MOVED_PERMANENTLY)
            .header("Location", "/new")
            .build();
        assert_eq!(r.location(), Some("/new"));
    }

    #[test]
    fn wire_len_counts_all_parts() {
        let r = Response::empty(StatusCode::OK);
        // "HTTP/1.1 200 OK\r\n" (17) + "\r\n" (2).
        assert_eq!(r.wire_len(), 19);
    }
}
