//! HTTP request methods.

use crate::error::HttpError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An HTTP request method.
///
/// The paper's feature set (Table 2) tracks the share of `HEAD` commands
/// explicitly (`HEAD %`), and its abuse policies key on `GET` rates and
/// CGI `POST` hammering, so methods are first-class here.
///
/// # Examples
///
/// ```
/// use botwall_http::Method;
/// assert_eq!("GET".parse::<Method>().unwrap(), Method::Get);
/// assert!(Method::Head.is_safe());
/// assert!(!Method::Post.is_safe());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// `GET` — retrieve a resource.
    Get,
    /// `HEAD` — retrieve headers only.
    Head,
    /// `POST` — submit data (forms, password attempts, CGI).
    Post,
    /// `PUT` — replace a resource.
    Put,
    /// `DELETE` — remove a resource.
    Delete,
    /// `OPTIONS` — query capabilities.
    Options,
    /// `TRACE` — echo the request.
    Trace,
    /// `CONNECT` — open a tunnel (used through open proxies by abusers).
    Connect,
    /// Any other syntactically valid token (extension methods).
    Extension(String),
}

impl Method {
    /// Returns the canonical token for the method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Trace => "TRACE",
            Method::Connect => "CONNECT",
            Method::Extension(s) => s,
        }
    }

    /// Returns `true` for methods defined as safe (no server-side effects).
    pub fn is_safe(&self) -> bool {
        matches!(
            self,
            Method::Get | Method::Head | Method::Options | Method::Trace
        )
    }

    /// Returns `true` for idempotent methods.
    pub fn is_idempotent(&self) -> bool {
        self.is_safe() || matches!(self, Method::Put | Method::Delete)
    }

    /// Returns `true` if `b` is a legal HTTP token byte (RFC 7230 tchar).
    pub(crate) fn is_token_byte(b: u8) -> bool {
        matches!(
            b,
            b'!' | b'#'
                | b'$'
                | b'%'
                | b'&'
                | b'\''
                | b'*'
                | b'+'
                | b'-'
                | b'.'
                | b'^'
                | b'_'
                | b'`'
                | b'|'
                | b'~'
        ) || b.is_ascii_alphanumeric()
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = HttpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(Method::is_token_byte) {
            return Err(HttpError::InvalidMethod(s.to_string()));
        }
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "TRACE" => Method::Trace,
            "CONNECT" => Method::Connect,
            other => Method::Extension(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_methods() {
        for (s, m) in [
            ("GET", Method::Get),
            ("HEAD", Method::Head),
            ("POST", Method::Post),
            ("PUT", Method::Put),
            ("DELETE", Method::Delete),
            ("OPTIONS", Method::Options),
            ("TRACE", Method::Trace),
            ("CONNECT", Method::Connect),
        ] {
            assert_eq!(s.parse::<Method>().unwrap(), m);
            assert_eq!(m.as_str(), s);
        }
    }

    #[test]
    fn extension_methods_roundtrip() {
        let m: Method = "PROPFIND".parse().unwrap();
        assert_eq!(m, Method::Extension("PROPFIND".to_string()));
        assert_eq!(m.as_str(), "PROPFIND");
    }

    #[test]
    fn methods_are_case_sensitive() {
        // `get` is a valid token but not the canonical GET method.
        let m: Method = "get".parse().unwrap();
        assert_eq!(m, Method::Extension("get".to_string()));
    }

    #[test]
    fn rejects_non_token_bytes() {
        assert!("G ET".parse::<Method>().is_err());
        assert!("".parse::<Method>().is_err());
        assert!("GET\r".parse::<Method>().is_err());
        assert!("GET:".parse::<Method>().is_err());
    }

    #[test]
    fn safety_classes() {
        assert!(Method::Get.is_safe());
        assert!(Method::Head.is_safe());
        assert!(!Method::Post.is_safe());
        assert!(!Method::Connect.is_safe());
        assert!(Method::Put.is_idempotent());
        assert!(Method::Delete.is_idempotent());
        assert!(!Method::Post.is_idempotent());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(Method::Post.to_string(), "POST");
        assert_eq!(Method::Extension("PATCH".into()).to_string(), "PATCH");
    }
}
