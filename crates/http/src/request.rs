//! Typed HTTP requests.

use crate::error::HttpError;
use crate::headers::Headers;
use crate::method::Method;
use crate::uri::Uri;
use serde::{Deserialize, Serialize};

/// An IPv4-style client address used to key sessions.
///
/// The simulation does not route packets, so a compact opaque 32-bit
/// identifier suffices; `Display` renders dotted-quad for logs.
///
/// # Examples
///
/// ```
/// use botwall_http::request::ClientIp;
/// let ip = ClientIp::new(0x0A000001);
/// assert_eq!(ip.to_string(), "10.0.0.1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientIp(u32);

impl ClientIp {
    /// Creates an address from its 32-bit value.
    pub fn new(v: u32) -> ClientIp {
        ClientIp(v)
    }

    /// Returns the raw 32-bit value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ClientIp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A typed HTTP request.
///
/// Carries the client address alongside the message because the detector
/// keys all of its state by `<client IP, User-Agent>`.
///
/// # Examples
///
/// ```
/// use botwall_http::{Method, Request};
///
/// let r = Request::builder(Method::Get, "http://example.com/a.html")
///     .header("User-Agent", "crawler/1.0")
///     .build()
///     .unwrap();
/// assert_eq!(r.user_agent(), Some("crawler/1.0"));
/// assert_eq!(r.referer(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    method: Method,
    uri: Uri,
    version: String,
    headers: Headers,
    body: Vec<u8>,
    client: ClientIp,
}

impl Request {
    /// Starts building a request; `uri` must parse or
    /// [`RequestBuilder::build`] fails.
    pub fn builder(method: Method, uri: impl Into<String>) -> RequestBuilder {
        RequestBuilder {
            method,
            uri: uri.into(),
            version: "HTTP/1.1".to_string(),
            headers: Headers::new(),
            body: Vec::new(),
            client: ClientIp(0),
        }
    }

    /// The request method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The request target.
    pub fn uri(&self) -> &Uri {
        &self.uri
    }

    /// The protocol version string (`HTTP/1.0` or `HTTP/1.1`).
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The header map.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// Mutable access to the header map.
    pub fn headers_mut(&mut self) -> &mut Headers {
        &mut self.headers
    }

    /// The request body.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The client address this request arrived from.
    pub fn client(&self) -> ClientIp {
        self.client
    }

    /// Overrides the client address (used when replaying logs).
    pub fn set_client(&mut self, ip: ClientIp) {
        self.client = ip;
    }

    /// The `User-Agent` header value, if present.
    pub fn user_agent(&self) -> Option<&str> {
        self.headers.get("User-Agent")
    }

    /// The `Referer` header value, if present.
    ///
    /// Table 2's `REFERRER %` and `UNSEEN REFERRER %` features and the
    /// referrer-spam robot model both read this.
    pub fn referer(&self) -> Option<&str> {
        self.headers.get("Referer")
    }

    /// Approximate wire size in bytes (request line + headers + body).
    pub fn wire_len(&self) -> usize {
        let line = self.method.as_str().len()
            + 1
            + self.uri.to_string().len()
            + 1
            + self.version.len()
            + 2;
        line + self.headers.wire_len() + 2 + self.body.len()
    }
}

/// Builder for [`Request`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    method: Method,
    uri: String,
    version: String,
    headers: Headers,
    body: Vec<u8>,
    client: ClientIp,
}

impl RequestBuilder {
    /// Appends a header line.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(name, value);
        self
    }

    /// Sets the protocol version string.
    pub fn version(mut self, v: impl Into<String>) -> Self {
        self.version = v.into();
        self
    }

    /// Sets the body.
    pub fn body_bytes(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Sets the originating client address.
    pub fn client(mut self, ip: ClientIp) -> Self {
        self.client = ip;
        self
    }

    /// Validates the URI and produces the request.
    ///
    /// Adds a `Content-Length` header when a non-empty body is present and
    /// none was set explicitly.
    pub fn build(mut self) -> Result<Request, HttpError> {
        let uri = Uri::parse(&self.uri)?;
        if !self.body.is_empty() && !self.headers.contains("Content-Length") {
            self.headers
                .set("Content-Length", self.body.len().to_string());
        }
        Ok(Request {
            method: self.method,
            uri,
            version: self.version,
            headers: self.headers,
            body: self.body,
            client: self.client,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_request() {
        let r = Request::builder(Method::Post, "http://h/cgi-bin/login")
            .header("User-Agent", "x")
            .body_bytes(b"user=a&pass=b".to_vec())
            .client(ClientIp::new(7))
            .build()
            .unwrap();
        assert_eq!(r.method(), &Method::Post);
        assert_eq!(r.uri().path(), "/cgi-bin/login");
        assert_eq!(r.client().as_u32(), 7);
        assert_eq!(r.headers().content_length(), Some(13));
    }

    #[test]
    fn builder_rejects_bad_uri() {
        assert!(Request::builder(Method::Get, "not a uri").build().is_err());
    }

    #[test]
    fn explicit_content_length_not_overwritten() {
        let r = Request::builder(Method::Post, "/x")
            .header("Content-Length", "99")
            .body_bytes(vec![1, 2, 3])
            .build()
            .unwrap();
        assert_eq!(r.headers().content_length(), Some(99));
    }

    #[test]
    fn accessors_for_common_headers() {
        let r = Request::builder(Method::Get, "/p")
            .header("Referer", "http://h/prev.html")
            .build()
            .unwrap();
        assert_eq!(r.referer(), Some("http://h/prev.html"));
        assert_eq!(r.user_agent(), None);
    }

    #[test]
    fn client_ip_display() {
        assert_eq!(ClientIp::new(0xC0A80101).to_string(), "192.168.1.1");
        assert_eq!(ClientIp::new(0).to_string(), "0.0.0.0");
    }

    #[test]
    fn wire_len_counts_all_parts() {
        let r = Request::builder(Method::Get, "/a")
            .version("HTTP/1.0")
            .build()
            .unwrap();
        // "GET /a HTTP/1.0\r\n" (17) + "\r\n" (2).
        assert_eq!(r.wire_len(), 19);
    }
}
