//! Per-agent solvability models.
//!
//! The paper's footnote: "While some CAPTCHA tests can be solved by
//! character recognition, this one was optional, and active only for a
//! short period. We saw no abuse from clients passing the CAPTCHA test,
//! strongly suggesting they were human." The oracle models exactly that
//! landscape: humans attempt optionally and mostly succeed; robots rarely
//! attempt and essentially never succeed (an OCR bot knob exists for
//! adversarial experiments).

use crate::challenge::Challenge;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How an agent population behaves when offered a challenge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverProfile {
    /// Probability the agent bothers to attempt an *optional* challenge.
    /// The paper's incentive (higher bandwidth) produced a 9.1% session
    /// pass rate — opt-in, not ability, is the limiting factor for humans.
    pub attempt_probability: f64,
    /// Probability an attempt succeeds at difficulty 0; effective success
    /// decays linearly with challenge difficulty down to `floor`.
    pub base_success: f64,
    /// Success floor at difficulty 1.
    pub floor: f64,
}

impl SolverProfile {
    /// A typical incentivized human (opt-in tuned so ≈9% of sessions
    /// pass, matching Table 1).
    pub fn human_default() -> SolverProfile {
        SolverProfile {
            attempt_probability: 0.40,
            base_success: 0.97,
            floor: 0.85,
        }
    }

    /// A robot with no OCR capability.
    pub fn robot_default() -> SolverProfile {
        SolverProfile {
            attempt_probability: 0.02,
            base_success: 0.01,
            floor: 0.0,
        }
    }

    /// An OCR-equipped robot (for adversarial ablations).
    pub fn ocr_robot() -> SolverProfile {
        SolverProfile {
            attempt_probability: 0.5,
            base_success: 0.30,
            floor: 0.05,
        }
    }

    /// Effective success probability at a challenge's difficulty.
    pub fn success_at(&self, difficulty: f64) -> f64 {
        let d = difficulty.clamp(0.0, 1.0);
        self.base_success * (1.0 - d) + self.floor * d
    }

    /// Simulates an offer: `None` if the agent declines, `Some(passed)`
    /// otherwise.
    pub fn attempt<R: Rng>(&self, challenge: &Challenge, rng: &mut R) -> Option<bool> {
        if !rng.gen_bool(self.attempt_probability.clamp(0.0, 1.0)) {
            return None;
        }
        Some(rng.gen_bool(self.success_at(challenge.difficulty).clamp(0.0, 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::ChallengeGenerator;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rates(profile: SolverProfile, difficulty: f64, trials: u32) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut gen = ChallengeGenerator::new(1);
        gen.set_difficulty(difficulty);
        let ch = gen.issue();
        let mut attempts = 0u32;
        let mut passes = 0u32;
        for _ in 0..trials {
            match profile.attempt(&ch, &mut rng) {
                Some(true) => {
                    attempts += 1;
                    passes += 1;
                }
                Some(false) => attempts += 1,
                None => {}
            }
        }
        (
            attempts as f64 / trials as f64,
            passes as f64 / trials as f64,
        )
    }

    #[test]
    fn humans_mostly_pass_when_they_try() {
        let (attempt_rate, pass_rate) = rates(SolverProfile::human_default(), 0.5, 20_000);
        assert!((attempt_rate - 0.40).abs() < 0.02, "attempt {attempt_rate}");
        // Success at difficulty 0.5 ≈ 0.91, so pass ≈ 0.364.
        assert!((pass_rate - 0.364).abs() < 0.03, "pass {pass_rate}");
    }

    #[test]
    fn robots_essentially_never_pass() {
        let (_, pass_rate) = rates(SolverProfile::robot_default(), 0.5, 20_000);
        assert!(pass_rate < 0.01, "robot pass {pass_rate}");
    }

    #[test]
    fn ocr_robot_is_in_between() {
        let (_, human_pass) = rates(SolverProfile::human_default(), 0.5, 20_000);
        let (_, ocr_pass) = rates(SolverProfile::ocr_robot(), 0.5, 20_000);
        let (_, bot_pass) = rates(SolverProfile::robot_default(), 0.5, 20_000);
        assert!(ocr_pass > bot_pass);
        assert!(ocr_pass < human_pass);
    }

    #[test]
    fn success_decays_with_difficulty() {
        let p = SolverProfile::human_default();
        assert!(p.success_at(0.0) > p.success_at(0.5));
        assert!(p.success_at(0.5) > p.success_at(1.0));
        assert_eq!(p.success_at(1.0), p.floor);
        // Out-of-range difficulty is clamped.
        assert_eq!(p.success_at(5.0), p.floor);
    }
}
