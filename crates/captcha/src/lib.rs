//! CAPTCHA substrate for `botwall`.
//!
//! The paper uses CAPTCHA in two roles, both reproduced here:
//!
//! 1. **Labelling oracle** (§3.1, §4.2): an *optional* test with a
//!    bandwidth incentive; 9.1% of sessions passed it and those passes are
//!    treated as ground-truth humans (95.8% of passers executed JS, 99.2%
//!    fetched CSS — numbers the Table-1 harness reproduces).
//! 2. **Related-work comparison** (§5): Kandula et al. serve CAPTCHAs to
//!    everyone during DDoS; the paper argues always-on quizzes are
//!    impractical for normal operation. [`policy::ServingPolicy`] models
//!    both strategies so the ablation bench can compare them.
//!
//! The actual image distortion is abstracted: what matters to every
//! consumer is *who can solve it with what probability*, modelled by
//! [`oracle::SolverProfile`].
//!
//! # Examples
//!
//! ```
//! use botwall_captcha::{ChallengeGenerator, SolverProfile};
//! use rand_chacha::rand_core::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut gen = ChallengeGenerator::new(7);
//! let ch = gen.issue();
//! let human = SolverProfile::human_default();
//! // Opt-in is probabilistic; when attempted, humans usually pass.
//! let _outcome: Option<bool> = human.attempt(&ch, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod challenge;
pub mod oracle;
pub mod policy;

pub use challenge::{Challenge, ChallengeGenerator};
pub use oracle::SolverProfile;
pub use policy::{CaptchaService, ServingPolicy};
