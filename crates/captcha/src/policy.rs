//! CAPTCHA serving strategies.

use crate::challenge::Challenge;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// When challenges are offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingPolicy {
    /// The paper's deployment: optional, incentivized with a bandwidth
    /// boost, offered at most once per session.
    OptionalWithIncentive,
    /// Kandula-style: served to every client while under attack
    /// (impractical for normal operation, per §5 — "human users do not
    /// want to solve a quiz every time they access a Web page").
    MandatoryUnderAttack,
    /// Never serve (control).
    Disabled,
}

/// Default difficulty of served challenges.
const DEFAULT_DIFFICULTY: f64 = 0.5;

/// Stateless challenge generation and verification, plus the serving
/// policy and aggregate pass statistics.
///
/// Since PR 4 the service keeps **no outstanding-challenge table** (the
/// old global `IssueTable` mutex is gone): a challenge is fully derived
/// from the service seed and its id ([`Challenge::derive`]), so issuing
/// is an atomic counter increment and verification is a re-derivation.
/// *Which* challenge a session must answer is per-session state; the
/// gateway keeps that record colocated with the session's other state in
/// its tracker shard entry. Everything on the request path (issue,
/// policy reads, `check`) is an atomic or immutable — never a lock.
///
/// Single-use is enforced here, globally: a successfully [`verify`]ed id
/// lands in a redeemed set (sharded by id, touched only on the rare
/// answer-submission path, never by request handling), so one solved
/// `(id, answer)` pair cannot be replayed — the property the old issue
/// table provided by deleting entries.
///
/// [`verify`]: CaptchaService::verify
#[derive(Debug)]
pub struct CaptchaService {
    policy: ServingPolicy,
    under_attack: AtomicBool,
    seed: u64,
    next_id: AtomicU64,
    issued: AtomicU64,
    passed: AtomicU64,
    failed: AtomicU64,
    /// Ids already redeemed, sharded by id. Only [`CaptchaService::verify`]
    /// (the human-answers-a-challenge path) ever locks a shard; the
    /// request path never touches this.
    redeemed: Vec<Mutex<HashSet<u64>>>,
    /// Monotone validity floor: ids below it are rejected outright.
    /// Raised whenever the redeemed set evicts an old id, so an evicted
    /// id can never be replayed — eviction *retires* history instead of
    /// forgetting it (the old issue table got the same effect by
    /// evicting oldest outstanding entries).
    min_valid_id: AtomicU64,
    /// Redeemed ids retained per shard before retirement kicks in.
    redeemed_cap: usize,
}

/// Shards of the redeemed-id set.
const REDEEMED_SHARDS: usize = 16;
/// Redeemed ids retained per shard; beyond it the smallest (oldest) id
/// is dropped — by then its challenge is ancient history.
const MAX_REDEEMED_PER_SHARD: usize = 65_536;

impl CaptchaService {
    /// Creates a service.
    pub fn new(policy: ServingPolicy, seed: u64) -> CaptchaService {
        CaptchaService {
            policy,
            under_attack: AtomicBool::new(false),
            seed,
            next_id: AtomicU64::new(1),
            issued: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            redeemed: (0..REDEEMED_SHARDS)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            min_valid_id: AtomicU64::new(1),
            redeemed_cap: MAX_REDEEMED_PER_SHARD,
        }
    }

    /// Shrinks the per-shard redeemed-id retention (tests exercise the
    /// retirement path without a million issuances).
    #[cfg(test)]
    fn with_redeemed_cap(mut self, cap: usize) -> CaptchaService {
        self.redeemed_cap = cap;
        self
    }

    /// Marks `id` redeemed; `false` if it already was (a replay).
    fn redeem_once(&self, id: u64) -> bool {
        let shard = &self.redeemed[(id % REDEEMED_SHARDS as u64) as usize];
        let mut set = match shard.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !set.insert(id) {
            return false;
        }
        if set.len() > self.redeemed_cap {
            if let Some(&min) = set.iter().min() {
                set.remove(&min);
                // The evicted id is retired, not forgotten: everything
                // at or below it stops verifying entirely.
                self.min_valid_id.fetch_max(min + 1, Ordering::Relaxed);
            }
        }
        true
    }

    /// Sets the attack flag consulted by
    /// [`ServingPolicy::MandatoryUnderAttack`]. Callable while traffic is
    /// in flight — flipping it never blocks request handling.
    pub fn set_under_attack(&self, yes: bool) {
        self.under_attack.store(yes, Ordering::Release);
    }

    /// Whether a challenge should be offered to a session that has not
    /// seen one yet.
    pub fn should_offer(&self) -> bool {
        match self.policy {
            ServingPolicy::OptionalWithIncentive => true,
            ServingPolicy::MandatoryUnderAttack => self.under_attack.load(Ordering::Acquire),
            ServingPolicy::Disabled => false,
        }
    }

    /// Whether solving is compulsory to proceed (vs. opt-in).
    pub fn is_mandatory(&self) -> bool {
        matches!(self.policy, ServingPolicy::MandatoryUnderAttack)
            && self.under_attack.load(Ordering::Acquire)
    }

    /// Whether this service can issue challenges at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self.policy, ServingPolicy::Disabled)
    }

    /// Issues a challenge: an atomic id draw plus a pure derivation.
    pub fn issue(&self) -> Challenge {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.issued.fetch_add(1, Ordering::Relaxed);
        Challenge::derive(self.seed, id, DEFAULT_DIFFICULTY)
    }

    /// Checks an answer against the challenge `id` derives to, without
    /// touching the pass/fail counters or consuming anything.
    /// Never-issued ids (at or past the counter) are rejected outright.
    pub fn check(&self, id: u64, answer: &str) -> bool {
        if !self.in_issued_range(id) {
            return false;
        }
        Challenge::derive(self.seed, id, DEFAULT_DIFFICULTY).check(answer)
    }

    /// Verifies an answer with strict one-attempt-per-id semantics: the
    /// id is consumed by the attempt itself, right or wrong — exactly
    /// what the old issue table did by removing the entry before
    /// checking. The single-owner harness semantics; the gateway's
    /// keyed flows use [`CaptchaService::verify_attempt`] /
    /// [`CaptchaService::verify_once`] instead, because strict
    /// consume-on-attempt would let anyone pre-burn the sequentially
    /// predictable ids other sessions still need. Outcomes land in the
    /// pass/fail counters.
    pub fn verify(&self, id: u64, answer: &str) -> bool {
        let ok = self.in_issued_range(id) && self.redeem_once(id) && self.check(id, answer);
        if ok {
            self.passed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Verifies an answer against the global single-use gate, consuming
    /// the id **only on success**: a wrong answer neither passes nor
    /// burns anything (so an attacker spraying garbage at predictable
    /// ids cannot invalidate challenges other sessions still hold),
    /// while the first correct submission wins the id and every replay
    /// after it fails. Grinding a fixed id costs one online call per
    /// guess against a ≥5-character random answer — the same per-guess
    /// economics as minting fresh challenges under the old table.
    /// Outcomes land in the pass/fail counters.
    pub fn verify_once(&self, id: u64, answer: &str) -> bool {
        let ok = self.check(id, answer) && self.redeem_once(id);
        if ok {
            self.passed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// One attempt of a multi-attempt window, for callers whose own
    /// per-session challenge record is the single-use authority: the
    /// record proves the id was issued to *this* caller and not yet
    /// answered, so a correct answer is accepted on the record's say-so
    /// — the global redeemed set is only *marked* (best-effort, to lock
    /// out record-less replays of the same pair), never consulted. That
    /// asymmetry matters: without it, anyone could deny a session its
    /// pass by pre-burning the sequentially predictable id through the
    /// record-less [`CaptchaService::verify`] path. A wrong answer does
    /// not consume the id. Outcomes land in the pass/fail counters.
    pub fn verify_attempt(&self, id: u64, answer: &str) -> bool {
        let ok = self.check(id, answer);
        if ok {
            self.redeem_once(id);
            self.passed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Consumes an id outright (no answer): callers burn a challenge
    /// whose per-session attempt budget is exhausted, so the id cannot
    /// be ground from anywhere else either.
    pub fn burn(&self, id: u64) {
        self.redeem_once(id);
    }

    fn in_issued_range(&self, id: u64) -> bool {
        id >= self.min_valid_id.load(Ordering::Relaxed) && id < self.next_id.load(Ordering::Relaxed)
    }

    /// `(issued, passed, failed)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.issued.load(Ordering::Relaxed),
            self.passed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Pass rate over answered challenges.
    pub fn pass_rate(&self) -> f64 {
        let (_, passed, failed) = self.stats();
        let answered = passed + failed;
        if answered == 0 {
            0.0
        } else {
            passed as f64 / answered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_policy_always_offers() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 1);
        assert!(s.should_offer());
        assert!(!s.is_mandatory());
        assert!(s.is_enabled());
    }

    #[test]
    fn mandatory_policy_tracks_attack_state() {
        let s = CaptchaService::new(ServingPolicy::MandatoryUnderAttack, 1);
        assert!(!s.should_offer());
        s.set_under_attack(true);
        assert!(s.should_offer());
        assert!(s.is_mandatory());
    }

    #[test]
    fn disabled_never_offers() {
        let s = CaptchaService::new(ServingPolicy::Disabled, 1);
        s.set_under_attack(true);
        assert!(!s.should_offer());
        assert!(!s.is_enabled());
    }

    #[test]
    fn verify_lifecycle() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 2);
        let ch = s.issue();
        let answer = ch.answer().to_string();
        assert!(s.verify(ch.id, &answer));
        // Single-use: replaying the same correct pair fails, for this or
        // any other caller.
        assert!(!s.verify(ch.id, &answer));
        let ch2 = s.issue();
        assert!(!s.verify(ch2.id, "nope"));
        assert_eq!(s.stats(), (2, 1, 2));
        assert!((s.pass_rate() - 1.0 / 3.0).abs() < 1e-12);
        // `check` re-derives without moving counters or consuming ids.
        assert!(s.check(ch.id, &answer));
        assert_eq!(s.stats(), (2, 1, 2));
    }

    #[test]
    fn concurrent_replays_redeem_exactly_once() {
        use std::sync::Arc;
        let s = Arc::new(CaptchaService::new(ServingPolicy::OptionalWithIncentive, 5));
        let ch = s.issue();
        let answer = ch.answer().to_string();
        let winners: u32 = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let answer = answer.clone();
                std::thread::spawn(move || u32::from(s.verify(ch.id, &answer)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1, "exactly one replayer may win the redemption");
        assert_eq!(s.stats().1, 1);
    }

    #[test]
    fn never_issued_ids_are_rejected() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 3);
        // Nothing issued yet: every id is out of range, even id 1.
        assert!(!s.verify(1, "anything"));
        assert!(!s.verify(999, "anything"));
        assert!(!s.verify(0, "anything"));
        let ch = s.issue();
        // Ids at or beyond the counter still fail.
        assert!(!s.check(ch.id + 1, ch.answer()));
    }

    #[test]
    fn redeemed_set_eviction_retires_ids_instead_of_forgetting_them() {
        // Once the redeemed set overflows and evicts an old id, that id
        // must stay dead forever — eviction must never re-open a solved
        // challenge for replay.
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 6).with_redeemed_cap(4);
        let first = s.issue();
        let first_answer = first.answer().to_string();
        assert!(s.verify(first.id, &first_answer));
        // Overflow the shard holding `first.id` until it evicts it.
        let mut spilled = 0usize;
        while spilled <= 4 {
            let ch = s.issue();
            if ch.id % REDEEMED_SHARDS as u64 == first.id % REDEEMED_SHARDS as u64 {
                let answer = ch.answer().to_string();
                assert!(s.verify(ch.id, &answer));
                spilled += 1;
            }
        }
        // The evicted first id is retired: even its correct answer is
        // rejected (validity floor), not replayable.
        assert!(!s.verify(first.id, &first_answer));
        assert!(!s.check(first.id, &first_answer));
    }

    #[test]
    fn issue_is_lock_free_and_ids_stay_unique_across_threads() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let s = Arc::new(CaptchaService::new(ServingPolicy::OptionalWithIncentive, 8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || (0..500).map(|_| s.issue().id).collect::<Vec<u64>>())
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate challenge id {id}");
            }
        }
        assert_eq!(all.len(), 2000);
        // Every issued id still verifies against its derived answer.
        let some_id = *all.iter().next().unwrap();
        let ch = Challenge::derive(8, some_id, ch_difficulty());
        assert!(s.check(some_id, ch.answer()));
    }

    fn ch_difficulty() -> f64 {
        0.5
    }

    #[test]
    fn attack_flag_flips_under_concurrent_traffic() {
        use std::sync::Arc;
        let s = Arc::new(CaptchaService::new(ServingPolicy::MandatoryUnderAttack, 9));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    // Must never deadlock or tear; the value itself races
                    // by design.
                    for _ in 0..10_000 {
                        let _ = s.is_mandatory();
                    }
                })
            })
            .collect();
        for i in 0..1_000 {
            s.set_under_attack(i % 2 == 0);
        }
        for r in readers {
            r.join().unwrap();
        }
        s.set_under_attack(true);
        assert!(s.is_mandatory());
    }
}
