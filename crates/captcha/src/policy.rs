//! CAPTCHA serving strategies.

use crate::challenge::{Challenge, ChallengeGenerator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// When challenges are offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingPolicy {
    /// The paper's deployment: optional, incentivized with a bandwidth
    /// boost, offered at most once per session.
    OptionalWithIncentive,
    /// Kandula-style: served to every client while under attack
    /// (impractical for normal operation, per §5 — "human users do not
    /// want to solve a quiz every time they access a Web page").
    MandatoryUnderAttack,
    /// Never serve (control).
    Disabled,
}

/// Tracks challenge issue/verify flow and pass statistics.
#[derive(Debug)]
pub struct CaptchaService {
    generator: ChallengeGenerator,
    policy: ServingPolicy,
    under_attack: bool,
    outstanding: HashMap<u64, Challenge>,
    max_outstanding: usize,
    issued: u64,
    passed: u64,
    failed: u64,
}

impl CaptchaService {
    /// Creates a service.
    pub fn new(policy: ServingPolicy, seed: u64) -> CaptchaService {
        CaptchaService {
            generator: ChallengeGenerator::new(seed),
            policy,
            under_attack: false,
            outstanding: HashMap::new(),
            max_outstanding: 100_000,
            issued: 0,
            passed: 0,
            failed: 0,
        }
    }

    /// Sets the attack flag consulted by
    /// [`ServingPolicy::MandatoryUnderAttack`].
    pub fn set_under_attack(&mut self, yes: bool) {
        self.under_attack = yes;
    }

    /// Whether a challenge should be offered to a session that has not
    /// seen one yet.
    pub fn should_offer(&self) -> bool {
        match self.policy {
            ServingPolicy::OptionalWithIncentive => true,
            ServingPolicy::MandatoryUnderAttack => self.under_attack,
            ServingPolicy::Disabled => false,
        }
    }

    /// Whether solving is compulsory to proceed (vs. opt-in).
    pub fn is_mandatory(&self) -> bool {
        matches!(self.policy, ServingPolicy::MandatoryUnderAttack) && self.under_attack
    }

    /// Issues a challenge.
    pub fn issue(&mut self) -> Challenge {
        if self.outstanding.len() >= self.max_outstanding {
            // Drop the oldest entry (smallest id — ids are issued in
            // increasing order) to stay bounded. Deterministic, unlike
            // HashMap iteration order, which is seeded per process.
            if let Some(&k) = self.outstanding.keys().min() {
                self.outstanding.remove(&k);
            }
        }
        let ch = self.generator.issue();
        self.outstanding.insert(ch.id, ch.clone());
        self.issued += 1;
        ch
    }

    /// Verifies an answer; each challenge can be answered once.
    pub fn verify(&mut self, id: u64, answer: &str) -> bool {
        let Some(ch) = self.outstanding.remove(&id) else {
            self.failed += 1;
            return false;
        };
        let ok = ch.check(answer);
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
        ok
    }

    /// `(issued, passed, failed)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.issued, self.passed, self.failed)
    }

    /// Pass rate over answered challenges.
    pub fn pass_rate(&self) -> f64 {
        let answered = self.passed + self.failed;
        if answered == 0 {
            0.0
        } else {
            self.passed as f64 / answered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_policy_always_offers() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 1);
        assert!(s.should_offer());
        assert!(!s.is_mandatory());
    }

    #[test]
    fn mandatory_policy_tracks_attack_state() {
        let mut s = CaptchaService::new(ServingPolicy::MandatoryUnderAttack, 1);
        assert!(!s.should_offer());
        s.set_under_attack(true);
        assert!(s.should_offer());
        assert!(s.is_mandatory());
    }

    #[test]
    fn disabled_never_offers() {
        let mut s = CaptchaService::new(ServingPolicy::Disabled, 1);
        s.set_under_attack(true);
        assert!(!s.should_offer());
    }

    #[test]
    fn verify_lifecycle() {
        let mut s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 2);
        let ch = s.issue();
        let answer = ch.answer().to_string();
        assert!(s.verify(ch.id, &answer));
        // Single-use: a second answer fails.
        assert!(!s.verify(ch.id, &answer));
        let ch2 = s.issue();
        assert!(!s.verify(ch2.id, "nope"));
        assert_eq!(s.stats(), (2, 1, 2));
        assert!((s.pass_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outstanding_cap_evicts_the_oldest_challenge() {
        let mut s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 4);
        s.max_outstanding = 3;
        let first = s.issue();
        let keep: Vec<Challenge> = (0..3).map(|_| s.issue()).collect();
        // The table is at its bound and the oldest (first) was evicted:
        // answering it now fails, newer challenges still verify.
        assert_eq!(s.outstanding.len(), 3);
        let answer = first.answer().to_string();
        assert!(!s.verify(first.id, &answer));
        let answer = keep[2].answer().to_string();
        assert!(s.verify(keep[2].id, &answer));
    }

    #[test]
    fn unknown_id_fails() {
        let mut s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 3);
        assert!(!s.verify(999, "anything"));
    }
}
