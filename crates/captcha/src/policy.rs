//! CAPTCHA serving strategies.

use crate::challenge::{Challenge, ChallengeGenerator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// When challenges are offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingPolicy {
    /// The paper's deployment: optional, incentivized with a bandwidth
    /// boost, offered at most once per session.
    OptionalWithIncentive,
    /// Kandula-style: served to every client while under attack
    /// (impractical for normal operation, per §5 — "human users do not
    /// want to solve a quiz every time they access a Web page").
    MandatoryUnderAttack,
    /// Never serve (control).
    Disabled,
}

/// Challenge-issuing state shared across requests: the seeded generator
/// plus the single-use answer table. Behind one mutex because challenge
/// issue/verify is orders of magnitude rarer than request handling — the
/// hot path only reads the atomics.
#[derive(Debug)]
struct IssueTable {
    generator: ChallengeGenerator,
    outstanding: HashMap<u64, Challenge>,
    max_outstanding: usize,
}

/// Tracks challenge issue/verify flow and pass statistics.
///
/// Every method takes `&self`: the under-attack flag is atomic (it can be
/// flipped while traffic is in flight), the issue/verify table sits
/// behind a mutex, and counters are atomics — the service is
/// `Send + Sync` and shares freely across request threads.
#[derive(Debug)]
pub struct CaptchaService {
    policy: ServingPolicy,
    under_attack: AtomicBool,
    table: Mutex<IssueTable>,
    issued: AtomicU64,
    passed: AtomicU64,
    failed: AtomicU64,
}

impl CaptchaService {
    /// Creates a service.
    pub fn new(policy: ServingPolicy, seed: u64) -> CaptchaService {
        CaptchaService {
            policy,
            under_attack: AtomicBool::new(false),
            table: Mutex::new(IssueTable {
                generator: ChallengeGenerator::new(seed),
                outstanding: HashMap::new(),
                max_outstanding: 100_000,
            }),
            issued: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    fn lock_table(&self) -> std::sync::MutexGuard<'_, IssueTable> {
        match self.table.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Sets the attack flag consulted by
    /// [`ServingPolicy::MandatoryUnderAttack`]. Callable while traffic is
    /// in flight — flipping it never blocks request handling.
    pub fn set_under_attack(&self, yes: bool) {
        self.under_attack.store(yes, Ordering::Release);
    }

    /// Caps the outstanding-challenge table (operational memory bound).
    pub fn set_max_outstanding(&self, n: usize) {
        self.lock_table().max_outstanding = n;
    }

    /// Whether a challenge should be offered to a session that has not
    /// seen one yet.
    pub fn should_offer(&self) -> bool {
        match self.policy {
            ServingPolicy::OptionalWithIncentive => true,
            ServingPolicy::MandatoryUnderAttack => self.under_attack.load(Ordering::Acquire),
            ServingPolicy::Disabled => false,
        }
    }

    /// Whether solving is compulsory to proceed (vs. opt-in).
    pub fn is_mandatory(&self) -> bool {
        matches!(self.policy, ServingPolicy::MandatoryUnderAttack)
            && self.under_attack.load(Ordering::Acquire)
    }

    /// Whether this service can issue challenges at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self.policy, ServingPolicy::Disabled)
    }

    /// Issues a challenge.
    pub fn issue(&self) -> Challenge {
        let mut table = self.lock_table();
        if table.outstanding.len() >= table.max_outstanding {
            // Drop the oldest entry (smallest id — ids are issued in
            // increasing order) to stay bounded. Deterministic, unlike
            // HashMap iteration order, which is seeded per process.
            if let Some(&k) = table.outstanding.keys().min() {
                table.outstanding.remove(&k);
            }
        }
        let ch = table.generator.issue();
        table.outstanding.insert(ch.id, ch.clone());
        self.issued.fetch_add(1, Ordering::Relaxed);
        ch
    }

    /// Verifies an answer; each challenge can be answered once.
    pub fn verify(&self, id: u64, answer: &str) -> bool {
        let removed = self.lock_table().outstanding.remove(&id);
        let Some(ch) = removed else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let ok = ch.check(answer);
        if ok {
            self.passed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Challenges awaiting an answer.
    pub fn outstanding(&self) -> usize {
        self.lock_table().outstanding.len()
    }

    /// `(issued, passed, failed)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.issued.load(Ordering::Relaxed),
            self.passed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Pass rate over answered challenges.
    pub fn pass_rate(&self) -> f64 {
        let (_, passed, failed) = self.stats();
        let answered = passed + failed;
        if answered == 0 {
            0.0
        } else {
            passed as f64 / answered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_policy_always_offers() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 1);
        assert!(s.should_offer());
        assert!(!s.is_mandatory());
        assert!(s.is_enabled());
    }

    #[test]
    fn mandatory_policy_tracks_attack_state() {
        let s = CaptchaService::new(ServingPolicy::MandatoryUnderAttack, 1);
        assert!(!s.should_offer());
        s.set_under_attack(true);
        assert!(s.should_offer());
        assert!(s.is_mandatory());
    }

    #[test]
    fn disabled_never_offers() {
        let s = CaptchaService::new(ServingPolicy::Disabled, 1);
        s.set_under_attack(true);
        assert!(!s.should_offer());
        assert!(!s.is_enabled());
    }

    #[test]
    fn verify_lifecycle() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 2);
        let ch = s.issue();
        let answer = ch.answer().to_string();
        assert!(s.verify(ch.id, &answer));
        // Single-use: a second answer fails.
        assert!(!s.verify(ch.id, &answer));
        let ch2 = s.issue();
        assert!(!s.verify(ch2.id, "nope"));
        assert_eq!(s.stats(), (2, 1, 2));
        assert!((s.pass_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outstanding_cap_evicts_the_oldest_challenge() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 4);
        s.set_max_outstanding(3);
        let first = s.issue();
        let keep: Vec<Challenge> = (0..3).map(|_| s.issue()).collect();
        // The table is at its bound and the oldest (first) was evicted:
        // answering it now fails, newer challenges still verify.
        assert_eq!(s.outstanding(), 3);
        let answer = first.answer().to_string();
        assert!(!s.verify(first.id, &answer));
        let answer = keep[2].answer().to_string();
        assert!(s.verify(keep[2].id, &answer));
    }

    #[test]
    fn unknown_id_fails() {
        let s = CaptchaService::new(ServingPolicy::OptionalWithIncentive, 3);
        assert!(!s.verify(999, "anything"));
    }

    #[test]
    fn attack_flag_flips_under_concurrent_traffic() {
        use std::sync::Arc;
        let s = Arc::new(CaptchaService::new(ServingPolicy::MandatoryUnderAttack, 9));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    // Must never deadlock or tear; the value itself races
                    // by design.
                    for _ in 0..10_000 {
                        let _ = s.is_mandatory();
                    }
                })
            })
            .collect();
        for i in 0..1_000 {
            s.set_under_attack(i % 2 == 0);
        }
        for r in readers {
            r.join().unwrap();
        }
        s.set_under_attack(true);
        assert!(s.is_mandatory());
    }
}
