//! Abstract distorted-text challenges.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A single challenge: a distorted rendering of a secret answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Challenge {
    /// Unique id for correlating answers.
    pub id: u64,
    /// The "distorted image", abstracted as an obfuscated string. Humans
    /// read through the noise; naive OCR trips over it. Solvability is
    /// modelled by [`crate::oracle::SolverProfile`], not by parsing this.
    pub distorted: String,
    /// Difficulty in `[0, 1]`; raises the bar for OCR-capable robots.
    pub difficulty: f64,
    // Never serialized: a challenge travels to the client (e.g. inside a
    // gateway `Decision::Challenge`), and shipping the expected answer
    // alongside the puzzle would let any bot solve every challenge.
    #[serde(skip)]
    answer: String,
}

impl Challenge {
    /// Checks an answer (case-insensitive, as captchas.net did).
    pub fn check(&self, answer: &str) -> bool {
        answer.trim().eq_ignore_ascii_case(&self.answer)
    }

    /// The answer — exposed for the solver oracle (which *models* reading
    /// the image) and for tests. Real deployments keep this server-side;
    /// so does the simulation: agents never see it, only the oracle does.
    pub fn answer(&self) -> &str {
        &self.answer
    }
}

impl Challenge {
    /// Derives the challenge with identity `id` under `seed`, at the
    /// given difficulty — a pure function, so any holder of the seed can
    /// *re-derive* (and thereby verify) a challenge from its id alone,
    /// with no issue table anywhere. The per-challenge RNG stream is
    /// keyed by both seed and id, so ids never share content.
    pub fn derive(seed: u64, id: u64, difficulty: f64) -> Challenge {
        const ALPHABET: &[u8] = b"abcdefghjkmnpqrstuvwxyz23456789";
        let difficulty = difficulty.clamp(0.0, 1.0);
        // splitmix64-style stream separation: adjacent ids must not
        // produce correlated ChaCha streams.
        let mut stream = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        stream ^= stream >> 30;
        stream = stream.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        stream ^= stream >> 27;
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        let len = rng.gen_range(5..=7);
        let answer: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect();
        // "Distortion": interleave noise characters proportional to
        // difficulty.
        let mut distorted = String::new();
        for c in answer.chars() {
            distorted.push(c);
            if rng.gen_bool(difficulty) {
                distorted.push(match rng.gen_range(0..3) {
                    0 => '~',
                    1 => '/',
                    _ => '\\',
                });
            }
        }
        Challenge {
            id,
            distorted,
            difficulty,
            answer,
        }
    }
}

/// Deterministic challenge generator: a counter over
/// [`Challenge::derive`]. Single-owner convenience for harnesses; the
/// shared [`crate::CaptchaService`] derives challenges from an atomic
/// counter instead.
#[derive(Debug)]
pub struct ChallengeGenerator {
    seed: u64,
    next_id: u64,
    difficulty: f64,
}

impl ChallengeGenerator {
    /// Creates a generator with default difficulty 0.5.
    pub fn new(seed: u64) -> ChallengeGenerator {
        ChallengeGenerator {
            seed,
            next_id: 1,
            difficulty: 0.5,
        }
    }

    /// Overrides the difficulty of subsequently issued challenges.
    pub fn set_difficulty(&mut self, difficulty: f64) {
        self.difficulty = difficulty.clamp(0.0, 1.0);
    }

    /// Issues a fresh challenge.
    pub fn issue(&mut self) -> Challenge {
        let id = self.next_id;
        self.next_id += 1;
        Challenge::derive(self.seed, id, self.difficulty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_verify_case_insensitively() {
        let mut g = ChallengeGenerator::new(1);
        let ch = g.issue();
        assert!(ch.check(ch.answer()));
        assert!(ch.check(&ch.answer().to_uppercase()));
        assert!(ch.check(&format!("  {}  ", ch.answer())));
        assert!(!ch.check("wrong"));
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut g = ChallengeGenerator::new(2);
        let a = g.issue();
        let b = g.issue();
        assert!(b.id > a.id);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut g1 = ChallengeGenerator::new(3);
        let mut g2 = ChallengeGenerator::new(3);
        for _ in 0..10 {
            assert_eq!(g1.issue(), g2.issue());
        }
    }

    #[test]
    fn derive_reconstructs_an_issued_challenge_from_its_id() {
        // The stateless-verification property: seed + id fully determine
        // the challenge, so a verifier needs no record of issuance.
        let mut g = ChallengeGenerator::new(9);
        for _ in 0..10 {
            let ch = g.issue();
            let again = Challenge::derive(9, ch.id, ch.difficulty);
            assert_eq!(ch, again);
            assert!(again.check(ch.answer()));
        }
        // Different seeds or ids derive different answers (w.h.p.).
        let a = Challenge::derive(1, 5, 0.5);
        assert_ne!(a.answer(), Challenge::derive(2, 5, 0.5).answer());
        assert_ne!(a.answer(), Challenge::derive(1, 6, 0.5).answer());
    }

    #[test]
    fn difficulty_adds_noise() {
        let mut g = ChallengeGenerator::new(4);
        g.set_difficulty(1.0);
        let ch = g.issue();
        assert!(ch.distorted.len() >= ch.answer().len() * 2 - 1);
        g.set_difficulty(0.0);
        let ch = g.issue();
        assert_eq!(ch.distorted, ch.answer());
    }

    #[test]
    fn difficulty_is_clamped() {
        let mut g = ChallengeGenerator::new(5);
        g.set_difficulty(7.5);
        assert_eq!(g.issue().difficulty, 1.0);
        g.set_difficulty(-1.0);
        assert_eq!(g.issue().difficulty, 0.0);
    }
}
