//! The event loop: N reactor threads, every connection a small state
//! machine, one shared [`Gateway`] underneath.
//!
//! # How a request flows
//!
//! A client connection reads until [`crate::frame`] reports a complete
//! message, parses it with the wire codec, and hands it to
//! [`Gateway::handle_deferred`]. Decisions that need no origin
//! ([`PendingServe::Ready`]) serialize straight back. An allowed
//! ordinary request comes back as a [`PendingServe::AwaitingOrigin`]
//! lease: the server opens a **second non-blocking connection** to the
//! origin through the same reactor, parks the client, and only when the
//! origin's response (or its deadline) arrives does
//! [`Gateway::complete`] commit the exchange and wake the client with
//! the final bytes. No gateway lock and no event-loop stall spans the
//! fetch — one slow origin delays exactly the connections waiting on
//! *that* fetch, never their neighbors.
//!
//! # Origin connection pool
//!
//! A finished fetch whose response permits reuse (self-delimiting
//! framing, no `Connection: close`) parks its connection in a
//! per-worker idle pool instead of closing it; the next lease pops the
//! warmest parked socket and writes its request without a connect, a
//! register, or (usually) any `epoll_ctl` at all. Parked connections
//! stay registered readable so a FIN or stray byte while idle retires
//! them immediately, each carries an idle deadline on the reactor's
//! timer wheel, and takeout probes liveness with one non-blocking read
//! — a poisoned socket is never handed to a lease. Reuse still races
//! the origin's own close: a reused fetch that dies **before any
//! response byte** transparently retries exactly once on a fresh
//! connection, while a failure after the first byte takes the ordinary
//! 502/504-through-[`Gateway::complete`] path, so the session's
//! in-flight lease gauge returns to zero either way. `origin_pool: 0`
//! disables parking and restores the one-connection-per-fetch behavior
//! byte for byte.
//!
//! # Multi-reactor serving
//!
//! With `threads > 1` the server runs one full event loop per thread:
//! each worker owns its own [`Reactor`], connection slab, and
//! `SO_REUSEPORT` listener bound to the same address, so the kernel
//! shards accepts across reactors with no shared accept lock. The
//! [`Gateway`] has been `&self` + shard-parallel since PR 3 — one
//! `Arc<Gateway>` serves every reactor. The only cross-reactor state is
//! a handful of atomics: the live-connection count (the 503 cap is
//! global, not per-reactor) and the served/accepted totals that merge
//! into [`ServeReport`] and `/admin/stats`. `threads == 1` (the
//! default) takes exactly the single-threaded path this server has
//! always had: a plain listener, one reactor, no extra threads.
//!
//! # Per-request memory
//!
//! A connection slot's read buffer and write buffer live on the slot,
//! not the request: keep-alive requests reuse them, and released slots
//! return them to a per-worker pool for the next accept. A response is
//! serialized head-first straight into the slot's pooled write buffer
//! with the body appended once — the whole message leaves in one
//! `write` when the socket accepts it. Origin-side connections draw
//! from the same pool, and the streaming relay reuses per-worker
//! scratch for its decode → rewrite → chunk-encode hops. The epoll
//! interest of every descriptor is cached on its slot, so a request
//! that completes within one readiness batch re-arms nothing.
//!
//! # Streaming pages
//!
//! An origin response whose head reads `200` + `text/html` is not
//! buffered at all: the server answers the client's head immediately
//! with `Transfer-Encoding: chunked`, then pipes origin body bytes
//! through the gateway's [`PageStream`] rewriter as they arrive —
//! decode one origin chunk, rewrite it, chunk-encode it to the client.
//! Memory per streamed page is bounded by the rewriter's constant
//! hold-back plus the client's write backlog, never the page size, so a
//! multi-MB page flows through in O(chunk). Backpressure is explicit: a
//! client backlog over [`STREAM_HIGH_WATER`] parks the origin's read
//! interest until the backlog drains below [`STREAM_LOW_WATER`]. A
//! truncated origin (mid-body EOF, garbage chunk framing, stall past the
//! origin timeout) still commits its lease, and the client's stream ends
//! *without* the terminal chunk — truncation stays visible, never
//! silently reframed as a complete page.
//!
//! # Timeouts and shutdown
//!
//! Each client connection carries a read deadline (idle keep-alive
//! connections close quietly; half-sent requests answer 408) and each
//! origin fetch carries its own deadline that completes the lease with a
//! synthesized 504 — completing rather than dropping, so the session's
//! in-flight lease count comes back down and enforcement stays exact.
//! On shutdown (SIGTERM in the binary, [`ShutdownHandle`] anywhere) the
//! first reactor to notice fans the signal out through every sibling's
//! waker; each closes its listener, drops idle connections, and finishes
//! its in-flight exchanges. [`Server::run`] drains the gateway exactly
//! once, after every worker has stopped, so every observed session
//! reaches its final classification no matter which reactor carried it.

use crate::frame::{self, BodyDecoder, BodyFraming, Framing};
use crate::stats::serve_stats_json;
use botwall_gateway::{Gateway, Origin, PageStream, PendingServe};
use botwall_http::request::ClientIp;
use botwall_http::{wire, Request, Response, StatusCode};
use botwall_sessions::SimTime;
use reactor::{net, signals, Event, Interest, Reactor, Token, Waker};
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent-connection cap across every reactor; excess accepts
    /// answer 503 and close.
    pub max_connections: usize,
    /// How long a connection may sit without completing a request (idle
    /// keep-alive closes quietly, a half-sent request answers 408).
    pub read_timeout: Duration,
    /// How long an origin fetch may run before the lease completes with
    /// a synthesized 504.
    pub origin_timeout: Duration,
    /// Whether connections may carry more than one request.
    pub keep_alive: bool,
    /// The upstream origin. `None` serves the gateway's instrumentation
    /// traffic and 404s everything ordinary.
    pub origin: Option<SocketAddr>,
    /// Event-loop threads. `1` binds a plain listener and runs on the
    /// calling thread exactly as before; more bind one `SO_REUSEPORT`
    /// listener per reactor thread.
    pub threads: usize,
    /// How many idle origin connections each worker may keep parked for
    /// reuse. `0` disables pooling: every origin fetch opens (and
    /// closes) its own connection, exactly the pre-pool behavior.
    pub origin_pool: usize,
    /// How long a parked origin connection may sit unused before it is
    /// closed (armed on the reactor's timer wheel at park time).
    pub origin_pool_idle: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 256,
            read_timeout: Duration::from_secs(10),
            origin_timeout: Duration::from_secs(10),
            keep_alive: true,
            origin: None,
            threads: 1,
            origin_pool: 8,
            origin_pool_idle: Duration::from_secs(10),
        }
    }
}

/// What one [`Server::run`] did, reported after drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted across all reactors (cap rejections not
    /// included).
    pub connections: u64,
    /// HTTP requests parsed off those connections.
    pub requests: u64,
    /// Sessions flushed by the final gateway drain.
    pub drained_sessions: usize,
    /// Fresh TCP connections opened to the origin (retries included).
    pub origin_connects: u64,
    /// Origin fetches that picked up a parked pooled connection.
    pub origin_reuses: u64,
    /// Pooled fetches that died before any response byte and were
    /// transparently retried on a fresh connection.
    pub origin_retries: u64,
}

/// Counters shared by every reactor thread. The live-connection count
/// is the 503 cap's source of truth — global on purpose, so N reactors
/// can never admit more than the cap together.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    pub(crate) live: AtomicUsize,
    pub(crate) connections_total: AtomicU64,
    pub(crate) requests_total: AtomicU64,
    pub(crate) origin_connects: AtomicU64,
    pub(crate) origin_reuses: AtomicU64,
    pub(crate) origin_retries: AtomicU64,
    shutdown: AtomicBool,
}

/// Requests a running server stop: close every listener, finish
/// in-flight exchanges, drain the gateway. Cloneable and usable from
/// any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shared: Arc<SharedCounters>,
    wakers: Vec<Waker>,
    waker_fd: i32,
}

impl ShutdownHandle {
    /// Triggers the drain on every reactor.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
    }

    /// The first reactor's raw waker fd, for wiring a signal handler
    /// (see [`reactor::signals::install_term_handler`]). The woken
    /// reactor fans the shutdown out to its siblings.
    pub fn waker_fd(&self) -> i32 {
        self.waker_fd
    }
}

/// Client write backlog (bytes staged but not yet accepted by the
/// socket) above which a streaming origin's read interest is parked.
pub const STREAM_HIGH_WATER: usize = 64 * 1024;

/// Backlog below which a parked streaming origin resumes reading.
pub const STREAM_LOW_WATER: usize = 16 * 1024;

/// Recycled buffers above this capacity are dropped instead of pooled,
/// so one multi-megabyte streamed page cannot pin its backlog buffer
/// forever.
const POOL_BUF_CAP: usize = 64 * 1024;

/// Cap on pooled buffers per worker (each is at most [`POOL_BUF_CAP`]).
const POOL_MAX: usize = 128;

/// The listener's reserved token; connection slots start at 1.
const LISTENER: Token = Token(0);

fn token_of(slot: usize) -> Token {
    Token(slot + 1)
}

/// One entry in the connection slab.
enum Slot {
    Client(ClientConn),
    OriginFetch(Box<OriginConn>),
    /// A finished origin connection parked for reuse by the next fetch.
    IdleOrigin(IdleOrigin),
}

struct ClientConn {
    stream: TcpStream,
    peer: ClientIp,
    /// Read accumulation; survives keep-alive requests and is pooled
    /// across connections.
    buf: Vec<u8>,
    /// Response / stream-backlog staging (`out[pos..]` unsent); same
    /// lifetime as `buf`.
    out: Vec<u8>,
    pos: usize,
    /// The interest currently armed in epoll — writes to the reactor go
    /// through [`set_interest`], which skips the syscall when nothing
    /// changes.
    interest: Interest,
    state: ClientState,
}

enum ClientState {
    /// Accumulating the next request.
    Reading,
    /// Parked while slot `origin_slot` fetches this request's origin.
    Awaiting { origin_slot: usize },
    /// Flushing the staged response in `out`.
    Writing { close_after: bool },
    /// Relaying a chunk-encoded instrumented page as the origin streams
    /// it into `out`.
    Streaming {
        /// The fetch feeding this stream; `None` once the origin side
        /// has finished (cleanly or not) and only the flush remains.
        origin_slot: Option<usize>,
        close_after: bool,
        end: StreamEnd,
    },
}

/// How a client-side page stream ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamEnd {
    /// The origin is still producing body bytes.
    More,
    /// The terminal chunk is staged; the message is complete.
    Clean,
    /// The origin died mid-body. Flush what is staged, then close the
    /// connection without a terminal chunk so the client sees the
    /// truncation.
    Truncated,
}

struct OriginConn {
    stream: TcpStream,
    /// Serialized upstream request, then how much of it has gone out.
    out: Vec<u8>,
    pos: usize,
    buf: Vec<u8>,
    client_slot: usize,
    /// Whether to close the *client* connection after this response.
    close_after: bool,
    /// The leased exchange; always completed, never dropped.
    pending: Option<botwall_gateway::PendingOrigin>,
    connected: bool,
    /// Cached epoll interest, as on [`ClientConn`].
    interest: Interest,
    /// Riding a pooled connection. A reused fetch that dies before any
    /// response byte retries once on a fresh connection (the parked
    /// socket may have gone stale); a fresh fetch never retries.
    reused: bool,
    /// Whether any response byte has arrived — the retry window closes
    /// the moment one does.
    saw_byte: bool,
    state: OriginState,
}

/// A parked origin connection awaiting reuse. It stays registered
/// readable under its slot's token: a FIN, a reset, or an unsolicited
/// byte while idle retires it immediately, and its idle deadline on the
/// reactor's timer wheel bounds how long it may wait.
struct IdleOrigin {
    stream: TcpStream,
    /// The origin this socket is connected to; a lease for a different
    /// address never picks it up.
    addr: SocketAddr,
    /// Cached epoll interest (READABLE while parked).
    interest: Interest,
}

enum OriginState {
    /// Head not yet decided, or a non-page response buffering whole.
    Buffering,
    /// A `200 text/html` response streaming through the rewriter.
    Streaming(Box<StreamingFetch>),
}

struct StreamingFetch {
    decoder: BodyDecoder,
    page: PageStream,
    /// Origin-side wire bytes observed so far, for the byte ledger.
    wire_bytes: u64,
    /// Read interest parked by client backpressure.
    paused: bool,
    /// Whether the response head permits reusing the connection once
    /// the body ends cleanly (self-delimiting framing, no
    /// `Connection: close`).
    reusable: bool,
}

enum WriteStep {
    Done,
    Blocked,
    Dead,
}

/// Re-arms a descriptor's epoll interest only when it actually changed;
/// the cached state makes the common completes-in-one-batch request
/// cost zero `epoll_ctl` calls.
fn set_interest(
    reactor: &mut Reactor,
    stream: &TcpStream,
    token: Token,
    cached: &mut Interest,
    want: Interest,
) {
    if *cached != want && reactor.reregister(stream, token, want).is_ok() {
        *cached = want;
    }
}

/// A real TCP front door over a [`Gateway`]: accepts connections, speaks
/// HTTP/1.1 with keep-alive, and drives every decision through the
/// deferred two-phase protocol on one epoll loop per configured thread.
pub struct Server {
    workers: Vec<Worker>,
    local_addr: SocketAddr,
    gateway: Arc<Gateway>,
    shared: Arc<SharedCounters>,
    wakers: Vec<Waker>,
    waker_fd: i32,
}

/// One reactor thread's whole world: its listener, slab, buffer pool,
/// and scratch. Everything shared with sibling workers lives behind
/// `gateway` and `shared`.
struct Worker {
    reactor: Reactor,
    listener: Option<TcpListener>,
    gateway: Arc<Gateway>,
    config: ServeConfig,
    shared: Arc<SharedCounters>,
    /// Every worker's waker (own included): whichever reactor notices
    /// shutdown first fans it out so siblings drain promptly.
    peer_wakers: Vec<Waker>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Slots freed during the current event batch; merged into `free`
    /// only after the batch so a stale event cannot hit a reused slot.
    pending_free: Vec<usize>,
    /// Connections live on *this* reactor (loop-exit accounting; the
    /// cap reads the global atomic).
    clients: usize,
    draining: bool,
    /// Recycled connection buffers.
    pool: Vec<Vec<u8>>,
    /// Slots holding parked origin connections, most recently parked
    /// last — takeout pops the warmest socket first. Strictly
    /// per-worker: a connection registered with this reactor can only
    /// ever be driven by this reactor.
    idle_pool: Vec<usize>,
    /// Streaming-relay scratch: decoded origin payload, rewritten
    /// output, and the chunk-encoded client payload — reused per step.
    decode_scratch: Vec<u8>,
    rewrite_scratch: Vec<u8>,
    payload_scratch: Vec<u8>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and prepares one event loop
    /// per configured thread. With `threads == 1` this is a plain
    /// listener; otherwise each worker binds its own `SO_REUSEPORT`
    /// listener on the same address.
    pub fn bind(addr: &str, gateway: Arc<Gateway>, config: ServeConfig) -> io::Result<Server> {
        let threads = config.threads.max(1);
        let mut listeners = Vec::with_capacity(threads);
        let local_addr;
        if threads == 1 {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            local_addr = listener.local_addr()?;
            listeners.push(listener);
        } else {
            let requested: SocketAddr = addr
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
            let first = net::tcp_listen_reuseport(requested)?;
            // Port 0 resolves on the first bind; siblings share it.
            local_addr = first.local_addr()?;
            listeners.push(first);
            for _ in 1..threads {
                listeners.push(net::tcp_listen_reuseport(local_addr)?);
            }
        }
        let shared = Arc::new(SharedCounters::default());
        let mut workers = Vec::with_capacity(threads);
        let mut wakers = Vec::with_capacity(threads);
        let mut waker_fd = -1;
        for listener in listeners {
            let mut reactor = Reactor::new()?;
            reactor.register(&listener, LISTENER, Interest::READABLE)?;
            if waker_fd < 0 {
                waker_fd = reactor.waker_fd();
            }
            wakers.push(reactor.waker());
            workers.push(Worker {
                reactor,
                listener: Some(listener),
                gateway: Arc::clone(&gateway),
                config: config.clone(),
                shared: Arc::clone(&shared),
                peer_wakers: Vec::new(),
                slots: Vec::new(),
                free: Vec::new(),
                pending_free: Vec::new(),
                clients: 0,
                draining: false,
                pool: Vec::new(),
                idle_pool: Vec::new(),
                decode_scratch: Vec::new(),
                rewrite_scratch: Vec::new(),
                payload_scratch: Vec::new(),
            });
        }
        for worker in &mut workers {
            worker.peer_wakers = wakers.clone();
        }
        Ok(Server {
            workers,
            local_addr,
            gateway,
            shared,
            wakers,
            waker_fd,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            wakers: self.wakers.clone(),
            waker_fd: self.waker_fd,
        }
    }

    /// Runs every event loop until shutdown completes, then drains the
    /// gateway (once, after all reactors have stopped) and reports
    /// merged totals.
    pub fn run(&mut self) -> io::Result<ServeReport> {
        let mut workers = std::mem::take(&mut self.workers);
        let result = if workers.len() == 1 {
            workers[0].run()
        } else {
            let mut rest = workers.split_off(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .map(|worker| scope.spawn(move || worker.run()))
                    .collect();
                let mut result = workers[0].run();
                for handle in handles {
                    let joined = handle.join().expect("worker thread panicked");
                    if result.is_ok() {
                        result = joined;
                    }
                }
                result
            })
        };
        result?;
        let drained_sessions = self.gateway.drain().len();
        Ok(ServeReport {
            connections: self.shared.connections_total.load(Ordering::SeqCst),
            requests: self.shared.requests_total.load(Ordering::SeqCst),
            drained_sessions,
            origin_connects: self.shared.origin_connects.load(Ordering::SeqCst),
            origin_reuses: self.shared.origin_reuses.load(Ordering::SeqCst),
            origin_retries: self.shared.origin_retries.load(Ordering::SeqCst),
        })
    }
}

impl Worker {
    /// The wall-clock of this worker's reactor as the workspace's
    /// simulated-time type: milliseconds since the reactor started.
    fn now(&self) -> SimTime {
        SimTime::from_millis(self.reactor.now_ms())
    }

    fn run(&mut self) -> io::Result<()> {
        let result = self.run_loop();
        if result.is_err() {
            // A dying reactor must not strand its siblings mid-drain.
            self.shared.shutdown.store(true, Ordering::SeqCst);
            for waker in &self.peer_wakers {
                waker.wake();
            }
        }
        result
    }

    fn run_loop(&mut self) -> io::Result<()> {
        let mut events = Vec::new();
        loop {
            if (self.shared.shutdown.load(Ordering::SeqCst) || signals::terminated())
                && !self.draining
            {
                self.begin_drain();
            }
            if self.draining && self.clients == 0 {
                return Ok(());
            }
            self.reactor
                .poll(&mut events, Some(Duration::from_millis(500)))?;
            for event in events.iter().copied() {
                self.on_event(event);
            }
            self.free.append(&mut self.pending_free);
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        // Whichever waker the signal handler (or handle) reached first,
        // every sibling reactor must notice too.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.peer_wakers {
            waker.wake();
        }
        // Closing the listener deregisters it and refuses new work.
        self.listener = None;
        // Parked origin connections serve nobody during a drain.
        for slot in std::mem::take(&mut self.idle_pool) {
            if let Some(Slot::IdleOrigin(idle)) = self.slots.get_mut(slot).and_then(Option::take) {
                self.reactor.cancel_deadline(token_of(slot));
                self.pending_free.push(slot);
                drop(idle);
            }
        }
        // Idle keep-alive connections have nothing in flight: drop now.
        for slot in 0..self.slots.len() {
            let idle = matches!(
                &self.slots[slot],
                Some(Slot::Client(c)) if matches!(c.state, ClientState::Reading) && c.buf.is_empty()
            );
            if idle {
                let Some(Slot::Client(c)) = self.slots[slot].take() else {
                    unreachable!("checked above");
                };
                self.release_client(slot, c);
            }
        }
    }

    fn on_event(&mut self, ev: Event) {
        if ev.token == LISTENER {
            self.accept_ready();
            return;
        }
        let slot = ev.token.0 - 1;
        // A slot freed earlier in this batch may still have queued
        // events; they are stale.
        let Some(taken) = self.slots.get_mut(slot).and_then(Option::take) else {
            return;
        };
        match taken {
            Slot::Client(c) => self.drive_client(slot, c, ev),
            Slot::OriginFetch(o) => self.drive_origin(slot, *o, ev),
            Slot::IdleOrigin(idle) => self.drop_idle(slot, idle),
        }
    }

    /// Any event on a parked origin connection retires it: readable
    /// means EOF or an unsolicited byte (either poisons reuse), closed
    /// means the peer reset, and the timer is the idle deadline.
    fn drop_idle(&mut self, slot: usize, idle: IdleOrigin) {
        self.reactor.cancel_deadline(token_of(slot));
        self.idle_pool.retain(|&parked| parked != slot);
        self.pending_free.push(slot);
        drop(idle);
    }

    /// Pops the most recently parked live connection to `addr`. Each
    /// candidate is probed with a non-blocking read: a live idle origin
    /// has nothing to say (`WouldBlock`), while EOF, an error, or an
    /// unsolicited byte retires the socket on the spot — a poisoned
    /// connection is never handed to a lease.
    fn take_pooled(&mut self, addr: SocketAddr) -> Option<(usize, TcpStream, Interest)> {
        while let Some(slot) = self.idle_pool.pop() {
            let Some(Slot::IdleOrigin(mut idle)) = self.slots.get_mut(slot).and_then(Option::take)
            else {
                continue;
            };
            self.reactor.cancel_deadline(token_of(slot));
            let mut probe = [0u8; 1];
            if idle.addr == addr
                && matches!(
                    idle.stream.read(&mut probe),
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock
                )
            {
                return Some((slot, idle.stream, idle.interest));
            }
            // Dropping the stream closes the fd (the kernel deregisters
            // it); the slot is reusable after this batch.
            self.pending_free.push(slot);
        }
        None
    }

    /// Parks a finished origin connection for reuse when `reusable` and
    /// the pool has room, or retires it. A connection with leftover
    /// buffered bytes or an unfinished request write is never parked.
    fn park_or_free(&mut self, slot: usize, o: OriginConn, reusable: bool) {
        let addr = self.config.origin;
        let park = reusable
            && !self.draining
            && self.idle_pool.len() < self.config.origin_pool
            && o.buf.is_empty()
            && o.pos == o.out.len();
        let (Some(addr), true) = (addr, park) else {
            self.pending_free.push(slot);
            self.retire_origin(o);
            return;
        };
        let OriginConn {
            stream,
            out,
            buf,
            mut interest,
            ..
        } = o;
        // Parked connections stay registered readable: a FIN or stray
        // byte while idle retires them before any lease can look.
        set_interest(
            &mut self.reactor,
            &stream,
            token_of(slot),
            &mut interest,
            Interest::READABLE,
        );
        self.reactor
            .deadline(token_of(slot), self.config.origin_pool_idle);
        self.recycle(out);
        self.recycle(buf);
        self.slots[slot] = Some(Slot::IdleOrigin(IdleOrigin {
            stream,
            addr,
            interest,
        }));
        self.idle_pool.push(slot);
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.slots.push(None);
            self.slots.len() - 1
        }
    }

    /// A pooled buffer (empty, capacity warm from its last connection).
    fn take_buf(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool unless it grew past the retention
    /// cap.
    fn recycle(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() <= POOL_BUF_CAP && self.pool.len() < POOL_MAX {
            buf.clear();
            self.pool.push(buf);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let (stream, peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Reserve against the *global* cap, backing out on
            // overshoot, so concurrent reactors can never admit more
            // than the cap together.
            if self.shared.live.fetch_add(1, Ordering::AcqRel) >= self.config.max_connections {
                self.shared.live.fetch_sub(1, Ordering::AcqRel);
                // Over the cap: a terse 503 and the door closes. The
                // write is best-effort — a client that cannot even take
                // one packet gets a bare close.
                let resp = Response::builder(StatusCode::SERVICE_UNAVAILABLE)
                    .header("Connection", "close")
                    .header("Content-Length", "0")
                    .build();
                let _ = (&stream).write(&wire::serialize_response(&resp));
                continue;
            }
            let slot = self.alloc_slot();
            if self
                .reactor
                .register(&stream, token_of(slot), Interest::READABLE)
                .is_err()
            {
                self.shared.live.fetch_sub(1, Ordering::AcqRel);
                self.free.push(slot);
                continue;
            }
            self.reactor
                .deadline(token_of(slot), self.config.read_timeout);
            let buf = self.take_buf();
            let out = self.take_buf();
            self.slots[slot] = Some(Slot::Client(ClientConn {
                stream,
                peer: client_ip(peer),
                buf,
                out,
                pos: 0,
                interest: Interest::READABLE,
                state: ClientState::Reading,
            }));
            self.clients += 1;
            self.shared
                .connections_total
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drive_client(&mut self, slot: usize, mut c: ClientConn, ev: Event) {
        if ev.timer {
            match &c.state {
                // Idle keep-alive: close quietly. Half a request: 408.
                ClientState::Reading if c.buf.is_empty() => {
                    self.release_client(slot, c);
                    return;
                }
                ClientState::Reading => {
                    self.set_response(
                        slot,
                        &mut c,
                        Response::empty(StatusCode::REQUEST_TIMEOUT),
                        true,
                    );
                    if self.pump(slot, &mut c, false) {
                        self.slots[slot] = Some(Slot::Client(c));
                    } else {
                        self.release_client(slot, c);
                    }
                    return;
                }
                // A write that outlives the read timeout is a stuck
                // client; the origin deadline covers `Awaiting`. The
                // streaming deadline refreshes on every flushed byte, so
                // firing here means the client stopped draining.
                ClientState::Writing { .. } | ClientState::Streaming { .. } => {
                    self.release_client(slot, c);
                    return;
                }
                ClientState::Awaiting { .. } => {
                    self.slots[slot] = Some(Slot::Client(c));
                    return;
                }
            }
        }
        let mut eof = false;
        if matches!(c.state, ClientState::Reading) && (ev.readable || ev.closed) {
            eof = read_available(&mut c.stream, &mut c.buf);
        } else if ev.closed {
            // Peer hung up while parked or mid-write: nothing sensible
            // left to send them.
            self.release_client(slot, c);
            return;
        }
        if self.pump(slot, &mut c, eof) {
            self.slots[slot] = Some(Slot::Client(c));
            self.maybe_resume_origin(slot);
        } else {
            self.release_client(slot, c);
        }
    }

    /// Advances a client's state machine until it blocks. Returns
    /// `false` when the connection is finished (caller releases it).
    fn pump(&mut self, slot: usize, c: &mut ClientConn, eof: bool) -> bool {
        loop {
            match &mut c.state {
                ClientState::Reading => match frame::measure(&c.buf) {
                    Ok(Framing::Complete { len }) => {
                        self.shared.requests_total.fetch_add(1, Ordering::Relaxed);
                        // A chunked request body is reframed as identity
                        // before the codec sees it (identity requests
                        // parse in place, zero-copy); garbage chunk
                        // framing answers 400 like any parse failure.
                        let parsed = frame::dechunk(&c.buf[..len])
                            .and_then(|raw| wire::parse_request(&raw, c.peer));
                        c.buf.drain(..len);
                        match parsed {
                            Ok(request) => self.dispatch(slot, c, request),
                            Err(_) => self.set_response(
                                slot,
                                c,
                                Response::empty(StatusCode::BAD_REQUEST),
                                true,
                            ),
                        }
                    }
                    Ok(_) => {
                        if eof {
                            return false;
                        }
                        // Waiting for more bytes: refresh the idle clock.
                        self.reactor
                            .deadline(token_of(slot), self.config.read_timeout);
                        set_interest(
                            &mut self.reactor,
                            &c.stream,
                            token_of(slot),
                            &mut c.interest,
                            Interest::READABLE,
                        );
                        return true;
                    }
                    Err(_) => {
                        self.set_response(slot, c, Response::empty(StatusCode::BAD_REQUEST), true)
                    }
                },
                ClientState::Awaiting { .. } => return !eof,
                ClientState::Writing { close_after } => {
                    let close_after = *close_after;
                    match write_available(&mut c.stream, &c.out, &mut c.pos) {
                        WriteStep::Done => {
                            if close_after || self.draining {
                                return false;
                            }
                            c.out.clear();
                            c.pos = 0;
                            c.state = ClientState::Reading;
                            // Loop again: pipelined bytes may already
                            // hold the next complete request.
                        }
                        WriteStep::Blocked => {
                            self.reactor
                                .deadline(token_of(slot), self.config.read_timeout);
                            set_interest(
                                &mut self.reactor,
                                &c.stream,
                                token_of(slot),
                                &mut c.interest,
                                Interest::WRITABLE,
                            );
                            return true;
                        }
                        WriteStep::Dead => return false,
                    }
                }
                ClientState::Streaming {
                    origin_slot,
                    close_after,
                    end,
                } => {
                    let fetch_done = origin_slot.is_none();
                    let close_after = *close_after;
                    let end = *end;
                    match write_available(&mut c.stream, &c.out, &mut c.pos) {
                        WriteStep::Done => match end {
                            StreamEnd::More => {
                                // Fully drained; the origin will push
                                // more. Reclaim the backlog buffer and
                                // park until then (hang-up detection
                                // only).
                                c.out.clear();
                                c.pos = 0;
                                self.reactor
                                    .deadline(token_of(slot), self.config.read_timeout);
                                set_interest(
                                    &mut self.reactor,
                                    &c.stream,
                                    token_of(slot),
                                    &mut c.interest,
                                    Interest::NONE,
                                );
                                return true;
                            }
                            StreamEnd::Truncated => return false,
                            StreamEnd::Clean => {
                                debug_assert!(fetch_done, "clean end frees the fetch");
                                if close_after || self.draining {
                                    return false;
                                }
                                c.out.clear();
                                c.pos = 0;
                                c.state = ClientState::Reading;
                                // Loop: pipelined bytes may already hold
                                // the next complete request.
                            }
                        },
                        WriteStep::Blocked => {
                            self.reactor
                                .deadline(token_of(slot), self.config.read_timeout);
                            set_interest(
                                &mut self.reactor,
                                &c.stream,
                                token_of(slot),
                                &mut c.interest,
                                Interest::WRITABLE,
                            );
                            return true;
                        }
                        WriteStep::Dead => return false,
                    }
                }
            }
        }
    }

    /// Routes one parsed request: the admin plane answers directly,
    /// everything else goes through the gateway's two-phase protocol.
    fn dispatch(&mut self, slot: usize, c: &mut ClientConn, request: Request) {
        let close_after = !(self.config.keep_alive && !self.draining && wants_keep_alive(&request));
        if request.uri().path() == "/admin/stats" {
            let body = serve_stats_json(&self.gateway.stats(), &self.shared, self.config.threads);
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "application/json")
                .body_bytes(body.into_bytes())
                .build();
            self.set_response(slot, c, resp, close_after);
            return;
        }
        let now = self.now();
        match self.gateway.handle_deferred(&request, now) {
            PendingServe::Ready(decision) => {
                self.set_response(slot, c, decision.into_response(), close_after)
            }
            PendingServe::AwaitingOrigin(pending) => {
                let Some(origin_addr) = self.config.origin else {
                    let d = self.gateway.complete(pending, Origin::NotFound, now);
                    self.set_response(slot, c, d.into_response(), close_after);
                    return;
                };
                let mut out = self.take_buf();
                wire::serialize_request_into(pending.request(), &mut out);
                // Pool first: a parked connection skips connect and
                // register outright, and its cached READABLE interest is
                // already what a written-out fetch wants — the common
                // warm takeout costs one `write` and nothing else.
                let mut reused = false;
                let mut prepared = None;
                if let Some((pooled_slot, mut stream, mut interest)) = self.take_pooled(origin_addr)
                {
                    self.shared.origin_reuses.fetch_add(1, Ordering::Relaxed);
                    let mut pos = 0;
                    match write_available(&mut stream, &out, &mut pos) {
                        WriteStep::Dead => {
                            // The parked socket died between the probe
                            // and the write: retry on a fresh connection
                            // right here — this *is* the one retry, so
                            // the fresh fetch below is not `reused`.
                            self.shared.origin_retries.fetch_add(1, Ordering::Relaxed);
                            self.pending_free.push(pooled_slot);
                            drop(stream);
                        }
                        step => {
                            let want = match step {
                                WriteStep::Done => Interest::READABLE,
                                _ => Interest::WRITABLE,
                            };
                            set_interest(
                                &mut self.reactor,
                                &stream,
                                token_of(pooled_slot),
                                &mut interest,
                                want,
                            );
                            reused = true;
                            prepared = Some((pooled_slot, stream, pos, interest, true));
                        }
                    }
                }
                let (origin_slot, stream, pos, interest, connected) = match prepared {
                    Some(prepared) => prepared,
                    None => {
                        let mut stream = match net::tcp_connect_nonblocking(origin_addr) {
                            Ok(stream) => stream,
                            Err(_) => {
                                // Origin unreachable before the fetch
                                // even started: complete (never drop)
                                // the lease so enforcement's in-flight
                                // count stays exact.
                                self.recycle(out);
                                let gone =
                                    Origin::Response(Response::empty(StatusCode::BAD_GATEWAY));
                                let d = self.gateway.complete(pending, gone, now);
                                self.set_response(slot, c, d.into_response(), close_after);
                                return;
                            }
                        };
                        // A loopback connect often completes
                        // synchronously; writing optimistically skips a
                        // whole poll round trip when it did. A
                        // still-connecting socket just reports
                        // `WouldBlock` and takes the writable-event path.
                        let mut pos = 0;
                        let (connected, interest) =
                            match write_available(&mut stream, &out, &mut pos) {
                                WriteStep::Done => (true, Interest::READABLE),
                                WriteStep::Blocked if pos > 0 => (true, Interest::WRITABLE),
                                _ => (false, Interest::WRITABLE),
                            };
                        let origin_slot = self.alloc_slot();
                        if self
                            .reactor
                            .register(&stream, token_of(origin_slot), interest)
                            .is_err()
                        {
                            self.free.push(origin_slot);
                            self.recycle(out);
                            let gone = Origin::Response(Response::empty(StatusCode::BAD_GATEWAY));
                            let d = self.gateway.complete(pending, gone, now);
                            self.set_response(slot, c, d.into_response(), close_after);
                            return;
                        }
                        self.shared.origin_connects.fetch_add(1, Ordering::Relaxed);
                        (origin_slot, stream, pos, interest, connected)
                    }
                };
                self.reactor
                    .deadline(token_of(origin_slot), self.config.origin_timeout);
                let buf = self.take_buf();
                self.slots[origin_slot] = Some(Slot::OriginFetch(Box::new(OriginConn {
                    stream,
                    out,
                    pos,
                    buf,
                    client_slot: slot,
                    close_after,
                    pending: Some(pending),
                    connected,
                    interest,
                    reused,
                    saw_byte: false,
                    state: OriginState::Buffering,
                })));
                // Park the client: no read interest (level-triggered
                // epoll would spin on pipelined bytes), hang-up only.
                c.state = ClientState::Awaiting { origin_slot };
                self.reactor.cancel_deadline(token_of(slot));
                set_interest(
                    &mut self.reactor,
                    &c.stream,
                    token_of(slot),
                    &mut c.interest,
                    Interest::NONE,
                );
            }
        }
    }

    /// Stages a response for writing: framing made explicit so
    /// keep-alive clients always know where the message ends, head
    /// serialized straight into the slot's pooled write buffer with the
    /// body behind it — one buffer, one `write` when the socket takes
    /// it whole.
    fn set_response(
        &mut self,
        slot: usize,
        c: &mut ClientConn,
        mut response: Response,
        close_after: bool,
    ) {
        if !response.headers().contains("Content-Length") {
            let len = response.body().len();
            response
                .headers_mut()
                .set("Content-Length", len.to_string());
        }
        response.headers_mut().set(
            "Connection",
            if close_after { "close" } else { "keep-alive" },
        );
        c.out.clear();
        c.pos = 0;
        wire::serialize_response_into(&response, &mut c.out);
        c.state = ClientState::Writing { close_after };
        self.reactor
            .deadline(token_of(slot), self.config.read_timeout);
    }

    /// Tears a client down, aborting (by *completing*) any origin fetch
    /// it was waiting on or streaming from.
    fn release_client(&mut self, slot: usize, c: ClientConn) {
        let fetch_slot = match c.state {
            ClientState::Awaiting { origin_slot } => Some(origin_slot),
            ClientState::Streaming { origin_slot, .. } => origin_slot,
            _ => None,
        };
        if let Some(origin_slot) = fetch_slot {
            // The fetch slot can be empty when the origin itself is
            // mid-drive in this same batch; it notices the dead client
            // when its delivery bounces and abandons itself.
            if let Some(Slot::OriginFetch(o)) =
                self.slots.get_mut(origin_slot).and_then(Option::take)
            {
                self.abandon_origin(origin_slot, *o);
            }
        }
        self.reactor.cancel_deadline(token_of(slot));
        self.pending_free.push(slot);
        self.clients -= 1;
        self.shared.live.fetch_sub(1, Ordering::AcqRel);
        let ClientConn { buf, out, .. } = c;
        // Dropping the stream closed the fd; the kernel deregistered it.
        self.recycle(buf);
        self.recycle(out);
    }

    /// The client is gone but the lease must still be committed —
    /// dropping it would leak the session's in-flight count until
    /// rollover. A synthesized 504 records "the exchange died on us".
    fn abandon_origin(&mut self, origin_slot: usize, mut o: OriginConn) {
        self.reactor.cancel_deadline(token_of(origin_slot));
        self.pending_free.push(origin_slot);
        if let Some(pending) = o.pending.take() {
            let gone = Origin::Response(Response::empty(StatusCode::GATEWAY_TIMEOUT));
            let now = self.now();
            let _ = self.gateway.complete(pending, gone, now);
        }
        let OriginConn { buf, out, .. } = o;
        self.recycle(buf);
        self.recycle(out);
    }

    fn drive_origin(&mut self, slot: usize, mut o: OriginConn, ev: Event) {
        if ev.timer {
            match o.state {
                // A stalled stream cannot 504 — the head already went
                // out. Commit the lease, truncate the client.
                OriginState::Streaming(_) => self.truncate_stream(slot, o),
                // Origin took too long: the lease completes with a 504
                // and the client learns the truth.
                OriginState::Buffering => self.finish_origin(
                    slot,
                    o,
                    Origin::Response(Response::empty(StatusCode::GATEWAY_TIMEOUT)),
                    false,
                ),
            }
            return;
        }
        if !o.connected {
            match o.stream.take_error() {
                Ok(None) => o.connected = true,
                _ => {
                    self.finish_origin(
                        slot,
                        o,
                        Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                        false,
                    );
                    return;
                }
            }
        }
        if o.pos < o.out.len() && (ev.writable || ev.closed) {
            match write_available(&mut o.stream, &o.out, &mut o.pos) {
                WriteStep::Done => {
                    set_interest(
                        &mut self.reactor,
                        &o.stream,
                        token_of(slot),
                        &mut o.interest,
                        Interest::READABLE,
                    );
                }
                WriteStep::Blocked => {}
                WriteStep::Dead => {
                    // A pooled connection may have died while parked; a
                    // write that fails before any response byte retries
                    // once on a fresh socket.
                    if o.reused && !o.saw_byte {
                        self.retry_origin(slot, o);
                    } else {
                        self.finish_origin(
                            slot,
                            o,
                            Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                            false,
                        );
                    }
                    return;
                }
            }
        }
        let mut eof = false;
        let before = o.buf.len();
        if ev.readable || ev.closed {
            eof = read_available(&mut o.stream, &mut o.buf);
        }
        if o.buf.len() > before {
            o.saw_byte = true;
        }
        if let OriginState::Streaming(fetch) = &mut o.state {
            fetch.wire_bytes += (o.buf.len() - before) as u64;
            self.origin_stream_step(slot, o, eof);
        } else {
            self.origin_buffer_step(slot, o, eof);
        }
    }

    /// A reused fetch died before the origin said anything: swap in a
    /// fresh connection under the same slot and replay the request.
    /// Runs at most once per fetch — the replacement is not `reused`,
    /// so a second failure takes the ordinary 502 path.
    fn retry_origin(&mut self, slot: usize, mut o: OriginConn) {
        self.shared.origin_retries.fetch_add(1, Ordering::Relaxed);
        let addr = self
            .config
            .origin
            .expect("a fetch exists only with an origin configured");
        let mut stream = match net::tcp_connect_nonblocking(addr) {
            Ok(stream) => stream,
            Err(_) => {
                self.finish_origin(
                    slot,
                    o,
                    Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                    false,
                );
                return;
            }
        };
        o.pos = 0;
        o.buf.clear();
        let (connected, interest) = match write_available(&mut stream, &o.out, &mut o.pos) {
            WriteStep::Done => (true, Interest::READABLE),
            WriteStep::Blocked if o.pos > 0 => (true, Interest::WRITABLE),
            _ => (false, Interest::WRITABLE),
        };
        // Dropping the dead socket closes it (the kernel deregisters);
        // the fresh one takes over the same token.
        drop(std::mem::replace(&mut o.stream, stream));
        if self
            .reactor
            .register(&o.stream, token_of(slot), interest)
            .is_err()
        {
            self.finish_origin(
                slot,
                o,
                Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                false,
            );
            return;
        }
        self.shared.origin_connects.fetch_add(1, Ordering::Relaxed);
        o.interest = interest;
        o.connected = connected;
        o.reused = false;
        o.saw_byte = false;
        self.reactor
            .deadline(token_of(slot), self.config.origin_timeout);
        self.slots[slot] = Some(Slot::OriginFetch(Box::new(o)));
    }

    /// An origin fetch whose response head is not yet decided (or is a
    /// non-page response buffering whole).
    fn origin_buffer_step(&mut self, slot: usize, o: OriginConn, eof: bool) {
        // A reused connection the origin closed without a single
        // response byte was stale in the pool: retry once, fresh.
        if eof && o.reused && !o.saw_byte && o.buf.is_empty() {
            self.retry_origin(slot, o);
            return;
        }
        // A `200 text/html` head upgrades to the streaming path the
        // moment it is complete — the body is never buffered.
        let head = match frame::response_head(&o.buf) {
            Ok(head) => head,
            Err(_) => {
                self.finish_origin(
                    slot,
                    o,
                    Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                    false,
                );
                return;
            }
        };
        if let Some(head) = &head {
            if head.status == 200 && head.content_type.as_deref() == Some("text/html") {
                let head = head.clone();
                self.begin_stream(slot, o, head, eof);
                return;
            }
        }
        match frame::measure(&o.buf) {
            Ok(Framing::Complete { len }) => {
                // Reuse eligibility comes from the head: self-delimited
                // framing, no `Connection: close`, and nothing buffered
                // past the message's end.
                let reusable = head.as_ref().is_some_and(reuse_allowed) && o.buf.len() == len;
                let origin = classify_origin(&o.buf[..len]);
                self.finish_origin(slot, o, origin, reusable);
            }
            Ok(_) if eof => {
                // Close-delimited response (no Content-Length): the
                // connection's end is the frame's end.
                let origin = if o.buf.is_empty() {
                    Origin::Response(Response::empty(StatusCode::BAD_GATEWAY))
                } else {
                    classify_origin(&o.buf)
                };
                self.finish_origin(slot, o, origin, false);
            }
            Ok(_) => {
                self.slots[slot] = Some(Slot::OriginFetch(Box::new(o)));
            }
            Err(_) => {
                self.finish_origin(
                    slot,
                    o,
                    Origin::Response(Response::empty(StatusCode::BAD_GATEWAY)),
                    false,
                );
            }
        }
    }

    /// Upgrades a fetch to the streaming path: lease the rewriter,
    /// answer the parked client's head with chunked framing, and run the
    /// first stream step over whatever body bytes arrived with the head.
    fn begin_stream(
        &mut self,
        slot: usize,
        mut o: OriginConn,
        head: frame::ResponseHead,
        eof: bool,
    ) {
        let now = self.now();
        let page = {
            let pending = o.pending.as_ref().expect("lease pending until finish");
            self.gateway.begin_page_stream(pending, now)
        };
        let decoder = BodyDecoder::new(head.framing);
        let reusable = reuse_allowed(&head);
        o.buf.drain(..head.len);
        let wire_bytes = (head.len + o.buf.len()) as u64;
        o.state = OriginState::Streaming(Box::new(StreamingFetch {
            decoder,
            page,
            wire_bytes,
            paused: false,
            reusable,
        }));
        let Some(Slot::Client(mut c)) = self.slots.get_mut(o.client_slot).and_then(Option::take)
        else {
            // The client died earlier in this batch; the lease still
            // commits on the abandon path.
            self.abandon_origin(slot, o);
            return;
        };
        c.out.clear();
        c.pos = 0;
        streaming_head(o.close_after, &mut c.out);
        c.state = ClientState::Streaming {
            origin_slot: Some(slot),
            close_after: o.close_after,
            end: StreamEnd::More,
        };
        self.reactor
            .deadline(token_of(o.client_slot), self.config.read_timeout);
        set_interest(
            &mut self.reactor,
            &c.stream,
            token_of(o.client_slot),
            &mut c.interest,
            Interest::WRITABLE,
        );
        self.slots[o.client_slot] = Some(Slot::Client(c));
        self.origin_stream_step(slot, o, eof);
    }

    /// One step of an active stream: decode what arrived, rewrite it,
    /// chunk-encode it to the client, and settle the fetch's fate
    /// (finished, truncated, or waiting for more). All three hops run
    /// through per-worker scratch buffers — nothing allocates per step.
    fn origin_stream_step(&mut self, slot: usize, mut o: OriginConn, eof: bool) {
        let OriginState::Streaming(fetch) = &mut o.state else {
            unreachable!("caller checked the state");
        };
        self.decode_scratch.clear();
        let done = match fetch.decoder.push(&mut o.buf, &mut self.decode_scratch) {
            Ok(done) => done,
            Err(_) => {
                // Garbage chunk framing mid-stream.
                self.truncate_stream(slot, o);
                return;
            }
        };
        self.rewrite_scratch.clear();
        fetch
            .page
            .write(&self.decode_scratch, &mut self.rewrite_scratch);
        let mut payload = std::mem::take(&mut self.payload_scratch);
        payload.clear();
        chunk_encode(&self.rewrite_scratch, &mut payload);
        if done || (eof && fetch.decoder.eof_ok()) {
            // Clean end of body: flush the rewriter's tail, commit the
            // lease, and stage the terminal chunk.
            let OriginState::Streaming(fetch) =
                std::mem::replace(&mut o.state, OriginState::Buffering)
            else {
                unreachable!("matched above");
            };
            let pending = o.pending.take().expect("finish runs once per fetch");
            // The rewritten bytes are already chunk-encoded into
            // `payload`; the rewrite scratch is free to hold the tail.
            self.rewrite_scratch.clear();
            let now = self.now();
            let _served = self.gateway.finish_page_stream(
                pending,
                fetch.page,
                &mut self.rewrite_scratch,
                fetch.wire_bytes,
                now,
            );
            chunk_encode(&self.rewrite_scratch, &mut payload);
            payload.extend_from_slice(b"0\r\n\r\n");
            self.reactor.cancel_deadline(token_of(slot));
            let client_slot = o.client_slot;
            // A stream that ended by EOF closed its connection; one
            // that ended by framing with a reuse-friendly head parks.
            let reusable = fetch.reusable && !eof;
            self.park_or_free(slot, o, reusable);
            self.deliver_stream(client_slot, &payload, StreamEnd::Clean);
            self.payload_scratch = payload;
            return;
        }
        if eof {
            // The origin closed mid-body: truncation, not completion.
            self.truncate_stream_with(slot, o, payload);
            return;
        }
        let client_slot = o.client_slot;
        let delivered = self.deliver_stream(client_slot, &payload, StreamEnd::More);
        self.payload_scratch = payload;
        let Some(backlog) = delivered else {
            // Client gone mid-stream: commit the lease, drop the fetch.
            self.abandon_origin(slot, o);
            return;
        };
        // Progress was made: refresh the stall deadline, then apply
        // backpressure against the client's unsent backlog.
        self.reactor
            .deadline(token_of(slot), self.config.origin_timeout);
        let OriginState::Streaming(fetch) = &mut o.state else {
            unreachable!("state unchanged on the waiting path");
        };
        if backlog > STREAM_HIGH_WATER && !fetch.paused {
            fetch.paused = true;
            set_interest(
                &mut self.reactor,
                &o.stream,
                token_of(slot),
                &mut o.interest,
                Interest::NONE,
            );
        } else if fetch.paused && backlog < STREAM_LOW_WATER {
            fetch.paused = false;
            set_interest(
                &mut self.reactor,
                &o.stream,
                token_of(slot),
                &mut o.interest,
                Interest::READABLE,
            );
        }
        self.slots[slot] = Some(Slot::OriginFetch(Box::new(o)));
    }

    /// Drops a finished origin connection, returning its buffers to the
    /// pool.
    fn retire_origin(&mut self, o: OriginConn) {
        let OriginConn { buf, out, .. } = o;
        self.recycle(buf);
        self.recycle(out);
    }

    /// Appends `payload` to a streaming client's backlog, records how
    /// the stream ends, and pumps the write. Returns the remaining
    /// backlog in bytes, or `None` when the client is gone.
    fn deliver_stream(
        &mut self,
        client_slot: usize,
        payload: &[u8],
        new_end: StreamEnd,
    ) -> Option<usize> {
        let Some(Slot::Client(mut c)) = self.slots.get_mut(client_slot).and_then(Option::take)
        else {
            return None;
        };
        let ClientState::Streaming {
            origin_slot, end, ..
        } = &mut c.state
        else {
            // Only reachable if the client rotated states underneath the
            // fetch, which the protocol never does; keep it intact.
            self.slots[client_slot] = Some(Slot::Client(c));
            return None;
        };
        *end = new_end;
        if new_end != StreamEnd::More {
            *origin_slot = None;
        }
        c.out.extend_from_slice(payload);
        if self.pump(client_slot, &mut c, false) {
            let backlog = match &c.state {
                ClientState::Streaming { .. } => c.out.len() - c.pos,
                _ => 0,
            };
            self.slots[client_slot] = Some(Slot::Client(c));
            Some(backlog)
        } else {
            self.release_client(client_slot, c);
            None
        }
    }

    /// The origin died mid-stream (stall, reset, garbage framing, EOF
    /// inside a chunk). The lease still commits — dropping it would leak
    /// the session's in-flight count — and the client's stream ends
    /// without a terminal chunk so the truncation stays visible.
    fn truncate_stream(&mut self, slot: usize, o: OriginConn) {
        self.truncate_stream_with(slot, o, Vec::new());
    }

    fn truncate_stream_with(&mut self, slot: usize, mut o: OriginConn, mut payload: Vec<u8>) {
        self.reactor.cancel_deadline(token_of(slot));
        self.pending_free.push(slot);
        let client_slot = o.client_slot;
        if let (Some(pending), OriginState::Streaming(fetch)) = (
            o.pending.take(),
            std::mem::replace(&mut o.state, OriginState::Buffering),
        ) {
            let mut tail = Vec::new();
            let now = self.now();
            let _ = self.gateway.finish_page_stream(
                pending,
                fetch.page,
                &mut tail,
                fetch.wire_bytes,
                now,
            );
            chunk_encode(&tail, &mut payload);
        }
        self.retire_origin(o);
        self.deliver_stream(client_slot, &payload, StreamEnd::Truncated);
    }

    /// After a client write drained some backlog, resume a paused
    /// streaming origin once below the low-water mark.
    fn maybe_resume_origin(&mut self, client_slot: usize) {
        let Some(Some(Slot::Client(c))) = self.slots.get(client_slot) else {
            return;
        };
        let ClientState::Streaming {
            origin_slot: Some(origin_slot),
            ..
        } = &c.state
        else {
            return;
        };
        let origin_slot = *origin_slot;
        if c.out.len() - c.pos >= STREAM_LOW_WATER {
            return;
        }
        let Some(Some(Slot::OriginFetch(o))) = self.slots.get_mut(origin_slot) else {
            return;
        };
        let OriginState::Streaming(fetch) = &mut o.state else {
            return;
        };
        if fetch.paused {
            fetch.paused = false;
            let _ = self
                .reactor
                .reregister(&o.stream, token_of(origin_slot), Interest::READABLE);
            o.interest = Interest::READABLE;
        }
    }

    /// Commits an origin outcome into the leased exchange and wakes the
    /// waiting client with the final decision. `reusable` parks the
    /// origin connection for the next fetch when the pool has room.
    fn finish_origin(
        &mut self,
        origin_slot: usize,
        mut o: OriginConn,
        origin: Origin,
        reusable: bool,
    ) {
        self.reactor.cancel_deadline(token_of(origin_slot));
        let pending = o.pending.take().expect("finish runs once per fetch");
        let now = self.now();
        let decision = self.gateway.complete(pending, origin, now);
        let client_slot = o.client_slot;
        let close_after = o.close_after;
        self.park_or_free(origin_slot, o, reusable);
        // The client may have died in this same batch; its teardown
        // already completed the lease path above, so just drop the
        // decision if nobody is waiting.
        let Some(Slot::Client(mut c)) = self.slots.get_mut(client_slot).and_then(Option::take)
        else {
            return;
        };
        self.set_response(client_slot, &mut c, decision.into_response(), close_after);
        if self.pump(client_slot, &mut c, false) {
            self.slots[client_slot] = Some(Slot::Client(c));
        } else {
            self.release_client(client_slot, c);
        }
    }
}

/// Maps a peer socket address to the session-key [`ClientIp`]. IPv4
/// octets pack big-endian; loopback tests therefore share one IP and
/// distinguish sessions by User-Agent (exactly the paper's session key).
fn client_ip(peer: SocketAddr) -> ClientIp {
    match peer.ip() {
        IpAddr::V4(v4) => ClientIp::new(u32::from(v4)),
        IpAddr::V6(v6) => {
            let octets = v6.octets();
            ClientIp::new(u32::from_be_bytes([
                octets[12], octets[13], octets[14], octets[15],
            ]))
        }
    }
}

/// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
/// opts in with `Connection: keep-alive`.
fn wants_keep_alive(request: &Request) -> bool {
    let connection = request
        .headers()
        .get("Connection")
        .map(|v| v.to_ascii_lowercase());
    if request.version() == "HTTP/1.1" {
        connection.as_deref() != Some("close")
    } else {
        connection.as_deref() == Some("keep-alive")
    }
}

/// Reads until the socket would block. Returns `true` at EOF/reset.
fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>) -> bool {
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Writes until done or the socket would block.
fn write_available(stream: &mut TcpStream, out: &[u8], pos: &mut usize) -> WriteStep {
    while *pos < out.len() {
        match stream.write(&out[*pos..]) {
            Ok(0) => return WriteStep::Dead,
            Ok(n) => *pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return WriteStep::Blocked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return WriteStep::Dead,
        }
    }
    WriteStep::Done
}

/// Appends the client-side response head for a streamed page: the
/// buffered path's headers (200, `text/html`, uncacheable) with chunked
/// framing in place of a `Content-Length`. The head is invariant per
/// connection mode, so it lives as wire bytes — nothing builds or
/// serializes a `Response` on the streaming hot path.
fn streaming_head(close_after: bool, out: &mut Vec<u8>) {
    const HEAD: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\
        Cache-Control: no-cache, no-store\r\nTransfer-Encoding: chunked\r\nConnection: ";
    out.extend_from_slice(HEAD);
    out.extend_from_slice(if close_after {
        b"close\r\n\r\n".as_slice()
    } else {
        b"keep-alive\r\n\r\n".as_slice()
    });
}

/// Chunk-encodes `data` onto `out` in slices of at most
/// [`STREAM_HIGH_WATER`] bytes (a fast origin can land far more than
/// that in one event batch; unbounded chunk declarations are hostile to
/// any receiver with a per-chunk sanity cap). Empty data encodes
/// nothing — a zero-size chunk would terminate the stream early.
fn chunk_encode(data: &[u8], out: &mut Vec<u8>) {
    for piece in data.chunks(STREAM_HIGH_WATER) {
        let mut hex = [0u8; 16];
        out.extend_from_slice(format_hex(piece.len(), &mut hex));
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(piece);
        out.extend_from_slice(b"\r\n");
    }
}

/// Renders a lowercase hex length without allocating.
fn format_hex(mut n: usize, buf: &mut [u8; 16]) -> &[u8] {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b"0123456789abcdef"[n & 0xf];
        n >>= 4;
        if n == 0 {
            break;
        }
    }
    &buf[i..]
}

/// Whether a response head permits reusing its connection for another
/// request: the body must be self-delimiting (`Content-Length` or
/// chunked — a close-delimited body *is* the connection's end) and the
/// origin must not have announced `Connection: close`.
fn reuse_allowed(head: &frame::ResponseHead) -> bool {
    !head.connection_close && !matches!(head.framing, BodyFraming::Close)
}

/// Maps a parsed origin response to the gateway's [`Origin`] taxonomy:
/// HTML pages get instrumented, 404s map to `NotFound`, everything else
/// passes through untouched (chunked bodies reframed as identity first —
/// the wire codec only parses `Content-Length`).
fn classify_origin(raw: &[u8]) -> Origin {
    let Ok(identity) = frame::dechunk(raw) else {
        return Origin::Response(Response::empty(StatusCode::BAD_GATEWAY));
    };
    let Ok(response) = wire::parse_response(&identity) else {
        return Origin::Response(Response::empty(StatusCode::BAD_GATEWAY));
    };
    if response.status() == StatusCode::NOT_FOUND {
        return Origin::NotFound;
    }
    let is_html = response
        .content_type()
        .is_some_and(|ct| ct.starts_with("text/html"));
    if response.status() == StatusCode::OK && is_html {
        match String::from_utf8(response.body().to_vec()) {
            Ok(html) => Origin::Page(html),
            Err(_) => Origin::Response(response),
        }
    } else {
        Origin::Response(response)
    }
}
