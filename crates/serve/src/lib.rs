//! A real TCP front door for the botwall gateway.
//!
//! Everything below the gateway in this workspace is deterministic and
//! in-process; this crate is where it meets actual sockets. One epoll
//! event loop per configured thread (the offline [`reactor`] shim —
//! standing in for tokio/mio) accepts connections, speaks enough
//! HTTP/1.1 (incremental parsing, `Content-Length` framing, keep-alive),
//! and drives every request through the gateway's **deferred two-phase
//! protocol**: requests the gate can answer alone finish immediately,
//! and requests that need origin content park the client while the
//! origin is fetched over a second non-blocking connection on the same
//! loop — the concurrency story PR 5 built the lease/commit split for,
//! now exercised over real file descriptors. With `threads > 1` the
//! reactors share the listen address through `SO_REUSEPORT` (the kernel
//! shards accepts) and one `Arc<Gateway>`; the connection cap and the
//! served totals stay global through a handful of shared atomics, and
//! the default of 1 thread behaves exactly as the single-threaded
//! server always has.
//!
//! * [`Server`] — the event loop; [`ServeConfig`] tunes the connection
//!   cap, timeouts, keep-alive, and the upstream origin address.
//! * [`MockOrigin`] — a deliberately blocking loopback origin with
//!   per-path latency, for tests/benches/the binary's `--mock-origin`.
//! * [`client`] — a minimal blocking HTTP client used by the end-to-end
//!   tests, the loopback bench, and the binary's `--smoke` mode.
//! * `/admin/stats` — the operator plane: one JSON snapshot of
//!   [`botwall_gateway::GatewayStats`], rendered by [`stats::stats_json`].
//!
//! The `botwall-serve` binary wires a SIGTERM/SIGINT handler to the
//! reactor's waker, so a signal turns into a clean drain: stop
//! accepting, finish in-flight exchanges, flush every session through
//! the classifier, exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod mock;
pub mod server;
pub mod stats;

pub use mock::{MockOrigin, MockOriginHandle};
pub use server::{ServeConfig, ServeReport, Server, ShutdownHandle};
