//! A loopback origin for tests, benches, and the `--mock-origin` mode
//! of the binary: a deliberately *blocking*, thread-per-connection HTTP
//! server with configurable per-path latency. Its slowness is the test
//! fixture — the front door must keep other connections moving while
//! this origin sits on one.

use crate::frame::{measure, Framing};
use botwall_http::request::ClientIp;
use botwall_http::{wire, Response, StatusCode};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Builder for a mock origin server.
#[derive(Debug, Default)]
pub struct MockOrigin {
    pages: HashMap<String, String>,
    latency: HashMap<String, Duration>,
    /// Pages served with `Transfer-Encoding: chunked`, in slices of the
    /// mapped size.
    chunked: HashMap<String, usize>,
    /// Chunked pages whose connection drops after roughly this many
    /// body bytes, without ever sending the terminal chunk.
    truncate_after: HashMap<String, usize>,
}

impl MockOrigin {
    /// An origin with no pages (every path 404s).
    pub fn new() -> MockOrigin {
        MockOrigin::default()
    }

    /// Registers an HTML page at `path`.
    pub fn page(mut self, path: impl Into<String>, html: impl Into<String>) -> MockOrigin {
        self.pages.insert(path.into(), html.into());
        self
    }

    /// Delays every response for `path` by `by` — the "one slow CGI
    /// script" of the paper's deployment, in miniature.
    pub fn latency(mut self, path: impl Into<String>, by: Duration) -> MockOrigin {
        self.latency.insert(path.into(), by);
        self
    }

    /// Serves `path`'s page with `Transfer-Encoding: chunked`, split
    /// into chunks of `chunk_size` bytes.
    pub fn chunked(mut self, path: impl Into<String>, chunk_size: usize) -> MockOrigin {
        self.chunked.insert(path.into(), chunk_size.max(1));
        self
    }

    /// Makes a [`chunked`](MockOrigin::chunked) page die mid-stream:
    /// the connection drops after about `bytes` body bytes, terminal
    /// chunk never sent.
    pub fn truncate_after(mut self, path: impl Into<String>, bytes: usize) -> MockOrigin {
        self.truncate_after.insert(path.into(), bytes);
        self
    }

    /// Binds a loopback port and starts serving on background threads.
    pub fn start(self) -> std::io::Result<MockOriginHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let hits = Arc::new(AtomicU64::new(0));
        // A connection only needs its own thread when a response can
        // *block* (configured latency). A latency-free origin answers
        // inline on the accept thread — each response is microseconds,
        // and skipping a thread spawn per fetch keeps the fixture's
        // fixed cost out of every front-door measurement.
        let spawn_per_conn = !self.latency.is_empty();
        let shared = Arc::new(self);
        let accept = {
            let stop = Arc::clone(&stop);
            let hits = Arc::clone(&hits);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    if spawn_per_conn {
                        let origin = Arc::clone(&shared);
                        let hits = Arc::clone(&hits);
                        std::thread::spawn(move || origin.serve_conn(conn, &hits));
                    } else {
                        shared.serve_conn(conn, &hits);
                    }
                }
            })
        };
        Ok(MockOriginHandle {
            addr,
            stop,
            hits,
            accept: Some(accept),
        })
    }

    /// One connection: read one request, answer it, close. (The front
    /// door opens a fresh origin connection per fetch.)
    fn serve_conn(&self, mut conn: TcpStream, hits: &AtomicU64) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let frame = loop {
            match measure(&buf) {
                Ok(Framing::Complete { len }) => break len,
                Ok(_) => {}
                Err(_) => return,
            }
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        };
        let Ok(request) = wire::parse_request(&buf[..frame], ClientIp::new(0)) else {
            return;
        };
        let path = request.uri().path().to_string();
        if let Some(by) = self.latency.get(&path) {
            std::thread::sleep(*by);
        }
        hits.fetch_add(1, Ordering::SeqCst);
        let response = match self.pages.get(&path) {
            Some(html) => {
                if let Some(&size) = self.chunked.get(&path) {
                    let cut = self.truncate_after.get(&path).copied();
                    let _ = write_chunked(&mut conn, html.as_bytes(), size, cut);
                    return;
                }
                Response::builder(StatusCode::OK)
                    .header("Content-Type", "text/html")
                    .body_bytes(html.clone().into_bytes())
                    .build()
            }
            None => Response::builder(StatusCode::NOT_FOUND)
                .header("Content-Length", "0")
                .build(),
        };
        let _ = conn.write_all(&wire::serialize_response(&response));
    }
}

/// Writes `body` as a chunked `200 text/html` response in `size`-byte
/// chunks. With `truncate_after`, the connection drops once that many
/// body bytes have gone out — no terminal chunk, a mid-stream death.
fn write_chunked(
    conn: &mut TcpStream,
    body: &[u8],
    size: usize,
    truncate_after: Option<usize>,
) -> std::io::Result<()> {
    conn.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n",
    )?;
    let mut sent = 0usize;
    for piece in body.chunks(size) {
        if truncate_after.is_some_and(|cap| sent >= cap) {
            return Ok(());
        }
        conn.write_all(format!("{:x}\r\n", piece.len()).as_bytes())?;
        conn.write_all(piece)?;
        conn.write_all(b"\r\n")?;
        sent += piece.len();
    }
    if truncate_after.is_none() {
        conn.write_all(b"0\r\n\r\n")?;
    }
    Ok(())
}

/// A running mock origin. Dropping it stops the accept loop.
#[derive(Debug)]
pub struct MockOriginHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hits: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
}

impl MockOriginHandle {
    /// The loopback address the origin listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (after any configured latency).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }
}

impl Drop for MockOriginHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::{Method, Request};
    use std::time::Instant;

    fn get(addr: SocketAddr, path: &str) -> Response {
        let request = Request::builder(Method::Get, path).build().unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&wire::serialize_request(&request)).unwrap();
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).unwrap();
        wire::parse_response(&raw).unwrap()
    }

    #[test]
    fn serves_pages_and_404s() {
        let origin = MockOrigin::new()
            .page("/index.html", "<html><body>hi</body></html>")
            .start()
            .unwrap();
        let ok = get(origin.addr(), "/index.html");
        assert_eq!(ok.status(), StatusCode::OK);
        assert_eq!(ok.body(), b"<html><body>hi</body></html>");
        assert_eq!(
            get(origin.addr(), "/missing").status(),
            StatusCode::NOT_FOUND
        );
        assert_eq!(origin.hits(), 2);
    }

    #[test]
    fn latency_delays_only_the_configured_path() {
        let origin = MockOrigin::new()
            .page("/slow.html", "<html></html>")
            .page("/fast.html", "<html></html>")
            .latency("/slow.html", Duration::from_millis(300))
            .start()
            .unwrap();
        let t = Instant::now();
        get(origin.addr(), "/fast.html");
        assert!(t.elapsed() < Duration::from_millis(200));
        let t = Instant::now();
        get(origin.addr(), "/slow.html");
        assert!(t.elapsed() >= Duration::from_millis(300));
    }
}
