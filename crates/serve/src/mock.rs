//! A loopback origin for tests, benches, and the `--mock-origin` mode
//! of the binary: a deliberately *blocking*, thread-per-connection HTTP
//! server with configurable per-path latency. Its slowness is the test
//! fixture — the front door must keep other connections moving while
//! this origin sits on one.

use crate::frame::{measure, Framing};
use botwall_http::request::ClientIp;
use botwall_http::{wire, Response, StatusCode};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Builder for a mock origin server.
#[derive(Debug, Default)]
pub struct MockOrigin {
    pages: HashMap<String, String>,
    latency: HashMap<String, Duration>,
    /// Pages served with `Transfer-Encoding: chunked`, in slices of the
    /// mapped size.
    chunked: HashMap<String, usize>,
    /// Chunked pages whose connection drops after roughly this many
    /// body bytes, without ever sending the terminal chunk.
    truncate_after: HashMap<String, usize>,
    /// Serve multiple requests per connection (loop until EOF or a
    /// `Connection: close` request).
    keep_alive: bool,
    /// In keep-alive mode, answer at most this many requests per
    /// connection; the next request on that connection closes it
    /// *without* a response — the deterministic stale-pool race.
    close_after: Option<usize>,
    /// In keep-alive mode, write these bytes 50ms after each response
    /// and close — unsolicited garbage on a connection a pool may have
    /// parked.
    garbage_after: Option<Vec<u8>>,
}

impl MockOrigin {
    /// An origin with no pages (every path 404s).
    pub fn new() -> MockOrigin {
        MockOrigin::default()
    }

    /// Registers an HTML page at `path`.
    pub fn page(mut self, path: impl Into<String>, html: impl Into<String>) -> MockOrigin {
        self.pages.insert(path.into(), html.into());
        self
    }

    /// Delays every response for `path` by `by` — the "one slow CGI
    /// script" of the paper's deployment, in miniature.
    pub fn latency(mut self, path: impl Into<String>, by: Duration) -> MockOrigin {
        self.latency.insert(path.into(), by);
        self
    }

    /// Serves `path`'s page with `Transfer-Encoding: chunked`, split
    /// into chunks of `chunk_size` bytes.
    pub fn chunked(mut self, path: impl Into<String>, chunk_size: usize) -> MockOrigin {
        self.chunked.insert(path.into(), chunk_size.max(1));
        self
    }

    /// Makes a [`chunked`](MockOrigin::chunked) page die mid-stream:
    /// the connection drops after about `bytes` body bytes, terminal
    /// chunk never sent.
    pub fn truncate_after(mut self, path: impl Into<String>, bytes: usize) -> MockOrigin {
        self.truncate_after.insert(path.into(), bytes);
        self
    }

    /// Serves multiple requests per connection: read → respond in a
    /// loop until EOF or a request bearing `Connection: close`. (The
    /// default remains one response per connection, matching an origin
    /// that refuses reuse.)
    pub fn keep_alive(mut self) -> MockOrigin {
        self.keep_alive = true;
        self
    }

    /// With [`keep_alive`](MockOrigin::keep_alive): each connection
    /// answers at most `n` requests; when one more request arrives on
    /// it, the connection closes without responding. A pool that parked
    /// the connection sees a socket that probes live but dies the
    /// moment it is reused — the stale race, on demand.
    pub fn close_after_responses(mut self, n: usize) -> MockOrigin {
        self.close_after = Some(n);
        self
    }

    /// With [`keep_alive`](MockOrigin::keep_alive): 50ms after each
    /// response the connection emits `bytes` unsolicited and closes.
    /// The delay lets a pool park the connection first, so the garbage
    /// lands on a parked socket.
    pub fn garbage_after(mut self, bytes: impl Into<Vec<u8>>) -> MockOrigin {
        self.garbage_after = Some(bytes.into());
        self
    }

    /// Binds a loopback port and starts serving on background threads.
    pub fn start(self) -> std::io::Result<MockOriginHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let hits = Arc::new(AtomicU64::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        // A connection only needs its own thread when serving it can
        // *block*: configured latency, or a keep-alive connection that
        // sits in its read loop between requests (serving that inline
        // would wedge the accept loop). A latency-free one-shot origin
        // answers inline on the accept thread — each response is
        // microseconds, and skipping a thread spawn per fetch keeps the
        // fixture's fixed cost out of every front-door measurement.
        let spawn_per_conn = !self.latency.is_empty() || self.keep_alive;
        let shared = Arc::new(self);
        let accept = {
            let stop = Arc::clone(&stop);
            let hits = Arc::clone(&hits);
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    if spawn_per_conn {
                        let origin = Arc::clone(&shared);
                        let hits = Arc::clone(&hits);
                        let live = Arc::clone(&live);
                        std::thread::spawn(move || origin.serve_conn(conn, &hits, &live));
                    } else {
                        shared.serve_conn(conn, &hits, &live);
                    }
                }
            })
        };
        Ok(MockOriginHandle {
            addr,
            stop,
            hits,
            live,
            accept: Some(accept),
        })
    }

    /// One connection: read a request, answer it, and either loop
    /// (keep-alive mode) or close. (The pool-less front door opens a
    /// fresh origin connection per fetch.)
    fn serve_conn(&self, mut conn: TcpStream, hits: &AtomicU64, live: &AtomicUsize) {
        live.fetch_add(1, Ordering::SeqCst);
        let _open = Gauge(live);
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut served = 0usize;
        loop {
            let frame = loop {
                match measure(&buf) {
                    Ok(Framing::Complete { len }) => break len,
                    Ok(_) => {}
                    Err(_) => return,
                }
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
            };
            // Past the per-connection response budget, the *arrival* of
            // the next request closes the connection unanswered — so a
            // parked pooled socket looks perfectly healthy right up to
            // the moment something reuses it.
            if self.close_after.is_some_and(|cap| served >= cap) {
                return;
            }
            let Ok(request) = wire::parse_request(&buf[..frame], ClientIp::new(0)) else {
                return;
            };
            buf.drain(..frame);
            let path = request.uri().path().to_string();
            if let Some(by) = self.latency.get(&path) {
                std::thread::sleep(*by);
            }
            hits.fetch_add(1, Ordering::SeqCst);
            served += 1;
            let response = match self.pages.get(&path) {
                Some(html) => {
                    if let Some(&size) = self.chunked.get(&path) {
                        let cut = self.truncate_after.get(&path).copied();
                        let _ = write_chunked(&mut conn, html.as_bytes(), size, cut);
                        // Chunked pages keep their one-shot close-after
                        // semantics: the stream's end is the test.
                        return;
                    }
                    Response::builder(StatusCode::OK)
                        .header("Content-Type", "text/html")
                        .body_bytes(html.clone().into_bytes())
                        .build()
                }
                None => Response::builder(StatusCode::NOT_FOUND)
                    .header("Content-Length", "0")
                    .build(),
            };
            if conn
                .write_all(&wire::serialize_response(&response))
                .is_err()
            {
                return;
            }
            let close_requested = request
                .headers()
                .get("Connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
            if !self.keep_alive || close_requested {
                return;
            }
            if let Some(garbage) = &self.garbage_after {
                // Give the peer time to park the connection first.
                std::thread::sleep(Duration::from_millis(50));
                let _ = conn.write_all(garbage);
                return;
            }
        }
    }
}

/// Decrements a gauge when dropped, however `serve_conn` returns.
struct Gauge<'a>(&'a AtomicUsize);

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Writes `body` as a chunked `200 text/html` response in `size`-byte
/// chunks. With `truncate_after`, the connection drops once that many
/// body bytes have gone out — no terminal chunk, a mid-stream death.
fn write_chunked(
    conn: &mut TcpStream,
    body: &[u8],
    size: usize,
    truncate_after: Option<usize>,
) -> std::io::Result<()> {
    conn.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n",
    )?;
    let mut sent = 0usize;
    for piece in body.chunks(size) {
        if truncate_after.is_some_and(|cap| sent >= cap) {
            return Ok(());
        }
        conn.write_all(format!("{:x}\r\n", piece.len()).as_bytes())?;
        conn.write_all(piece)?;
        conn.write_all(b"\r\n")?;
        sent += piece.len();
    }
    if truncate_after.is_none() {
        conn.write_all(b"0\r\n\r\n")?;
    }
    Ok(())
}

/// A running mock origin. Dropping it stops the accept loop.
#[derive(Debug)]
pub struct MockOriginHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hits: Arc<AtomicU64>,
    live: Arc<AtomicUsize>,
    accept: Option<JoinHandle<()>>,
}

impl MockOriginHandle {
    /// The loopback address the origin listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (after any configured latency).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Connections currently being served — with keep-alive, exactly the
    /// connections the peer is holding open (parked pool sockets
    /// included), so tests can watch cap and idle eviction directly.
    pub fn live_conns(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }
}

impl Drop for MockOriginHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::{Method, Request};
    use std::time::Instant;

    fn get(addr: SocketAddr, path: &str) -> Response {
        let request = Request::builder(Method::Get, path).build().unwrap();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&wire::serialize_request(&request)).unwrap();
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).unwrap();
        wire::parse_response(&raw).unwrap()
    }

    #[test]
    fn serves_pages_and_404s() {
        let origin = MockOrigin::new()
            .page("/index.html", "<html><body>hi</body></html>")
            .start()
            .unwrap();
        let ok = get(origin.addr(), "/index.html");
        assert_eq!(ok.status(), StatusCode::OK);
        assert_eq!(ok.body(), b"<html><body>hi</body></html>");
        assert_eq!(
            get(origin.addr(), "/missing").status(),
            StatusCode::NOT_FOUND
        );
        assert_eq!(origin.hits(), 2);
    }

    #[test]
    fn latency_delays_only_the_configured_path() {
        let origin = MockOrigin::new()
            .page("/slow.html", "<html></html>")
            .page("/fast.html", "<html></html>")
            .latency("/slow.html", Duration::from_millis(300))
            .start()
            .unwrap();
        let t = Instant::now();
        get(origin.addr(), "/fast.html");
        assert!(t.elapsed() < Duration::from_millis(200));
        let t = Instant::now();
        get(origin.addr(), "/slow.html");
        assert!(t.elapsed() >= Duration::from_millis(300));
    }
}
