//! Incremental HTTP/1.x framing over a byte stream.
//!
//! [`botwall_http::wire`] parses complete messages; a socket delivers
//! fragments. This module answers the one question the codec cannot:
//! *how many buffered bytes make up the next complete message?* A frame
//! is the header block (terminated by the blank line) plus a body of
//! exactly `Content-Length` bytes, or — since PR 8 — a chunked
//! (`Transfer-Encoding: chunked`) body, measured chunk by chunk to its
//! terminal `0\r\n\r\n`. Responses without either are delimited by
//! connection close, which the server handles at its EOF path.
//!
//! Buffered callers use [`measure`] (whole frame) and [`dechunk`]
//! (rebuild a chunked message as identity-framed for the codec); the
//! streaming path uses [`response_head`] + [`BodyDecoder`] to consume a
//! body incrementally in O(chunk) memory.

use botwall_http::HttpError;

/// Cap on the header block of one message. A peer that streams more
/// header bytes without ever finishing the block is attacking, not slow.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on one whole message (head + declared body).
pub const MAX_FRAME_BYTES: usize = 1024 * 1024;

/// Cap on one chunk-size line (hex size + extensions + CRLF). Real
/// sizes fit in a dozen bytes; a peer streaming more is framing garbage.
pub const MAX_CHUNK_LINE: usize = 64;

/// How far the buffered prefix of a message stream has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// The header block is not complete yet; keep reading.
    Partial,
    /// The message is `len` bytes; the buffer holds at least that many.
    Complete {
        /// Total message length in bytes (head + body).
        len: usize,
    },
    /// The header block is complete but the body needs `len` total bytes.
    NeedsBody {
        /// Total message length in bytes once the body arrives.
        len: usize,
    },
}

/// How a message's body is delimited, read off its header block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// `Content-Length: n` (n = 0 when the header is absent on
    /// requests; bodyless responses too).
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
    /// No length, no chunking: the body runs to connection close
    /// (responses only).
    Close,
}

/// The parsed prefix of a response: how long the header block is and
/// everything the streaming path needs to decide what to do with the
/// body before the body exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHead {
    /// Header block length in bytes, including the blank line.
    pub len: usize,
    /// The status code.
    pub status: u16,
    /// The `Content-Type` value, if present (lowercased, parameters
    /// stripped: `text/html; charset=utf-8` reads as `text/html`).
    pub content_type: Option<String>,
    /// How the body is delimited.
    pub framing: BodyFraming,
    /// Whether the peer announced `Connection: close` (matched
    /// case-insensitively, token by token) — after this response the
    /// connection must not be reused.
    pub connection_close: bool,
}

/// Scans one header block for the three framing-relevant headers.
/// `Transfer-Encoding: chunked` wins over `Content-Length` (RFC 9112
/// §6.3); absent both, `fallback` decides (close-delimited responses,
/// zero-length requests).
fn head_framing(head: &str, fallback: BodyFraming) -> Result<BodyFraming, HttpError> {
    let mut framing = fallback;
    let mut saw_length = false;
    let mut chunked = false;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("Transfer-Encoding") {
                if value.to_ascii_lowercase().contains("chunked") {
                    chunked = true;
                }
            } else if name.eq_ignore_ascii_case("Content-Length") && !saw_length {
                let value = value.trim();
                let n = value
                    .parse()
                    .map_err(|_| HttpError::InvalidContentLength(value.to_string()))?;
                framing = BodyFraming::Length(n); // first Content-Length wins
                saw_length = true;
            }
        }
    }
    Ok(if chunked {
        BodyFraming::Chunked
    } else {
        framing
    })
}

/// Finds the end of the header block, enforcing [`MAX_HEAD_BYTES`].
/// `Ok(None)` means keep reading.
fn head_end(buf: &[u8]) -> Result<Option<usize>, HttpError> {
    match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(end) if end <= MAX_HEAD_BYTES => Ok(Some(end)),
        None if buf.len() <= MAX_HEAD_BYTES => Ok(None),
        _ => Err(HttpError::InvalidHeader(format!(
            "header block exceeds {MAX_HEAD_BYTES} bytes"
        ))),
    }
}

/// Walks the chunk framing of `buf[from..]`: `Ok(Some(end))` when the
/// terminal chunk (and its trailer section) is fully buffered, `Ok(None)`
/// when more bytes are needed, `Err` on garbage or oversize chunk
/// headers.
fn measure_chunks(buf: &[u8], from: usize) -> Result<Option<usize>, HttpError> {
    let mut pos = from;
    loop {
        let Some((size, data_start)) = chunk_size_at(buf, pos)? else {
            return Ok(None);
        };
        if size == 0 {
            // Trailer section: lines until the blank line.
            let mut t = data_start;
            loop {
                let Some(line_end) = crlf_at(buf, t, MAX_HEAD_BYTES)? else {
                    return Ok(None);
                };
                if line_end == t {
                    return Ok(Some(line_end + 2));
                }
                t = line_end + 2;
            }
        }
        let data_end = data_start
            .checked_add(size)
            .ok_or_else(|| HttpError::InvalidContentLength(format!("chunk of {size} bytes")))?;
        if buf.len() < data_end + 2 {
            return Ok(None);
        }
        if &buf[data_end..data_end + 2] != b"\r\n" {
            return Err(HttpError::InvalidHeader(
                "chunk data not terminated by CRLF".to_string(),
            ));
        }
        pos = data_end + 2;
    }
}

/// Parses the chunk-size line at `buf[pos..]`: `Ok(Some((size, data
/// start)))`, `Ok(None)` when the line is still incomplete, `Err` on a
/// garbage or oversized size line.
fn chunk_size_at(buf: &[u8], pos: usize) -> Result<Option<(usize, usize)>, HttpError> {
    let Some(line_end) = crlf_at(buf, pos, MAX_CHUNK_LINE)? else {
        return Ok(None);
    };
    let line = &buf[pos..line_end];
    // Chunk extensions (`;name=value`) are tolerated and ignored.
    let hex = line.split(|&b| b == b';').next().unwrap_or(b"");
    let hex = std::str::from_utf8(hex)
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 chunk-size line".to_string()))?
        .trim();
    if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(HttpError::InvalidHeader(format!(
            "bad chunk-size line {hex:?}"
        )));
    }
    let size = usize::from_str_radix(hex, 16)
        .map_err(|_| HttpError::InvalidContentLength(format!("chunk size {hex:?}")))?;
    if size > MAX_FRAME_BYTES {
        return Err(HttpError::InvalidContentLength(format!(
            "chunk of {size} bytes exceeds {MAX_FRAME_BYTES}"
        )));
    }
    Ok(Some((size, line_end + 2)))
}

/// Finds the CRLF ending the line at `buf[pos..]` within `cap` bytes;
/// `Ok(None)` = incomplete, `Err` = the line overran its cap.
fn crlf_at(buf: &[u8], pos: usize, cap: usize) -> Result<Option<usize>, HttpError> {
    let window = &buf[pos.min(buf.len())..];
    match window.windows(2).take(cap).position(|w| w == b"\r\n") {
        Some(p) => Ok(Some(pos + p)),
        None if window.len() <= cap => Ok(None),
        None => Err(HttpError::InvalidHeader(format!(
            "chunk or trailer line exceeds {cap} bytes"
        ))),
    }
}

/// Measures the next message in `buf`. `Err` means the peer is framing
/// garbage (oversized head, unparseable or oversized `Content-Length`,
/// garbage chunk headers) and the connection should answer 400 / close.
///
/// Chunked messages measure to their terminal chunk; an incomplete
/// chunked body reads as [`Framing::Partial`] (the total length is
/// unknowable until the terminal chunk arrives).
pub fn measure(buf: &[u8]) -> Result<Framing, HttpError> {
    let Some(head_end) = head_end(buf)? else {
        return Ok(Framing::Partial);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 header block".to_string()))?;
    let body_start = head_end + 4;
    match head_framing(head, BodyFraming::Length(0))? {
        BodyFraming::Chunked => match measure_chunks(buf, body_start)? {
            Some(end) => {
                if end > MAX_FRAME_BYTES {
                    return Err(HttpError::InvalidContentLength(format!(
                        "message of {end} bytes exceeds {MAX_FRAME_BYTES}"
                    )));
                }
                Ok(Framing::Complete { len: end })
            }
            None => {
                if buf.len() > MAX_FRAME_BYTES {
                    return Err(HttpError::InvalidContentLength(format!(
                        "chunked message exceeds {MAX_FRAME_BYTES} bytes"
                    )));
                }
                Ok(Framing::Partial)
            }
        },
        framing => {
            let content_length = match framing {
                BodyFraming::Length(n) => n,
                _ => 0,
            };
            let len = body_start + content_length;
            if len > MAX_FRAME_BYTES {
                return Err(HttpError::InvalidContentLength(format!(
                    "message of {len} bytes exceeds {MAX_FRAME_BYTES}"
                )));
            }
            if buf.len() >= len {
                Ok(Framing::Complete { len })
            } else {
                Ok(Framing::NeedsBody { len })
            }
        }
    }
}

/// Parses the header block of a response if it is fully buffered.
/// `Ok(None)` means keep reading; `Err` means the peer is framing
/// garbage. Unlike [`measure`] this never waits for the body — it is
/// the streaming path's first step, taken before any body byte exists.
pub fn response_head(buf: &[u8]) -> Result<Option<ResponseHead>, HttpError> {
    let Some(end) = head_end(buf)? else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..end])
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 header block".to_string()))?;
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| HttpError::InvalidHeader(format!("bad status line {status_line:?}")))?;
    let mut content_type = None;
    let mut connection_close = false;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("Content-Type") && content_type.is_none() {
                let value = value.split(';').next().unwrap_or("").trim();
                content_type = Some(value.to_ascii_lowercase());
            } else if name.eq_ignore_ascii_case("Connection")
                && value
                    .split(',')
                    .any(|token| token.trim().eq_ignore_ascii_case("close"))
            {
                connection_close = true;
            }
        }
    }
    // Responses without a declared length run to connection close.
    let framing = head_framing(head, BodyFraming::Close)?;
    Ok(Some(ResponseHead {
        len: end + 4,
        status,
        content_type,
        framing,
        connection_close,
    }))
}

/// Where an incremental body decode currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeState {
    /// Identity body: `remaining` bytes still owed.
    Length { remaining: usize },
    /// Close-delimited body: everything until EOF is body.
    Close,
    /// Chunked: waiting for the next chunk-size line.
    ChunkSize,
    /// Chunked: `remaining` data bytes of the current chunk still owed.
    ChunkData { remaining: usize },
    /// Chunked: the CRLF after a chunk's data.
    ChunkEnd,
    /// Chunked: trailer lines after the terminal chunk.
    Trailers,
    /// The body is complete.
    Done,
}

/// Incremental body decoder: feed it raw socket bytes, it appends the
/// decoded body and tells you when the message ends. Holds no body
/// bytes itself — memory is bounded by whatever the caller buffers.
#[derive(Debug)]
pub struct BodyDecoder {
    state: DecodeState,
}

impl BodyDecoder {
    /// Starts a decoder for a body framed as `framing`.
    pub fn new(framing: BodyFraming) -> Self {
        let state = match framing {
            BodyFraming::Length(0) => DecodeState::Done,
            BodyFraming::Length(n) => DecodeState::Length { remaining: n },
            BodyFraming::Chunked => DecodeState::ChunkSize,
            BodyFraming::Close => DecodeState::Close,
        };
        BodyDecoder { state }
    }

    /// Consumes decodable bytes from the front of `buf` (draining them)
    /// and appends the decoded body bytes to `out`. Returns `Ok(true)`
    /// once the body is complete; further bytes in `buf` belong to the
    /// next message (or are a framing error the caller may ignore at
    /// EOF). `Err` means garbage chunk framing: answer 400 / close.
    pub fn push(&mut self, buf: &mut Vec<u8>, out: &mut Vec<u8>) -> Result<bool, HttpError> {
        let mut pos = 0usize;
        let done = loop {
            match self.state {
                DecodeState::Done => break true,
                DecodeState::Close => {
                    out.extend_from_slice(&buf[pos..]);
                    pos = buf.len();
                    break false;
                }
                DecodeState::Length { remaining } => {
                    let take = remaining.min(buf.len() - pos);
                    out.extend_from_slice(&buf[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        self.state = DecodeState::Done;
                    } else {
                        self.state = DecodeState::Length {
                            remaining: remaining - take,
                        };
                        break false;
                    }
                }
                DecodeState::ChunkSize => match chunk_size_at(buf, pos)? {
                    None => break false,
                    Some((0, data_start)) => {
                        pos = data_start;
                        self.state = DecodeState::Trailers;
                    }
                    Some((size, data_start)) => {
                        pos = data_start;
                        self.state = DecodeState::ChunkData { remaining: size };
                    }
                },
                DecodeState::ChunkData { remaining } => {
                    let take = remaining.min(buf.len() - pos);
                    out.extend_from_slice(&buf[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        self.state = DecodeState::ChunkEnd;
                    } else {
                        self.state = DecodeState::ChunkData {
                            remaining: remaining - take,
                        };
                        break false;
                    }
                }
                DecodeState::ChunkEnd => {
                    if buf.len() - pos < 2 {
                        break false;
                    }
                    if &buf[pos..pos + 2] != b"\r\n" {
                        return Err(HttpError::InvalidHeader(
                            "chunk data not terminated by CRLF".to_string(),
                        ));
                    }
                    pos += 2;
                    self.state = DecodeState::ChunkSize;
                }
                DecodeState::Trailers => {
                    let Some(line_end) = crlf_at(buf, pos, MAX_HEAD_BYTES)? else {
                        break false;
                    };
                    let blank = line_end == pos;
                    pos = line_end + 2;
                    if blank {
                        self.state = DecodeState::Done;
                    }
                }
            }
        };
        buf.drain(..pos);
        Ok(done)
    }

    /// Whether connection close at this point is a clean end of body
    /// (close-delimited or already complete) rather than truncation.
    pub fn eof_ok(&self) -> bool {
        matches!(self.state, DecodeState::Close | DecodeState::Done)
    }
}

/// Rebuilds one complete chunked message as an identity-framed one the
/// codec can parse: the body is de-chunked and the header block
/// rewritten with its real `Content-Length` (any `Transfer-Encoding` /
/// stale `Content-Length` lines dropped). Non-chunked messages pass
/// through unchanged — borrowed, not copied, so the identity-framed
/// common case costs nothing. `raw` must hold exactly one complete
/// message — callers get that guarantee from [`measure`].
pub fn dechunk(raw: &[u8]) -> Result<std::borrow::Cow<'_, [u8]>, HttpError> {
    let Some(end) = head_end(raw)? else {
        return Err(HttpError::InvalidHeader(
            "dechunk on incomplete header block".to_string(),
        ));
    };
    let head = std::str::from_utf8(&raw[..end])
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 header block".to_string()))?;
    if head_framing(head, BodyFraming::Length(0))? != BodyFraming::Chunked {
        return Ok(std::borrow::Cow::Borrowed(raw));
    }
    let mut decoder = BodyDecoder::new(BodyFraming::Chunked);
    let mut rest = raw[end + 4..].to_vec();
    let mut body = Vec::new();
    if !decoder.push(&mut rest, &mut body)? {
        return Err(HttpError::TruncatedBody {
            expected: body.len() + 1,
            actual: body.len(),
        });
    }
    Ok(std::borrow::Cow::Owned(identity_message(head, &body)))
}

/// Serializes `head` (one header block, no blank line) and `body` as an
/// identity-framed message: any `Transfer-Encoding` / stale
/// `Content-Length` lines are dropped and the body's real
/// `Content-Length` written in their place.
pub(crate) fn identity_message(head: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(head.len() + 64 + body.len());
    for (i, line) in head.split("\r\n").enumerate() {
        let drop = i > 0
            && line.split_once(':').is_some_and(|(name, _)| {
                name.eq_ignore_ascii_case("Transfer-Encoding")
                    || name.eq_ignore_ascii_case("Content-Length")
            });
        if !drop {
            out.extend_from_slice(line.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_until_blank_line() {
        assert_eq!(
            measure(b"GET / HTTP/1.1\r\nHost: h\r\n"),
            Ok(Framing::Partial)
        );
        assert_eq!(measure(b""), Ok(Framing::Partial));
    }

    #[test]
    fn bodyless_message_ends_at_blank_line() {
        let raw = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        assert_eq!(measure(raw), Ok(Framing::Complete { len: raw.len() }));
    }

    #[test]
    fn content_length_extends_the_frame() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        assert_eq!(measure(raw), Ok(Framing::NeedsBody { len: raw.len() + 3 }));
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        assert_eq!(measure(full), Ok(Framing::Complete { len: full.len() }));
    }

    #[test]
    fn pipelined_second_request_is_not_swallowed() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Ok(Framing::Complete { len }) = measure(raw) else {
            panic!("first frame complete");
        };
        assert_eq!(&raw[len..], b"GET /b HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn oversized_head_is_rejected_even_unterminated() {
        let raw = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(measure(&raw).is_err());
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(
            measure(raw),
            Err(HttpError::InvalidContentLength(_))
        ));
    }

    #[test]
    fn declared_body_over_frame_cap_is_rejected() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_FRAME_BYTES
        );
        assert!(measure(raw.as_bytes()).is_err());
    }

    const CHUNKED: &[u8] = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
        4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";

    #[test]
    fn chunked_measures_to_terminal_chunk() {
        assert_eq!(
            measure(CHUNKED),
            Ok(Framing::Complete { len: CHUNKED.len() })
        );
        // Every proper prefix after the head is Partial, never an error.
        let head = CHUNKED.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        for cut in head..CHUNKED.len() {
            assert_eq!(
                measure(&CHUNKED[..cut]),
                Ok(Framing::Partial),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn chunked_wins_over_content_length() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 999\r\n\
            Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert_eq!(measure(raw), Ok(Framing::Complete { len: raw.len() }));
    }

    #[test]
    fn garbage_chunk_size_line_is_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nnope\r\n";
        assert!(matches!(measure(raw), Err(HttpError::InvalidHeader(_))));
    }

    #[test]
    fn oversized_chunk_size_line_is_rejected() {
        let mut raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&[b'1'; MAX_CHUNK_LINE + 2]);
        assert!(measure(&raw).is_err());
    }

    #[test]
    fn oversized_chunk_declaration_is_rejected() {
        let raw = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_FRAME_BYTES + 1
        );
        assert!(matches!(
            measure(raw.as_bytes()),
            Err(HttpError::InvalidContentLength(_))
        ));
    }

    #[test]
    fn chunk_data_missing_crlf_is_rejected() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX";
        assert!(matches!(measure(raw), Err(HttpError::InvalidHeader(_))));
    }

    #[test]
    fn chunk_extensions_are_tolerated() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
            4;ext=1\r\nWiki\r\n0\r\n\r\n";
        assert_eq!(measure(raw), Ok(Framing::Complete { len: raw.len() }));
        assert_eq!(
            &*dechunk(raw).unwrap(),
            b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nWiki"
        );
    }

    #[test]
    fn dechunk_rebuilds_identity_message() {
        let out = dechunk(CHUNKED).unwrap();
        assert_eq!(
            &*out,
            b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nWikipedia"
        );
        let parsed = botwall_http::wire::parse_response(&out).unwrap();
        assert_eq!(parsed.body(), b"Wikipedia");
    }

    #[test]
    fn dechunk_passes_identity_messages_through() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        assert_eq!(&*dechunk(raw).unwrap(), raw);
    }

    #[test]
    fn dechunk_preserves_trailers_as_gone() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
            2\r\nhi\r\n0\r\nX-Trailer: t\r\n\r\n";
        assert_eq!(measure(raw), Ok(Framing::Complete { len: raw.len() }));
        assert_eq!(
            &*dechunk(raw).unwrap(),
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
        );
    }

    #[test]
    fn response_head_reads_status_type_and_framing() {
        let head = response_head(CHUNKED).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.framing, BodyFraming::Chunked);
        assert_eq!(head.content_type, None);

        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: text/HTML; charset=utf-8\r\n\
            Content-Length: 3\r\n\r\nnot";
        let head = response_head(raw).unwrap().unwrap();
        assert_eq!(head.status, 404);
        assert_eq!(head.content_type.as_deref(), Some("text/html"));
        assert_eq!(head.framing, BodyFraming::Length(3));
        assert_eq!(&raw[head.len..], b"not");

        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\n";
        let head = response_head(raw).unwrap().unwrap();
        assert_eq!(head.framing, BodyFraming::Close);

        assert_eq!(response_head(b"HTTP/1.1 200 OK\r\n"), Ok(None));
        assert!(response_head(b"garbage\r\n\r\n").is_err());
    }

    #[test]
    fn response_head_reads_connection_close_case_insensitively() {
        let plain = response_head(CHUNKED).unwrap().unwrap();
        assert!(!plain.connection_close, "no Connection header");

        let raw = b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
        assert!(!response_head(raw).unwrap().unwrap().connection_close);

        for close in [
            "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 0\r\n\r\n".to_string(),
            "HTTP/1.1 200 OK\r\nCONNECTION: Close\r\nContent-Length: 0\r\n\r\n".to_string(),
            "HTTP/1.1 200 OK\r\nconnection: Keep-Alive, CLOSE\r\nContent-Length: 0\r\n\r\n"
                .to_string(),
        ] {
            let head = response_head(close.as_bytes()).unwrap().unwrap();
            assert!(head.connection_close, "{close:?} announces close");
        }
    }

    #[test]
    fn body_decoder_streams_chunked_across_arbitrary_splits() {
        let body = &CHUNKED[CHUNKED.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4..];
        for step in 1..=body.len() {
            let mut decoder = BodyDecoder::new(BodyFraming::Chunked);
            let mut buf = Vec::new();
            let mut out = Vec::new();
            let mut done = false;
            for piece in body.chunks(step) {
                assert!(!done, "decoder finished early");
                buf.extend_from_slice(piece);
                done = decoder.push(&mut buf, &mut out).unwrap();
            }
            assert!(done, "step {step} never finished");
            assert!(decoder.eof_ok());
            assert!(buf.is_empty());
            assert_eq!(out, b"Wikipedia");
        }
    }

    #[test]
    fn body_decoder_handles_length_and_close() {
        let mut decoder = BodyDecoder::new(BodyFraming::Length(4));
        let mut buf = b"abcdEXTRA".to_vec();
        let mut out = Vec::new();
        assert!(decoder.push(&mut buf, &mut out).unwrap());
        assert_eq!(out, b"abcd");
        assert_eq!(buf, b"EXTRA");

        let mut decoder = BodyDecoder::new(BodyFraming::Close);
        assert!(decoder.eof_ok());
        let mut buf = b"everything".to_vec();
        let mut out = Vec::new();
        assert!(!decoder.push(&mut buf, &mut out).unwrap());
        assert_eq!(out, b"everything");
        assert!(buf.is_empty());

        let decoder = BodyDecoder::new(BodyFraming::Chunked);
        assert!(!decoder.eof_ok(), "mid-chunked EOF is truncation");
    }
}
