//! Incremental HTTP/1.x framing over a byte stream.
//!
//! [`botwall_http::wire`] parses complete messages; a socket delivers
//! fragments. This module answers the one question the codec cannot:
//! *how many buffered bytes make up the next complete message?* A frame
//! is the header block (terminated by the blank line) plus a body of
//! exactly `Content-Length` bytes (zero when absent — chunked transfer
//! is out of scope for the whole workspace). Responses without a
//! `Content-Length` are instead delimited by connection close, which the
//! server handles at its EOF path.

use botwall_http::HttpError;

/// Cap on the header block of one message. A peer that streams more
/// header bytes without ever finishing the block is attacking, not slow.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on one whole message (head + declared body).
pub const MAX_FRAME_BYTES: usize = 1024 * 1024;

/// How far the buffered prefix of a message stream has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// The header block is not complete yet; keep reading.
    Partial,
    /// The message is `len` bytes; the buffer holds at least that many.
    Complete {
        /// Total message length in bytes (head + body).
        len: usize,
    },
    /// The header block is complete but the body needs `len` total bytes.
    NeedsBody {
        /// Total message length in bytes once the body arrives.
        len: usize,
    },
}

/// Measures the next message in `buf`. `Err` means the peer is framing
/// garbage (oversized head, unparseable or oversized `Content-Length`)
/// and the connection should answer 400 / close.
pub fn measure(buf: &[u8]) -> Result<Framing, HttpError> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::InvalidHeader(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(Framing::Partial);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::InvalidHeader(format!(
            "header block exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::InvalidHeader("non-UTF8 header block".to_string()))?;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("Content-Length") {
                let value = value.trim();
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::InvalidContentLength(value.to_string()))?;
                break; // first Content-Length wins, matching the codec
            }
        }
    }
    let len = head_end + 4 + content_length;
    if len > MAX_FRAME_BYTES {
        return Err(HttpError::InvalidContentLength(format!(
            "message of {len} bytes exceeds {MAX_FRAME_BYTES}"
        )));
    }
    if buf.len() >= len {
        Ok(Framing::Complete { len })
    } else {
        Ok(Framing::NeedsBody { len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_until_blank_line() {
        assert_eq!(
            measure(b"GET / HTTP/1.1\r\nHost: h\r\n"),
            Ok(Framing::Partial)
        );
        assert_eq!(measure(b""), Ok(Framing::Partial));
    }

    #[test]
    fn bodyless_message_ends_at_blank_line() {
        let raw = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        assert_eq!(measure(raw), Ok(Framing::Complete { len: raw.len() }));
    }

    #[test]
    fn content_length_extends_the_frame() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        assert_eq!(measure(raw), Ok(Framing::NeedsBody { len: raw.len() + 3 }));
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        assert_eq!(measure(full), Ok(Framing::Complete { len: full.len() }));
    }

    #[test]
    fn pipelined_second_request_is_not_swallowed() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Ok(Framing::Complete { len }) = measure(raw) else {
            panic!("first frame complete");
        };
        assert_eq!(&raw[len..], b"GET /b HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn oversized_head_is_rejected_even_unterminated() {
        let raw = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(measure(&raw).is_err());
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(matches!(
            measure(raw),
            Err(HttpError::InvalidContentLength(_))
        ));
    }

    #[test]
    fn declared_body_over_frame_cap_is_rejected() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_FRAME_BYTES
        );
        assert!(measure(raw.as_bytes()).is_err());
    }
}
