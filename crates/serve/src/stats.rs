//! The `/admin/stats` rendering: [`GatewayStats`] as a JSON object.
//!
//! Formatted by hand because the workspace's serde is a no-op marker
//! shim — there is no serializer to drive. The field list is pinned by a
//! test so a new `GatewayStats` column cannot silently go missing here.

use crate::server::SharedCounters;
use botwall_gateway::GatewayStats;
use std::sync::atomic::Ordering;

/// Renders the gateway snapshot plus the front door's own merged
/// counters (connections/requests/origin-pool traffic across every
/// reactor thread) as one JSON object — the `/admin/stats` body.
pub(crate) fn serve_stats_json(s: &GatewayStats, serve: &SharedCounters, threads: usize) -> String {
    let mut json = stats_json(s);
    json.pop();
    json.push_str(&format!(
        concat!(
            ",\"serve_connections\":{},\"serve_requests\":{},\"serve_live\":{},",
            "\"serve_threads\":{},\"origin_connects\":{},\"origin_reuses\":{},",
            "\"origin_retries\":{}}}"
        ),
        serve.connections_total.load(Ordering::Relaxed),
        serve.requests_total.load(Ordering::Relaxed),
        serve.live.load(Ordering::Relaxed),
        threads,
        serve.origin_connects.load(Ordering::Relaxed),
        serve.origin_reuses.load(Ordering::Relaxed),
        serve.origin_retries.load(Ordering::Relaxed),
    ));
    json
}

/// Renders a stats snapshot as one line of JSON.
pub fn stats_json(s: &GatewayStats) -> String {
    format!(
        concat!(
            "{{\"requests\":{},\"served\":{},\"throttled\":{},\"blocked\":{},",
            "\"challenged\":{},\"probe_requests\":{},\"completed_sessions\":{},",
            "\"ml_overrides\":{},\"live_sessions\":{},\"shard_count\":{},",
            "\"total_bytes\":{},\"instrumentation_bytes\":{},\"captcha_issued\":{},",
            "\"captcha_passed\":{},\"captcha_failed\":{},\"pending_challenges\":{},",
            "\"token_entries\":{}}}"
        ),
        s.requests,
        s.served,
        s.throttled,
        s.blocked,
        s.challenged,
        s.probe_requests,
        s.completed_sessions,
        s.ml_overrides,
        s.live_sessions,
        s.shard_count,
        s.total_bytes,
        s.instrumentation_bytes,
        s.captcha_issued,
        s.captcha_passed,
        s.captcha_failed,
        s.pending_challenges,
        s.token_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_gateway_stats_field() {
        let stats = GatewayStats {
            requests: 1,
            served: 2,
            throttled: 3,
            blocked: 4,
            challenged: 5,
            probe_requests: 6,
            completed_sessions: 7,
            ml_overrides: 8,
            live_sessions: 9,
            shard_count: 10,
            total_bytes: 11,
            instrumentation_bytes: 12,
            captcha_issued: 13,
            captcha_passed: 14,
            captcha_failed: 15,
            pending_challenges: 16,
            token_entries: 17,
        };
        let json = stats_json(&stats);
        // Struct-update from a fully-listed literal: adding a field to
        // GatewayStats breaks this literal, forcing the JSON to follow.
        for (field, value) in [
            ("requests", 1u64),
            ("served", 2),
            ("throttled", 3),
            ("blocked", 4),
            ("challenged", 5),
            ("probe_requests", 6),
            ("completed_sessions", 7),
            ("ml_overrides", 8),
            ("live_sessions", 9),
            ("shard_count", 10),
            ("total_bytes", 11),
            ("instrumentation_bytes", 12),
            ("captcha_issued", 13),
            ("captcha_passed", 14),
            ("captcha_failed", 15),
            ("pending_challenges", 16),
            ("token_entries", 17),
        ] {
            assert!(
                json.contains(&format!("\"{field}\":{value}")),
                "{field} missing from {json}"
            );
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn renders_every_serve_counter() {
        let serve = SharedCounters::default();
        serve.connections_total.store(21, Ordering::Relaxed);
        serve.requests_total.store(22, Ordering::Relaxed);
        serve.live.store(23, Ordering::Relaxed);
        serve.origin_connects.store(24, Ordering::Relaxed);
        serve.origin_reuses.store(25, Ordering::Relaxed);
        serve.origin_retries.store(26, Ordering::Relaxed);
        let json = serve_stats_json(&GatewayStats::default(), &serve, 4);
        for (field, value) in [
            ("serve_connections", 21u64),
            ("serve_requests", 22),
            ("serve_live", 23),
            ("serve_threads", 4),
            ("origin_connects", 24),
            ("origin_reuses", 25),
            ("origin_retries", 26),
        ] {
            assert!(
                json.contains(&format!("\"{field}\":{value}")),
                "{field} missing from {json}"
            );
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
