//! A minimal blocking HTTP/1.1 client for exercising the front door
//! from tests, benches, and the binary's smoke mode. One function per
//! concern: put a request on a stream, read one framed response back.

use crate::frame::{measure, Framing};
use botwall_http::{wire, HttpError, Request, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Writes `request` to the stream in wire format.
pub fn send_request(conn: &mut TcpStream, request: &Request) -> io::Result<()> {
    conn.write_all(&wire::serialize_request(request))
}

/// Reads exactly one response off the stream, honoring `Content-Length`
/// framing (and falling back to read-to-EOF when the server closes a
/// response without one).
pub fn read_response(conn: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let frame = loop {
        match measure(&buf) {
            Ok(Framing::Complete { len }) => break len,
            Ok(_) => {}
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
        match conn.read(&mut chunk)? {
            0 => break buf.len(), // close-delimited
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    parse(&buf[..frame])
}

/// One request/response round trip on an existing connection.
pub fn roundtrip(conn: &mut TcpStream, request: &Request) -> io::Result<Response> {
    send_request(conn, request)?;
    read_response(conn)
}

fn parse(raw: &[u8]) -> io::Result<Response> {
    if raw.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before any response bytes",
        ));
    }
    wire::parse_response(raw)
        .map_err(|e: HttpError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}
