//! A minimal blocking HTTP/1.1 client for exercising the front door
//! from tests, benches, and the binary's smoke mode. One function per
//! concern: put a request on a stream, read one framed response back.
//!
//! The reader understands all three response framings — `Content-Length`,
//! `Transfer-Encoding: chunked` (decoded incrementally, so a multi-MB
//! streamed page is not subject to the buffered-frame cap), and
//! close-delimited.

use crate::frame::{self, BodyDecoder};
use botwall_http::{wire, HttpError, Request, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Writes `request` to the stream in wire format.
pub fn send_request(conn: &mut TcpStream, request: &Request) -> io::Result<()> {
    conn.write_all(&wire::serialize_request(request))
}

/// Reads exactly one response off the stream, honoring `Content-Length`
/// framing, decoding `Transfer-Encoding: chunked` bodies chunk by chunk
/// (a half-sent chunked body at EOF is an error, not a short body), and
/// falling back to read-to-EOF when the server closes a response with
/// neither.
pub fn read_response(conn: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let head = loop {
        match frame::response_head(&buf) {
            Ok(Some(head)) => break head,
            Ok(None) => {}
            Err(e) => return Err(invalid(e)),
        }
        match conn.read(&mut chunk)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    if buf.is_empty() {
                        "connection closed before any response bytes"
                    } else {
                        "connection closed mid-header"
                    },
                ));
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head_text = String::from_utf8(buf[..head.len - 4].to_vec())
        .expect("response_head validated the block as UTF-8");
    let mut rest = buf.split_off(head.len);
    let mut decoder = BodyDecoder::new(head.framing);
    let mut body = Vec::new();
    let mut done = decoder.push(&mut rest, &mut body).map_err(invalid)?;
    while !done {
        match conn.read(&mut chunk)? {
            0 => {
                if decoder.eof_ok() {
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body (truncated chunked stream)",
                ));
            }
            n => {
                rest.extend_from_slice(&chunk[..n]);
                done = decoder.push(&mut rest, &mut body).map_err(invalid)?;
            }
        }
    }
    // The codec only parses identity framing; hand it the decoded body
    // under its real Content-Length.
    parse(&frame::identity_message(&head_text, &body))
}

/// One request/response round trip on an existing connection.
pub fn roundtrip(conn: &mut TcpStream, request: &Request) -> io::Result<Response> {
    send_request(conn, request)?;
    read_response(conn)
}

fn invalid(e: HttpError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn parse(raw: &[u8]) -> io::Result<Response> {
    wire::parse_response(raw).map_err(invalid)
}
