//! `botwall-serve`: the gateway on a real port.
//!
//! ```text
//! botwall-serve --listen 127.0.0.1:8080 --origin 127.0.0.1:9090
//! botwall-serve --mock-origin          # self-contained demo origin
//! botwall-serve --smoke                # one scripted request, then exit
//! ```
//!
//! SIGTERM/SIGINT drain cleanly: the listener closes, in-flight
//! exchanges finish, every session flushes through the classifier, and
//! the final stats print to stdout.

#![forbid(unsafe_code)]

use botwall_gateway::Gateway;
use botwall_http::{Method, Request};
use botwall_serve::{client, stats, MockOrigin, ServeConfig, Server};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    origin: Option<String>,
    mock_origin: bool,
    smoke: bool,
    seed: u64,
    max_connections: usize,
    read_timeout_ms: u64,
    origin_timeout_ms: u64,
    keep_alive: bool,
    threads: usize,
    origin_pool: usize,
    origin_pool_idle_ms: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            listen: "127.0.0.1:8080".to_string(),
            origin: None,
            mock_origin: false,
            smoke: false,
            seed: 1,
            max_connections: 256,
            read_timeout_ms: 10_000,
            origin_timeout_ms: 10_000,
            keep_alive: true,
            threads: 1,
            origin_pool: 8,
            origin_pool_idle_ms: 10_000,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--listen" => args.listen = value("--listen")?,
                "--origin" => args.origin = Some(value("--origin")?),
                "--mock-origin" => args.mock_origin = true,
                "--smoke" => {
                    args.smoke = true;
                    args.mock_origin = true;
                    args.listen = "127.0.0.1:0".to_string();
                }
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed takes an integer".to_string())?
                }
                "--max-conns" => {
                    args.max_connections = value("--max-conns")?
                        .parse()
                        .map_err(|_| "--max-conns takes an integer".to_string())?
                }
                "--read-timeout-ms" => {
                    args.read_timeout_ms = value("--read-timeout-ms")?
                        .parse()
                        .map_err(|_| "--read-timeout-ms takes milliseconds".to_string())?
                }
                "--origin-timeout-ms" => {
                    args.origin_timeout_ms = value("--origin-timeout-ms")?
                        .parse()
                        .map_err(|_| "--origin-timeout-ms takes milliseconds".to_string())?
                }
                "--no-keep-alive" => args.keep_alive = false,
                "--origin-pool" => {
                    args.origin_pool = value("--origin-pool")?
                        .parse()
                        .map_err(|_| "--origin-pool takes an integer".to_string())?
                }
                "--origin-pool-idle-ms" => {
                    args.origin_pool_idle_ms = value("--origin-pool-idle-ms")?
                        .parse()
                        .map_err(|_| "--origin-pool-idle-ms takes milliseconds".to_string())?
                }
                "--threads" => {
                    args.threads = value("--threads")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--threads takes an integer >= 1".to_string())?
                }
                "--help" | "-h" => {
                    println!(
                        "botwall-serve: HTTP front door over the botwall gateway\n\n\
                         --listen ADDR            bind address (default 127.0.0.1:8080)\n\
                         --origin ADDR            upstream origin to proxy\n\
                         --mock-origin            start a built-in demo origin\n\
                         --smoke                  one scripted request against --mock-origin, then exit\n\
                         --seed N                 gateway seed (default 1)\n\
                         --max-conns N            concurrent connection cap (default 256)\n\
                         --read-timeout-ms N      client read/idle timeout (default 10000)\n\
                         --origin-timeout-ms N    origin fetch timeout (default 10000)\n\
                         --no-keep-alive          one request per connection\n\
                         --origin-pool N          idle origin connections kept per reactor, 0 disables (default 8)\n\
                         --origin-pool-idle-ms N  how long a parked origin connection may idle (default 10000)\n\
                         --threads N              reactor threads sharing the port via SO_REUSEPORT (default 1)"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.origin.is_some() && args.mock_origin {
            return Err("--origin and --mock-origin are mutually exclusive".to_string());
        }
        Ok(args)
    }
}

const DEMO_PAGE: &str = "<html><head><title>botwall</title></head>\
<body><p>served through the botwall front door</p>\
<a href=\"/about.html\">about</a></body></html>";

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("botwall-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The mock origin (if requested) starts first so its port is known.
    let mock = if args.mock_origin {
        match MockOrigin::new()
            .page("/index.html", DEMO_PAGE)
            .page("/about.html", DEMO_PAGE)
            .keep_alive()
            .start()
        {
            Ok(handle) => Some(handle),
            Err(e) => {
                eprintln!("botwall-serve: mock origin failed to start: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let origin = match (&mock, &args.origin) {
        (Some(handle), _) => Some(handle.addr()),
        (None, Some(addr)) => match addr.parse() {
            Ok(addr) => Some(addr),
            Err(_) => {
                eprintln!("botwall-serve: --origin {addr} is not a socket address");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => None,
    };

    let config = ServeConfig {
        max_connections: args.max_connections,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        origin_timeout: Duration::from_millis(args.origin_timeout_ms),
        keep_alive: args.keep_alive,
        origin,
        threads: args.threads,
        origin_pool: args.origin_pool,
        origin_pool_idle: Duration::from_millis(args.origin_pool_idle_ms),
    };
    let gateway = Arc::new(Gateway::builder().seed(args.seed).build());
    let mut server = match Server::bind(&args.listen, Arc::clone(&gateway), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("botwall-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let handle = server.shutdown_handle();
    reactor::signals::install_term_handler(handle.waker_fd());
    eprintln!(
        "botwall-serve: listening on {} (origin: {})",
        server.local_addr(),
        origin.map_or_else(|| "none".to_string(), |a| a.to_string()),
    );

    // Smoke mode: a scripted client exercises one full round trip while
    // the server runs, then asks it to drain.
    let smoke = args.smoke.then(|| {
        let addr = server.local_addr();
        let handle = handle.clone();
        std::thread::spawn(move || -> Result<(), String> {
            let request = Request::builder(Method::Get, "/index.html")
                .header("User-Agent", "smoke/1.0")
                .header("Host", "localhost")
                .build()
                .map_err(|e| e.to_string())?;
            let mut conn = TcpStream::connect(addr).map_err(|e| e.to_string())?;
            let response = client::roundtrip(&mut conn, &request).map_err(|e| e.to_string())?;
            let outcome = if response.status().is_success() && !response.body().is_empty() {
                Ok(())
            } else {
                Err(format!("smoke request answered {}", response.status()))
            };
            handle.shutdown();
            outcome
        })
    });

    let report = match server.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("botwall-serve: event loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", stats::stats_json(&gateway.stats()));
    eprintln!(
        "botwall-serve: drained — {} connections, {} requests, {} sessions classified, \
         origin {} connects / {} reuses / {} retries",
        report.connections,
        report.requests,
        report.drained_sessions,
        report.origin_connects,
        report.origin_reuses,
        report.origin_retries,
    );
    if let Some(join) = smoke {
        match join.join() {
            Ok(Ok(())) => eprintln!("botwall-serve: smoke OK"),
            Ok(Err(e)) => {
                eprintln!("botwall-serve: smoke FAILED: {e}");
                return ExitCode::FAILURE;
            }
            Err(_) => {
                eprintln!("botwall-serve: smoke client panicked");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
