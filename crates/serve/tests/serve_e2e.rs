//! End-to-end loopback exercises of the TCP front door: a real server
//! thread, a real (deliberately blocking) mock origin, and real client
//! sockets. Sessions are keyed (ClientIp, User-Agent); every connection
//! here shares 127.0.0.1, so each test scenario gets its own User-Agent.

use botwall_core::classifier::{Reason, Verdict};
use botwall_gateway::Gateway;
use botwall_http::request::ClientIp;
use botwall_http::{Method, Request, Response, StatusCode};
use botwall_serve::{client, MockOrigin, MockOriginHandle, ServeConfig, Server, ShutdownHandle};
use botwall_sessions::SessionKey;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const PAGE: &str = "<html><head><title>t</title></head>\
<body><p>content</p><a href=\"/about.html\">about</a></body></html>";

struct Fixture {
    gateway: Arc<Gateway>,
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    server: JoinHandle<std::io::Result<botwall_serve::ServeReport>>,
    _origin: Option<MockOriginHandle>,
}

impl Fixture {
    /// Default gateway + mock origin serving `PAGE` at /index.html.
    fn standard() -> Fixture {
        let origin = MockOrigin::new().page("/index.html", PAGE).start().unwrap();
        let origin_addr = origin.addr();
        Fixture::with(
            Gateway::builder().seed(42).build(),
            |config| config.origin = Some(origin_addr),
            Some(origin),
        )
    }

    fn with(
        gateway: Gateway,
        tune: impl FnOnce(&mut ServeConfig),
        origin: Option<MockOriginHandle>,
    ) -> Fixture {
        let gateway = Arc::new(gateway);
        let mut config = ServeConfig::default();
        tune(&mut config);
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&gateway), config).unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let server = std::thread::spawn(move || server.run());
        Fixture {
            gateway,
            addr,
            shutdown,
            server,
            _origin: origin,
        }
    }

    fn finish(self) -> botwall_serve::ServeReport {
        self.shutdown.shutdown();
        self.server.join().unwrap().unwrap()
    }
}

fn request(path: &str, ua: &str) -> Request {
    Request::builder(Method::Get, path)
        .header("User-Agent", ua)
        .header("Host", "site.example")
        .build()
        .unwrap()
}

/// The session key the server derives for loopback traffic with `ua`.
fn loopback_key(ua: &str) -> SessionKey {
    let probe = Request::builder(Method::Get, "/")
        .header("User-Agent", ua)
        .client(ClientIp::new(u32::from_be_bytes([127, 0, 0, 1])))
        .build()
        .unwrap();
    SessionKey::of(&probe)
}

fn get_on(conn: &mut TcpStream, path: &str, ua: &str) -> Response {
    client::roundtrip(conn, &request(path, ua)).unwrap()
}

fn get(addr: SocketAddr, path: &str, ua: &str) -> Response {
    let mut conn = TcpStream::connect(addr).unwrap();
    get_on(&mut conn, path, ua)
}

/// Every `quote`-delimited absolute URL in `text`, reduced to its
/// path-and-query — the shapes a browser would request back. HTML
/// attributes use double quotes; the generated JS uses single quotes.
fn quoted_paths(text: &str, quote: char) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in text.split(quote).skip(1).step_by(2) {
        if let Some(rest) = chunk.split("://").nth(1) {
            if let Some(slash) = rest.find('/') {
                out.push(rest[slash..].to_string());
            }
        }
    }
    out
}

/// What a browser does on mouse movement: read the handler name out of
/// the page's `onmousemove` attribute, find that function in the
/// generated script, and return the beacon URL it fetches.
fn mouse_beacon_path(html: &str, js: &str) -> String {
    let handler = html
        .split("onmousemove=\"return ")
        .nth(1)
        .and_then(|rest| rest.split('(').next())
        .unwrap_or_else(|| panic!("page wires an onmousemove handler: {html}"));
    let body = js
        .split(&format!("function {handler}()"))
        .nth(1)
        .map(|rest| rest.split("function ").next().unwrap_or(rest))
        .unwrap_or_else(|| panic!("script defines the handler {handler}: {js}"));
    quoted_paths(body, '\'')
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("handler {handler} fetches a beacon image: {body}"))
}

fn body_str(response: &Response) -> String {
    String::from_utf8(response.body().to_vec()).unwrap()
}

#[test]
fn serves_an_instrumented_page_end_to_end() {
    let fx = Fixture::standard();
    let response = get(fx.addr, "/index.html", "Mozilla/5.0 e2e-page");
    assert_eq!(response.status(), StatusCode::OK);
    let body = body_str(&response);
    assert!(body.contains("content"), "origin HTML survives: {body}");
    assert!(
        body.contains("onmousemove"),
        "page is instrumented on the way out: {body}"
    );
    // Pages go out chunked; the test client decodes the stream and
    // reframes it as identity, so the length here is the decoded body's.
    assert_eq!(
        response.headers().content_length(),
        Some(response.body().len()),
        "client reframes the decoded stream with its real length"
    );
    let stats = fx.gateway.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.served, 1);
    assert!(stats.instrumentation_bytes > 0);
    fx.finish();
}

/// A page well past the buffered-frame cap (1 MB), chunk-fed by the
/// origin, must flow through instrumented end to end — the streaming
/// path never buffers the page whole on either hop.
#[test]
fn streams_a_multi_megabyte_page_chunked_end_to_end() {
    let paragraph = "<p>the quick brown fox jumps over the lazy dog</p>\n";
    let mut big = String::with_capacity(3 * 1024 * 1024 + 256);
    big.push_str("<html><head><title>big</title></head><body>\n");
    while big.len() < 3 * 1024 * 1024 {
        big.push_str(paragraph);
    }
    big.push_str("<p>the-last-paragraph</p></body></html>");
    let origin = MockOrigin::new()
        .page("/big.html", big.clone())
        .chunked("/big.html", 8 * 1024)
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(9).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let response = get(fx.addr, "/big.html", "Mozilla/5.0 e2e-big");
    assert_eq!(response.status(), StatusCode::OK);
    let body = body_str(&response);
    assert!(body.len() > big.len(), "instrumentation only adds bytes");
    assert!(
        body.contains("the-last-paragraph"),
        "the stream reaches the end of the page"
    );
    assert!(body.contains("onmousemove"), "the big page is instrumented");
    let stats = fx.gateway.stats();
    assert_eq!(stats.served, 1);
    assert!(stats.instrumentation_bytes > 0);
    assert_eq!(
        stats.instrumentation_bytes as usize,
        body.len() - big.len(),
        "overhead accounting matches the observed growth exactly"
    );
    fx.finish();
}

/// On the wire (below the test client's reframing) a page really is
/// `Transfer-Encoding: chunked` with a terminal chunk.
#[test]
fn pages_use_chunked_framing_on_the_wire() {
    let fx = Fixture::standard();
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    let req = Request::builder(Method::Get, "/index.html")
        .header("User-Agent", "Mozilla/5.0 e2e-wire")
        .header("Host", "site.example")
        .header("Connection", "close")
        .build()
        .unwrap();
    conn.write_all(&botwall_http::wire::serialize_request(&req))
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut conn, &mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.contains("Transfer-Encoding: chunked"),
        "wire framing is chunked: {}",
        &text[..text.len().min(300)]
    );
    assert!(
        !text.to_ascii_lowercase().contains("content-length"),
        "chunked and Content-Length never mix"
    );
    assert!(
        raw.ends_with(b"0\r\n\r\n"),
        "terminal chunk closes the stream"
    );
    fx.finish();
}

/// An origin that dies mid-body must stay visibly truncated: the client
/// never sees a terminal chunk, and the leased exchange still completes
/// so the session's in-flight count returns to zero.
#[test]
fn truncated_origin_stream_is_not_reframed_as_complete() {
    let paragraph = "<p>soon to be cut off mid sentence</p>\n";
    let mut page = String::from("<html><head></head><body>");
    while page.len() < 256 * 1024 {
        page.push_str(paragraph);
    }
    page.push_str("</body></html>");
    let origin = MockOrigin::new()
        .page("/dying.html", page)
        .chunked("/dying.html", 4 * 1024)
        .truncate_after("/dying.html", 64 * 1024)
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(10).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let ua = "Mozilla/5.0 e2e-truncated";
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    let err = client::roundtrip(&mut conn, &request("/dying.html", ua))
        .expect_err("a truncated stream must not parse as a complete response");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    // The lease completed despite the mid-stream death.
    let in_flight = fx
        .gateway
        .detector()
        .with_key_state(&loopback_key(ua), |_, state| state.in_flight)
        .expect("session exists");
    assert_eq!(in_flight, 0);
    fx.finish();
}

#[test]
fn human_beacon_flow_flips_the_verdict_over_the_wire() {
    let fx = Fixture::standard();
    let ua = "Mozilla/5.0 e2e-human";
    let body = body_str(&get(fx.addr, "/index.html", ua));

    // Act like a browser: fetch the generated script, then fire the
    // beacon the page's onmousemove handler points at.
    let js_path = quoted_paths(&body, '"')
        .into_iter()
        .find(|p| p.ends_with(".js"))
        .expect("instrumented page links a generated script");
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    let js = get_on(&mut conn, &js_path, ua);
    assert_eq!(js.status(), StatusCode::OK);
    let js_body = body_str(&js);
    assert!(js_body.contains("new Image()"), "{js_body}");

    let beacon_path = mouse_beacon_path(&body, &js_body);
    let beacon = get_on(&mut conn, &beacon_path, ua);
    assert_eq!(beacon.status(), StatusCode::OK);

    assert_eq!(
        fx.gateway.verdict(&loopback_key(ua)),
        Verdict::Human(Reason::MouseActivity),
        "mouse beacon round-trip proves the human"
    );
    assert!(fx.gateway.stats().probe_requests >= 2);
    fx.finish();
}

#[test]
fn decoy_fetch_convicts_then_throttles_then_blocks() {
    let fx = Fixture::standard();
    let ua = "scraper/1.0 e2e-robot";
    let body = body_str(&get(fx.addr, "/index.html", ua));

    // A crawler follows every link — including the invisible decoy the
    // instrumenter planted (a 20-digit nonce .html).
    let decoy = quoted_paths(&body, '"')
        .into_iter()
        .find(|p| {
            p.ends_with(".html")
                && p.trim_start_matches('/')
                    .trim_end_matches(".html")
                    .bytes()
                    .all(|b| b.is_ascii_digit())
        })
        .expect("instrumented page plants a decoy link");
    get(fx.addr, &decoy, ua);
    let key = loopback_key(ua);
    assert!(
        matches!(fx.gateway.verdict(&key), Verdict::Robot(_)),
        "decoy fetch convicts: {:?}",
        fx.gateway.verdict(&key)
    );

    // A convicted robot runs on the tight robot bucket (burst 2): a few
    // more rapid requests and the wire starts answering 429.
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    let mut throttled = 0;
    for i in 0..6 {
        let response = get_on(&mut conn, &format!("/p{i}.html"), ua);
        if response.status() == StatusCode::TOO_MANY_REQUESTS {
            throttled += 1;
        }
    }
    assert!(throttled > 0, "robot bucket must bite within six requests");
    assert_eq!(fx.gateway.stats().throttled, throttled);

    // Operator escalates to a block; the wire answers 403 from then on.
    fx.gateway
        .detector()
        .with_key_state(&key, |_, state| state.policy.block());
    let blocked = get(fx.addr, "/index.html", ua);
    assert_eq!(blocked.status(), StatusCode::FORBIDDEN);
    assert_eq!(fx.gateway.stats().blocked, 1);
    fx.finish();
}

#[test]
fn burst_past_the_rate_threshold_draws_403s() {
    let fx = Fixture::standard();
    let ua = "wget/1.0 e2e-burst";
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    let mut pushed_back = 0;
    for i in 0..80 {
        let response = get_on(&mut conn, &format!("/p{i}.html"), ua);
        match response.status() {
            // The rate threshold convicts and blocks; the robot bucket
            // may squeeze in a 429 first depending on timing.
            StatusCode::FORBIDDEN | StatusCode::TOO_MANY_REQUESTS => pushed_back += 1,
            StatusCode::NOT_FOUND | StatusCode::OK => {}
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(
        pushed_back > 0,
        "a same-second 80-request burst must draw enforcement"
    );
    let stats = fx.gateway.stats();
    assert_eq!(stats.blocked + stats.throttled, pushed_back);
    assert!(stats.blocked > 0, "the hard rate threshold blocks outright");
    assert!(
        fx.gateway.is_blocked(&loopback_key(ua)),
        "the block is durable session policy, not a one-off answer"
    );
    fx.finish();
}

#[test]
fn mandatory_challenge_mode_serves_the_interstitial() {
    let origin = MockOrigin::new().page("/index.html", PAGE).start().unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder()
            .seed(7)
            .captcha(botwall_captcha::ServingPolicy::MandatoryUnderAttack)
            .build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    fx.gateway.set_under_attack(true);
    let response = get(fx.addr, "/index.html", "Mozilla/5.0 e2e-challenge");
    assert_eq!(response.status(), StatusCode::FORBIDDEN);
    assert!(
        body_str(&response).contains("solve to continue"),
        "the 403 carries the challenge interstitial"
    );
    assert_eq!(fx.gateway.stats().challenged, 1);
    fx.finish();
}

#[test]
fn keep_alive_carries_many_requests_on_one_connection() {
    let fx = Fixture::standard();
    let ua = "Mozilla/5.0 e2e-keepalive";
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    for _ in 0..3 {
        let response = get_on(&mut conn, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK);
        assert_eq!(response.headers().get("Connection"), Some("keep-alive"));
    }
    drop(conn);
    let report = fx.finish();
    assert_eq!(report.requests, 3);
    assert_eq!(report.connections, 1, "one socket served all three");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let fx = Fixture::standard();
    let ua = "Mozilla/5.0 e2e-pipeline";
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    // Both requests in one write; responses must come back one by one.
    let mut batch = Vec::new();
    batch.extend_from_slice(&botwall_http::wire::serialize_request(&request(
        "/index.html",
        ua,
    )));
    batch.extend_from_slice(&botwall_http::wire::serialize_request(&request(
        "/missing.html",
        ua,
    )));
    conn.write_all(&batch).unwrap();
    let first = client::read_response(&mut conn).unwrap();
    let second = client::read_response(&mut conn).unwrap();
    assert_eq!(first.status(), StatusCode::OK);
    assert_eq!(second.status(), StatusCode::NOT_FOUND);
    fx.finish();
}

#[test]
fn one_slow_origin_stalls_only_its_own_connection() {
    let origin = MockOrigin::new()
        .page("/slow.html", PAGE)
        .page("/fast.html", PAGE)
        .latency("/slow.html", Duration::from_millis(1500))
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(3).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let addr = fx.addr;
    let slow = std::thread::spawn(move || {
        let started = Instant::now();
        let response = get(addr, "/slow.html", "Mozilla/5.0 e2e-slow");
        (response.status(), started.elapsed())
    });
    // Give the slow request time to reach its origin fetch.
    std::thread::sleep(Duration::from_millis(200));
    let started = Instant::now();
    let fast = get(addr, "/fast.html", "Mozilla/5.0 e2e-fast");
    let fast_elapsed = started.elapsed();
    assert_eq!(fast.status(), StatusCode::OK);
    assert!(
        fast_elapsed < Duration::from_millis(1000),
        "neighbor finished in {fast_elapsed:?} while the slow origin hung"
    );
    let (slow_status, slow_elapsed) = slow.join().unwrap();
    assert_eq!(slow_status, StatusCode::OK, "the slow request still lands");
    assert!(
        slow_elapsed >= Duration::from_millis(1400),
        "{slow_elapsed:?}"
    );
    fx.finish();
}

#[test]
fn origin_timeout_answers_504_and_releases_the_lease() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .latency("/index.html", Duration::from_millis(3000))
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(4).build(),
        |config| {
            config.origin = Some(origin_addr);
            config.origin_timeout = Duration::from_millis(300);
        },
        Some(origin),
    );
    let ua = "Mozilla/5.0 e2e-504";
    let started = Instant::now();
    let response = get(fx.addr, "/index.html", ua);
    assert_eq!(response.status(), StatusCode::GATEWAY_TIMEOUT);
    assert!(
        started.elapsed() < Duration::from_millis(2000),
        "the deadline, not the origin, ended the wait"
    );
    // The lease completed (with the synthesized 504) instead of being
    // dropped: the session's in-flight count is back to zero, so
    // enforcement math stays exact.
    let in_flight = fx
        .gateway
        .detector()
        .with_key_state(&loopback_key(ua), |_, state| state.in_flight)
        .expect("session exists");
    assert_eq!(in_flight, 0);
    fx.finish();
}

#[test]
fn admin_stats_serves_a_json_snapshot() {
    let fx = Fixture::standard();
    let ua = "Mozilla/5.0 e2e-admin";
    get(fx.addr, "/index.html", ua);
    let response = get(fx.addr, "/admin/stats", ua);
    assert_eq!(response.status(), StatusCode::OK);
    assert_eq!(response.content_type(), Some("application/json"));
    let body = body_str(&response);
    assert!(body.contains("\"requests\":1"), "{body}");
    assert!(body.contains("\"live_sessions\":"), "{body}");
    // The admin plane is not gateway traffic: it never counts itself.
    assert_eq!(fx.gateway.stats().requests, 1);
    fx.finish();
}

#[test]
fn connections_over_the_cap_answer_503() {
    let fx = Fixture::with(
        Gateway::builder().seed(5).build(),
        |config| config.max_connections = 1,
        None,
    );
    let mut first = TcpStream::connect(fx.addr).unwrap();
    // Complete a round trip so the first connection is fully accepted.
    let response = get_on(&mut first, "/index.html", "Mozilla/5.0 e2e-cap-a");
    assert_eq!(response.status(), StatusCode::NOT_FOUND); // no origin wired
    let mut second = TcpStream::connect(fx.addr).unwrap();
    let rejected = client::read_response(&mut second).unwrap();
    assert_eq!(rejected.status(), StatusCode::SERVICE_UNAVAILABLE);
    assert_eq!(rejected.headers().get("Connection"), Some("close"));
    fx.finish();
}

#[test]
fn malformed_requests_answer_400_and_close() {
    let fx = Fixture::standard();
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    conn.write_all(b"NOT AN HTTP LINE\r\n\r\n").unwrap();
    let response = client::read_response(&mut conn).unwrap();
    assert_eq!(response.status(), StatusCode::BAD_REQUEST);
    assert_eq!(response.headers().get("Connection"), Some("close"));
    fx.finish();
}

#[test]
fn a_half_sent_request_times_out_with_408() {
    let fx = Fixture::with(
        Gateway::builder().seed(6).build(),
        |config| config.read_timeout = Duration::from_millis(150),
        None,
    );
    let mut conn = TcpStream::connect(fx.addr).unwrap();
    conn.write_all(b"GET /index.html HTTP/1.1\r\nUser-Agent: slow")
        .unwrap();
    let response = client::read_response(&mut conn).unwrap();
    assert_eq!(response.status(), StatusCode::REQUEST_TIMEOUT);
    fx.finish();
}

/// Sequential page fetches against a keep-alive origin ride one
/// upstream connection: the first fetch connects, every later one
/// reuses the parked socket, and both `/admin/stats` and the final
/// report show the arithmetic.
#[test]
fn origin_pool_reuses_one_connection_across_a_burst() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .keep_alive()
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(30).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let ua = "Mozilla/5.0 e2e-pool-reuse";
    for _ in 0..4 {
        let response = get(fx.addr, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK);
        assert!(body_str(&response).contains("content"));
    }
    let stats = body_str(&get(fx.addr, "/admin/stats", ua));
    assert!(stats.contains("\"origin_connects\":1"), "{stats}");
    assert!(stats.contains("\"origin_reuses\":3"), "{stats}");
    assert!(stats.contains("\"origin_retries\":0"), "{stats}");
    let report = fx.finish();
    assert_eq!(report.origin_connects, 1, "one socket fed every fetch");
    assert_eq!(report.origin_reuses, 3);
    assert_eq!(report.origin_retries, 0);
}

/// A parked connection the origin kills on reuse costs exactly one
/// transparent retry — never a user-visible error, never a leaked
/// lease. `close_after_responses(1)` makes the race deterministic: the
/// parked socket looks healthy until the reused request arrives, then
/// closes without answering.
#[test]
fn stale_pooled_connection_retries_once_and_serves() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .keep_alive()
        .close_after_responses(1)
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(31).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let ua = "Mozilla/5.0 e2e-pool-stale";
    for _ in 0..2 {
        let response = get(fx.addr, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK, "retry is invisible");
        assert!(body_str(&response).contains("content"));
    }
    // The retried exchange still completed its lease.
    let in_flight = fx
        .gateway
        .detector()
        .with_key_state(&loopback_key(ua), |_, state| state.in_flight)
        .expect("session exists");
    assert_eq!(in_flight, 0);
    let report = fx.finish();
    assert_eq!(report.origin_retries, 1, "exactly one retry");
    assert_eq!(report.origin_reuses, 1, "the stale socket was picked up");
    assert_eq!(report.origin_connects, 2, "initial connect + the retry");
}

/// Unsolicited bytes on a parked connection poison it: the pool retires
/// the socket, and the garbage — though it parses as a complete HTTP
/// response — is never served to any later request.
#[test]
fn garbage_on_a_parked_connection_never_bleeds_into_a_response() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .keep_alive()
        .garbage_after(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nBLEED"
                .as_slice(),
        )
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(32).build(),
        |config| config.origin = Some(origin_addr),
        Some(origin),
    );
    let ua = "Mozilla/5.0 e2e-pool-garbage";
    let first = get(fx.addr, "/index.html", ua);
    assert_eq!(first.status(), StatusCode::OK);
    // Let the origin's delayed garbage land on the now-parked socket.
    std::thread::sleep(Duration::from_millis(200));
    let second = get(fx.addr, "/index.html", ua);
    assert_eq!(second.status(), StatusCode::OK);
    let body = body_str(&second);
    assert!(body.contains("content"), "real page served: {body}");
    assert!(
        !body.contains("BLEED"),
        "parked garbage must never be parsed"
    );
    let report = fx.finish();
    assert_eq!(report.origin_reuses, 0, "a poisoned socket is never reused");
    assert_eq!(report.origin_connects, 2);
    assert_eq!(report.origin_retries, 0);
}

/// The pool cap bounds how many idle connections survive a concurrent
/// burst, and the idle deadline evicts even those: the origin's own
/// live-connection gauge watches both happen.
#[test]
fn pool_cap_and_idle_deadline_bound_parked_connections() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .latency("/index.html", Duration::from_millis(200))
        .keep_alive()
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let live = |origin: &MockOriginHandle| origin.live_conns();
    let fx = Fixture::with(
        Gateway::builder().seed(33).build(),
        |config| {
            config.origin = Some(origin_addr);
            config.origin_pool = 2;
            config.origin_pool_idle = Duration::from_millis(800);
        },
        None, // held locally so the test can watch live_conns
    );
    let addr = fx.addr;
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                get(
                    addr,
                    "/index.html",
                    &format!("Mozilla/5.0 e2e-pool-cap-{i}"),
                )
            })
        })
        .collect();
    for client in clients {
        assert_eq!(client.join().unwrap().status(), StatusCode::OK);
    }
    // Connections over the cap close as they finish; at most two stay
    // parked. (Give the origin's threads a beat to observe the closes.)
    std::thread::sleep(Duration::from_millis(200));
    let parked = live(&origin);
    assert!(
        (1..=2).contains(&parked),
        "pool cap 2 must bound parked connections, saw {parked}"
    );
    // The idle deadline evicts the rest without any new traffic.
    let deadline = Instant::now() + Duration::from_secs(3);
    while live(&origin) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(live(&origin), 0, "idle deadline evicts parked connections");
    let report = fx.finish();
    assert_eq!(report.origin_connects + report.origin_reuses, 4);
    drop(origin);
}

/// Drain closes every parked origin connection: after shutdown the
/// origin sees zero live connections, not a stranded keep-alive socket.
#[test]
fn drain_closes_parked_origin_connections() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .keep_alive()
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(34).build(),
        |config| config.origin = Some(origin_addr),
        None, // held locally so the test can watch live_conns
    );
    let ua = "Mozilla/5.0 e2e-pool-drain";
    for _ in 0..2 {
        assert_eq!(get(fx.addr, "/index.html", ua).status(), StatusCode::OK);
    }
    assert_eq!(origin.live_conns(), 1, "one connection parked in the pool");
    let report = fx.finish();
    assert_eq!(report.origin_reuses, 1);
    let deadline = Instant::now() + Duration::from_secs(2);
    while origin.live_conns() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        origin.live_conns(),
        0,
        "drain must close the parked connection"
    );
    drop(origin);
}

#[test]
fn shutdown_drains_every_observed_session_exactly_once() {
    let fx = Fixture::standard();
    let agents = [
        "Mozilla/5.0 e2e-drain-a",
        "Mozilla/5.0 e2e-drain-b",
        "wget/1.0 e2e-drain-c",
    ];
    for ua in agents {
        let response = get(fx.addr, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK);
    }
    let addr = fx.addr;
    let report = fx.finish();
    assert_eq!(report.requests, agents.len() as u64);
    assert_eq!(
        report.drained_sessions,
        agents.len(),
        "conservation: every session observed on the wire is classified at drain"
    );
    // The listener is gone: new connections are refused (or reset).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(300));
    assert!(
        refused.is_err() || {
            let mut conn = refused.unwrap();
            client::roundtrip(&mut conn, &request("/index.html", "late/1.0")).is_err()
        },
        "the drained server must not accept new work"
    );
}
