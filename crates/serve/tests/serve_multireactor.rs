//! Multi-reactor end-to-end exercises: several epoll event loops, each
//! with its own SO_REUSEPORT listener, sharing one [`Gateway`]. The
//! kernel decides which reactor a connection lands on, so these tests
//! open many connections and assert *global* properties — verdicts
//! converge across reactors, the connection cap is one shared budget,
//! a slow origin stalls only its own connection wherever it lands, and
//! a drain classifies every observed session exactly once.

use botwall_core::classifier::Verdict;
use botwall_gateway::Gateway;
use botwall_http::request::ClientIp;
use botwall_http::{Method, Request, Response, StatusCode};
use botwall_serve::{client, MockOrigin, MockOriginHandle, ServeConfig, Server, ShutdownHandle};
use botwall_sessions::SessionKey;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const PAGE: &str = "<html><head><title>t</title></head>\
<body><p>content</p><a href=\"/about.html\">about</a></body></html>";

struct Fixture {
    gateway: Arc<Gateway>,
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    server: JoinHandle<std::io::Result<botwall_serve::ServeReport>>,
    _origin: Option<MockOriginHandle>,
}

impl Fixture {
    /// Default gateway + mock origin serving `PAGE`, with `threads`
    /// reactors behind one port.
    fn standard(threads: usize, seed: u64) -> Fixture {
        let origin = MockOrigin::new().page("/index.html", PAGE).start().unwrap();
        let origin_addr = origin.addr();
        Fixture::with(
            Gateway::builder().seed(seed).build(),
            |config| {
                config.origin = Some(origin_addr);
                config.threads = threads;
            },
            Some(origin),
        )
    }

    fn with(
        gateway: Gateway,
        tune: impl FnOnce(&mut ServeConfig),
        origin: Option<MockOriginHandle>,
    ) -> Fixture {
        let gateway = Arc::new(gateway);
        let mut config = ServeConfig::default();
        tune(&mut config);
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&gateway), config).unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let server = std::thread::spawn(move || server.run());
        Fixture {
            gateway,
            addr,
            shutdown,
            server,
            _origin: origin,
        }
    }

    fn finish(self) -> botwall_serve::ServeReport {
        self.shutdown.shutdown();
        self.server.join().unwrap().unwrap()
    }
}

fn request(path: &str, ua: &str) -> Request {
    Request::builder(Method::Get, path)
        .header("User-Agent", ua)
        .header("Host", "site.example")
        .build()
        .unwrap()
}

/// The session key the server derives for loopback traffic with `ua`.
fn loopback_key(ua: &str) -> SessionKey {
    let probe = Request::builder(Method::Get, "/")
        .header("User-Agent", ua)
        .client(ClientIp::new(u32::from_be_bytes([127, 0, 0, 1])))
        .build()
        .unwrap();
    SessionKey::of(&probe)
}

fn get(addr: SocketAddr, path: &str, ua: &str) -> Response {
    let mut conn = TcpStream::connect(addr).unwrap();
    client::roundtrip(&mut conn, &request(path, ua)).unwrap()
}

fn body_str(response: &Response) -> String {
    String::from_utf8(response.body().to_vec()).unwrap()
}

/// Every `"`-delimited absolute URL in `text`, reduced to path-and-query.
fn quoted_paths(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for chunk in text.split('"').skip(1).step_by(2) {
        if let Some(rest) = chunk.split("://").nth(1) {
            if let Some(slash) = rest.find('/') {
                out.push(rest[slash..].to_string());
            }
        }
    }
    out
}

/// One session's evidence must convict it no matter which reactor each
/// of its connections lands on: the decoy fetch happens on a fresh
/// socket (kernel-sharded to some reactor), and every later connection
/// — wherever *it* lands — sees the robot verdict, because session
/// state lives in the one shared gateway, not in any reactor.
#[test]
fn verdicts_converge_across_reactors() {
    let fx = Fixture::standard(2, 21);
    let ua = "scraper/1.0 mr-converge";
    let body = body_str(&get(fx.addr, "/index.html", ua));
    let decoy = quoted_paths(&body)
        .into_iter()
        .find(|p| {
            p.ends_with(".html")
                && p.trim_start_matches('/')
                    .trim_end_matches(".html")
                    .bytes()
                    .all(|b| b.is_ascii_digit())
        })
        .expect("instrumented page plants a decoy link");
    // The decoy fetch rides its own connection.
    get(fx.addr, &decoy, ua);
    let key = loopback_key(ua);
    assert!(
        matches!(fx.gateway.verdict(&key), Verdict::Robot(_)),
        "decoy fetch convicts: {:?}",
        fx.gateway.verdict(&key)
    );
    // Many more fresh connections: the kernel spreads them over both
    // reactors, and each one must observe the conviction (enforcement
    // or plain service — never an un-convicted fresh session).
    for i in 0..8 {
        let response = get(fx.addr, &format!("/p{i}.html"), ua);
        assert!(
            matches!(
                response.status(),
                StatusCode::NOT_FOUND
                    | StatusCode::OK
                    | StatusCode::TOO_MANY_REQUESTS
                    | StatusCode::FORBIDDEN
            ),
            "unexpected status {}",
            response.status()
        );
    }
    assert!(
        matches!(fx.gateway.verdict(&key), Verdict::Robot(_)),
        "conviction survives traffic on every reactor"
    );
    let report = fx.finish();
    assert_eq!(report.connections, 10, "every socket was counted once");
    assert_eq!(report.requests, 10);
}

/// `max_connections` is one global budget, not a per-reactor quota:
/// with two reactors and a cap of 1, the second concurrent connection
/// answers 503 no matter which listener accepted it.
#[test]
fn connection_cap_is_global_across_reactors() {
    let fx = Fixture::with(
        Gateway::builder().seed(22).build(),
        |config| {
            config.max_connections = 1;
            config.threads = 2;
        },
        None,
    );
    let mut first = TcpStream::connect(fx.addr).unwrap();
    // Complete a round trip so the first connection is fully accepted.
    let response =
        client::roundtrip(&mut first, &request("/index.html", "Mozilla/5.0 mr-cap-a")).unwrap();
    // No origin is wired, so the accepted connection answers 404.
    assert_eq!(response.status(), StatusCode::NOT_FOUND);
    // Repeat a few times so the rejects sample both listeners.
    for _ in 0..4 {
        let mut second = TcpStream::connect(fx.addr).unwrap();
        let rejected = client::read_response(&mut second).unwrap();
        assert_eq!(rejected.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(rejected.headers().get("Connection"), Some("close"));
    }
    // Releasing the held connection frees the one global slot.
    drop(first);
    std::thread::sleep(Duration::from_millis(100));
    let response = get(fx.addr, "/index.html", "Mozilla/5.0 mr-cap-b");
    assert_eq!(response.status(), StatusCode::NOT_FOUND);
    fx.finish();
}

/// A slow origin fetch parks one connection on one reactor; traffic on
/// the other reactors (and on the same one) keeps moving. With four
/// reactors the fast requests land everywhere, so this exercises
/// cross-reactor independence, not just same-loop fairness.
#[test]
fn slow_origin_stalls_no_other_reactor() {
    let origin = MockOrigin::new()
        .page("/slow.html", PAGE)
        .page("/fast.html", PAGE)
        .latency("/slow.html", Duration::from_millis(1500))
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(23).build(),
        |config| {
            config.origin = Some(origin_addr);
            config.threads = 4;
        },
        Some(origin),
    );
    let addr = fx.addr;
    let slow = std::thread::spawn(move || {
        let started = Instant::now();
        let response = get(addr, "/slow.html", "Mozilla/5.0 mr-slow");
        (response.status(), started.elapsed())
    });
    // Give the slow request time to reach its origin fetch.
    std::thread::sleep(Duration::from_millis(200));
    for i in 0..6 {
        let started = Instant::now();
        let fast = get(addr, "/fast.html", &format!("Mozilla/5.0 mr-fast-{i}"));
        let fast_elapsed = started.elapsed();
        assert_eq!(fast.status(), StatusCode::OK);
        assert!(
            fast_elapsed < Duration::from_millis(1000),
            "neighbor finished in {fast_elapsed:?} while the slow origin hung"
        );
    }
    let (slow_status, slow_elapsed) = slow.join().unwrap();
    assert_eq!(slow_status, StatusCode::OK, "the slow request still lands");
    assert!(
        slow_elapsed >= Duration::from_millis(1400),
        "{slow_elapsed:?}"
    );
    fx.finish();
}

/// Origin pools are per-worker: each reactor that handles traffic opens
/// its own upstream connection (never borrows a neighbor's), so a burst
/// of fresh client sockets spread over two reactors costs at most two
/// origin connects — and the merged report's pool counters still add up
/// to one upstream exchange per request.
#[test]
fn origin_pools_are_per_worker_and_counters_merge() {
    let origin = MockOrigin::new()
        .page("/index.html", PAGE)
        .keep_alive()
        .start()
        .unwrap();
    let origin_addr = origin.addr();
    let fx = Fixture::with(
        Gateway::builder().seed(25).build(),
        |config| {
            config.origin = Some(origin_addr);
            config.threads = 2;
        },
        Some(origin),
    );
    let ua = "Mozilla/5.0 mr-pool";
    // Fresh client connections, so the kernel shards them over both
    // reactors; each reactor reuses whatever it has parked.
    for _ in 0..8 {
        let response = get(fx.addr, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK);
        assert!(body_str(&response).contains("content"));
    }
    let report = fx.finish();
    assert!(
        (1..=2).contains(&report.origin_connects),
        "at most one origin connect per reactor, saw {}",
        report.origin_connects
    );
    assert_eq!(
        report.origin_connects + report.origin_reuses,
        8,
        "counters merge: one upstream exchange per request"
    );
    assert_eq!(report.origin_retries, 0);
}

/// Shutdown fans out to every reactor, each drains its own connections,
/// and exactly one drain pass classifies the shared session table:
/// every session observed on any reactor is counted once, nothing is
/// left in flight, and the merged report adds up.
#[test]
fn shutdown_drains_all_reactors_and_classifies_each_session_once() {
    let fx = Fixture::standard(4, 24);
    let agents = [
        "Mozilla/5.0 mr-drain-a",
        "Mozilla/5.0 mr-drain-b",
        "wget/1.0 mr-drain-c",
        "Mozilla/5.0 mr-drain-d",
        "curl/7.0 mr-drain-e",
    ];
    for ua in agents {
        let response = get(fx.addr, "/index.html", ua);
        assert_eq!(response.status(), StatusCode::OK);
    }
    // Every leased exchange completed before the drain.
    for ua in agents {
        let in_flight = fx
            .gateway
            .detector()
            .with_key_state(&loopback_key(ua), |_, state| state.in_flight)
            .expect("session exists");
        assert_eq!(in_flight, 0, "{ua} left an exchange in flight");
    }
    let addr = fx.addr;
    let report = fx.finish();
    assert_eq!(report.requests, agents.len() as u64);
    assert_eq!(report.connections, agents.len() as u64);
    assert_eq!(
        report.drained_sessions,
        agents.len(),
        "conservation: every session observed on any reactor is classified at drain"
    );
    // All listeners are gone: new connections are refused (or reset).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(300));
    assert!(
        refused.is_err() || {
            let mut conn = refused.unwrap();
            client::roundtrip(&mut conn, &request("/index.html", "late/1.0")).is_err()
        },
        "the drained server must not accept new work"
    );
}
