//! Browser behaviour profiles.
//!
//! The server never sees the browser itself, only its request pattern;
//! these profiles capture the per-family pattern circa 2006: every stock
//! browser fetches style sheets and images, JS-capable configurations
//! fetch and execute scripts, and most fetch `/favicon.ico` once.

use botwall_http::BrowserFamily;
use serde::{Deserialize, Serialize};

/// The asset-fetching behaviour of one browser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserProfile {
    /// Which family the browser belongs to (drives the User-Agent).
    pub family: BrowserFamily,
    /// Whether JavaScript is enabled (4–6% of users disable it, §2.2).
    pub js_enabled: bool,
    /// Whether the browser fetches style sheets (all standard ones do).
    pub fetches_css: bool,
    /// Whether embedded images are loaded (text-mode/dial-up users may
    /// disable them).
    pub fetches_images: bool,
    /// Whether the browser requests `/favicon.ico` on first visit.
    pub fetches_favicon: bool,
}

impl BrowserProfile {
    /// The stock configuration for a family.
    pub fn standard(family: BrowserFamily) -> BrowserProfile {
        BrowserProfile {
            family,
            js_enabled: true,
            fetches_css: true,
            fetches_images: true,
            // Period-accurate: IE and Firefox fetched favicons eagerly;
            // Opera did on bookmarking only.
            fetches_favicon: family != BrowserFamily::Opera,
        }
    }

    /// The same configuration with JavaScript disabled.
    pub fn js_disabled(family: BrowserFamily) -> BrowserProfile {
        BrowserProfile {
            js_enabled: false,
            ..BrowserProfile::standard(family)
        }
    }

    /// The header User-Agent string this browser sends.
    pub fn user_agent(&self) -> &'static str {
        self.family.example_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::UserAgent;

    #[test]
    fn standard_profiles_fetch_presentation_content() {
        for f in BrowserFamily::ALL {
            let p = BrowserProfile::standard(f);
            assert!(p.fetches_css, "{} must fetch CSS", f.name());
            assert!(p.fetches_images);
            assert!(p.js_enabled);
        }
    }

    #[test]
    fn js_disabled_only_changes_js() {
        let p = BrowserProfile::js_disabled(BrowserFamily::Firefox);
        assert!(!p.js_enabled);
        assert!(p.fetches_css);
    }

    #[test]
    fn user_agent_parses_back_to_family() {
        for f in BrowserFamily::ALL {
            let p = BrowserProfile::standard(f);
            assert_eq!(
                UserAgent::parse(Some(p.user_agent())),
                UserAgent::Browser(f)
            );
        }
    }

    #[test]
    fn opera_skips_favicon() {
        assert!(!BrowserProfile::standard(BrowserFamily::Opera).fetches_favicon);
        assert!(BrowserProfile::standard(BrowserFamily::Firefox).fetches_favicon);
    }
}
