//! Population mixes: sampling agents by weight.
//!
//! The [`Population::table1`] preset is calibrated so that a large run
//! reproduces the *shape* of the paper's Table 1 over CoDeeN traffic:
//! roughly 22–24% human sessions, ≈29% CSS downloads, ≈27% JS execution,
//! ≈9% CAPTCHA passes, ≈1% hidden-link follows and ≈0.7% browser-type
//! mismatches. The derivation (solving the share equations against the
//! paper's numbers) is documented in DESIGN.md.

use crate::agent::Agent;
use crate::browser::BrowserProfile;
use crate::human::{HumanAgent, HumanConfig};
use crate::robots::crawler::CrawlerConfig;
use crate::robots::fleet::{FleetCache, FleetConfig};
use crate::robots::headless::HeadlessConfig;
use crate::robots::llm_agent::LlmAgentConfig;
use crate::robots::smart_bot::SmartBotConfig;
use crate::robots::{
    ClickFraudBot, CrawlerBot, DdosZombie, EmailHarvester, FleetBot, HeadlessBrowser, LlmAgent,
    OfflineBrowser, PasswordCracker, PoliteSpider, ReferrerSpammer, SmartBot, VulnScanner,
};
use botwall_captcha::SolverProfile;
use botwall_http::BrowserFamily;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// A recipe for one agent kind, with enough configuration to build it.
#[derive(Debug, Clone)]
pub enum AgentSpec {
    /// A human with a (possibly JS-disabled) browser.
    Human {
        /// Browser family distribution is sampled uniformly from this.
        families: Vec<BrowserFamily>,
        /// Probability JavaScript is disabled (4–6% in the paper).
        js_disabled_probability: f64,
        /// Behaviour knobs.
        config: HumanConfig,
    },
    /// The blind byte-scanning crawler.
    Crawler(CrawlerConfig),
    /// The REP-compliant spider.
    PoliteSpider,
    /// The e-mail harvester.
    EmailHarvester,
    /// The referrer spammer.
    ReferrerSpammer,
    /// The click-fraud generator.
    ClickFraud,
    /// The vulnerability scanner.
    VulnScanner,
    /// The password cracker.
    PasswordCracker,
    /// The offline browser / mirrorer.
    OfflineBrowser,
    /// The JS-capable adversary.
    SmartBot(SmartBotConfig),
    /// The DDoS zombie.
    DdosZombie,
    /// The headless-browser imitator (leaky or stealth per its config).
    Headless(HeadlessConfig),
    /// A coordinated fleet member; every spec built from this entry
    /// shares the one cache, so sessions pool their loot.
    Fleet {
        /// Behaviour knobs.
        config: FleetConfig,
        /// The fleet-wide shared cache.
        cache: Arc<Mutex<FleetCache>>,
    },
    /// The LLM-driven browsing agent.
    LlmAgent(LlmAgentConfig),
}

impl AgentSpec {
    /// Builds a concrete agent from the spec.
    pub fn build(&self, rng: &mut ChaCha8Rng) -> Box<dyn Agent> {
        match self {
            AgentSpec::Human {
                families,
                js_disabled_probability,
                config,
            } => {
                let family = families[rng.gen_range(0..families.len())];
                let profile = if rng.gen_bool(*js_disabled_probability) {
                    BrowserProfile::js_disabled(family)
                } else {
                    BrowserProfile::standard(family)
                };
                Box::new(HumanAgent::new(profile, *config))
            }
            AgentSpec::Crawler(c) => Box::new(CrawlerBot::new(*c)),
            AgentSpec::PoliteSpider => Box::new(PoliteSpider::default()),
            AgentSpec::EmailHarvester => Box::new(EmailHarvester::default()),
            AgentSpec::ReferrerSpammer => Box::new(ReferrerSpammer::default()),
            AgentSpec::ClickFraud => Box::new(ClickFraudBot::default()),
            AgentSpec::VulnScanner => Box::new(VulnScanner::default()),
            AgentSpec::PasswordCracker => Box::new(PasswordCracker::default()),
            AgentSpec::OfflineBrowser => Box::new(OfflineBrowser::default()),
            AgentSpec::SmartBot(c) => Box::new(SmartBot::new(*c)),
            AgentSpec::DdosZombie => Box::new(DdosZombie::default()),
            AgentSpec::Headless(c) => Box::new(HeadlessBrowser::new(*c)),
            AgentSpec::Fleet { config, cache } => {
                Box::new(FleetBot::new(*config, Arc::clone(cache)))
            }
            AgentSpec::LlmAgent(c) => Box::new(LlmAgent::new(*c)),
        }
    }
}

/// A weighted mix of agent specs.
#[derive(Debug, Clone, Default)]
pub struct Population {
    entries: Vec<(AgentSpec, f64)>,
}

impl Population {
    /// An empty population.
    pub fn new() -> Population {
        Population::default()
    }

    /// Adds a spec with a weight.
    pub fn add(&mut self, spec: AgentSpec, weight: f64) -> &mut Self {
        assert!(weight >= 0.0, "weights are non-negative");
        self.entries.push((spec, weight));
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Samples one agent.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty or all weights are zero.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Box<dyn Agent> {
        let total = self.total_weight();
        assert!(total > 0.0, "population must have positive weight");
        let mut pick = rng.gen_range(0.0..total);
        for (spec, w) in &self.entries {
            if pick < *w {
                return spec.build(rng);
            }
            pick -= w;
        }
        self.entries.last().expect("non-empty").0.build(rng)
    }

    /// The human mix used by the Table-1 calibration.
    fn table1_human_spec() -> AgentSpec {
        AgentSpec::Human {
            families: vec![
                // Rough 2006 desktop shares: IE dominant, Firefox rising.
                BrowserFamily::InternetExplorer,
                BrowserFamily::InternetExplorer,
                BrowserFamily::InternetExplorer,
                BrowserFamily::Firefox,
                BrowserFamily::Firefox,
                BrowserFamily::Mozilla,
                BrowserFamily::Safari,
                BrowserFamily::Netscape,
                BrowserFamily::Opera,
            ],
            js_disabled_probability: 0.05,
            config: HumanConfig {
                pages: (4, 14),
                think_time_ms: (1_500, 20_000),
                mouse_move_per_page: 0.55,
                captcha: SolverProfile {
                    attempt_probability: 0.40,
                    base_success: 0.97,
                    floor: 0.85,
                },
            },
        }
    }

    /// The calibrated Table-1 population (see module docs and DESIGN.md).
    pub fn table1() -> Population {
        let mut p = Population::new();
        p.add(Self::table1_human_spec(), 23.5);
        // Smart bots: most forge consistently; a sliver is sloppy and
        // trips the browser-type mismatch (0.7% of sessions); a fraction
        // gamble on scanned beacons.
        p.add(
            AgentSpec::SmartBot(SmartBotConfig {
                forge_consistently: true,
                scan_beacons: false,
                ..SmartBotConfig::default()
            }),
            3.4,
        );
        p.add(
            AgentSpec::SmartBot(SmartBotConfig {
                forge_consistently: true,
                scan_beacons: true,
                ..SmartBotConfig::default()
            }),
            0.7,
        );
        p.add(
            AgentSpec::SmartBot(SmartBotConfig {
                forge_consistently: false,
                scan_beacons: false,
                ..SmartBotConfig::default()
            }),
            0.7,
        );
        p.add(AgentSpec::OfflineBrowser, 0.6);
        p.add(AgentSpec::Crawler(CrawlerConfig::default()), 0.8);
        p.add(AgentSpec::PoliteSpider, 4.0);
        p.add(AgentSpec::EmailHarvester, 10.0);
        p.add(AgentSpec::ReferrerSpammer, 25.0);
        p.add(AgentSpec::ClickFraud, 12.0);
        p.add(AgentSpec::VulnScanner, 8.0);
        p.add(AgentSpec::PasswordCracker, 5.0);
        p.add(AgentSpec::DdosZombie, 6.0);
        p
    }

    /// The adversary-escalation mix: the human population and the
    /// polite-spider baseline, plus the modern adversaries — leaky and
    /// stealth headless imitators, one coordinated fleet (all members
    /// share a single loot cache), and the LLM browsing agent. Drives
    /// the per-adversary detection-rate eval.
    pub fn escalation() -> Population {
        let fleet_cache = Arc::new(Mutex::new(FleetCache::default()));
        let mut p = Population::new();
        p.add(Self::table1_human_spec(), 40.0);
        p.add(AgentSpec::PoliteSpider, 15.0);
        p.add(AgentSpec::Headless(HeadlessConfig::default()), 12.0);
        p.add(
            AgentSpec::Headless(HeadlessConfig {
                stealth: true,
                ..HeadlessConfig::default()
            }),
            8.0,
        );
        p.add(
            AgentSpec::Fleet {
                config: FleetConfig::default(),
                cache: fleet_cache,
            },
            15.0,
        );
        p.add(AgentSpec::LlmAgent(LlmAgentConfig::default()), 10.0);
        p
    }

    /// A small balanced mix for quick demos and tests.
    pub fn demo() -> Population {
        let mut p = Population::new();
        p.add(Self::table1_human_spec(), 4.0);
        p.add(AgentSpec::Crawler(CrawlerConfig::default()), 1.0);
        p.add(AgentSpec::ReferrerSpammer, 2.0);
        p.add(AgentSpec::SmartBot(SmartBotConfig::default()), 1.0);
        p.add(AgentSpec::VulnScanner, 1.0);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn sampling_respects_weights() {
        let mut p = Population::new();
        p.add(AgentSpec::DdosZombie, 9.0);
        p.add(AgentSpec::PoliteSpider, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts: HashMap<&'static str, u32> = HashMap::new();
        for _ in 0..2000 {
            let a = p.sample(&mut rng);
            *counts.entry(a.kind().name()).or_default() += 1;
        }
        let z = counts["ddos-zombie"] as f64 / 2000.0;
        assert!((z - 0.9).abs() < 0.03, "zombie share {z}");
    }

    #[test]
    fn table1_mix_sums_to_about_100() {
        let p = Population::table1();
        let w = p.total_weight();
        assert!((w - 100.0).abs() < 1.5, "total weight {w}");
    }

    #[test]
    fn table1_human_share_matches_target() {
        let p = Population::table1();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut humans = 0;
        let n = 4000;
        for _ in 0..n {
            if p.sample(&mut rng).kind().is_human() {
                humans += 1;
            }
        }
        let share = humans as f64 / n as f64;
        assert!((share - 0.235).abs() < 0.02, "human share {share}");
    }

    #[test]
    fn escalation_mix_covers_every_new_adversary() {
        let p = Population::escalation();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen: HashMap<&'static str, u32> = HashMap::new();
        for _ in 0..800 {
            *seen.entry(p.sample(&mut rng).kind().name()).or_default() += 1;
        }
        for name in [
            "human",
            "polite-spider",
            "headless-browser",
            "stealth-headless",
            "fleet-bot",
            "llm-agent",
        ] {
            assert!(seen[name] > 20, "{name} underrepresented: {seen:?}");
        }
    }

    #[test]
    fn fleet_members_share_one_cache() {
        let p = Population::escalation();
        let fleets: Vec<_> = (0..p.len())
            .filter_map(|i| match &p.entries[i].0 {
                AgentSpec::Fleet { cache, .. } => Some(Arc::clone(cache)),
                _ => None,
            })
            .collect();
        assert_eq!(fleets.len(), 1, "one fleet entry");
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_population_panics_on_sample() {
        let p = Population::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        p.sample(&mut rng);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = Population::table1();
        let kinds = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..50)
                .map(|_| p.sample(&mut rng).kind().name())
                .collect::<Vec<_>>()
        };
        assert_eq!(kinds(7), kinds(7));
    }
}
