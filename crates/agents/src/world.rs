//! The client-side view of the network: what an agent can do.
//!
//! Agents run against a [`ClientWorld`] — implemented by the proxy
//! simulation in `botwall-codeen` (and by a mock in tests). The world
//! exposes exactly what a real client sees: it can fetch URLs, wait, and
//! be offered a CAPTCHA. Crucially, a fetched page comes back in *two*
//! forms — the raw HTML bytes (what a scanning robot greps) and a
//! structured [`PageView`] (what a rendering browser's DOM exposes) —
//! so human models and byte-level robots exercise genuinely different
//! paths through the instrumentation.

use botwall_captcha::Challenge;
use botwall_http::request::ClientIp;
use botwall_http::{Method, StatusCode, Uri};
use botwall_instrument::ProbeManifest;
use botwall_sessions::SimTime;

/// A fetch an agent wants to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchSpec {
    /// HTTP method.
    pub method: Method,
    /// Target URL.
    pub uri: Uri,
    /// Optional `Referer` header value.
    pub referer: Option<String>,
    /// Optional request body (POSTs).
    pub body: Vec<u8>,
}

impl FetchSpec {
    /// A plain GET.
    pub fn get(uri: Uri) -> FetchSpec {
        FetchSpec {
            method: Method::Get,
            uri,
            referer: None,
            body: Vec::new(),
        }
    }

    /// A GET with a `Referer`.
    pub fn get_with_referer(uri: Uri, referer: impl Into<String>) -> FetchSpec {
        FetchSpec {
            method: Method::Get,
            uri,
            referer: Some(referer.into()),
            body: Vec::new(),
        }
    }

    /// A POST with a body.
    pub fn post(uri: Uri, body: Vec<u8>) -> FetchSpec {
        FetchSpec {
            method: Method::Post,
            uri,
            referer: None,
            body,
        }
    }
}

/// The structured, browser-eye view of a fetched HTML page.
#[derive(Debug, Clone, Default)]
pub struct PageView {
    /// Visible links (absolute URIs) a human could click.
    pub links: Vec<Uri>,
    /// Embedded objects the page references from the origin site
    /// (images, the site stylesheet, site scripts).
    pub embedded: Vec<Uri>,
    /// A CGI form endpoint, if the page has one.
    pub cgi: Option<Uri>,
    /// Instrumentation injected by the server, if any. A JS-capable
    /// browser "sees" the manifest by executing the page; non-JS agents
    /// must scan `html` instead.
    pub manifest: Option<ProbeManifest>,
    /// The raw HTML bytes as served (after instrumentation).
    pub html: String,
}

/// What came back from a fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Response status (a throttled/blocked request gets 429/403).
    pub status: StatusCode,
    /// Structured page view when the response was an HTML page.
    pub page: Option<PageView>,
    /// Response body size in bytes.
    pub body_len: usize,
}

impl Default for FetchOutcome {
    fn default() -> Self {
        FetchOutcome {
            status: StatusCode::NOT_FOUND,
            page: None,
            body_len: 0,
        }
    }
}

/// Everything an agent can do to the outside world.
pub trait ClientWorld {
    /// Performs one HTTP exchange.
    fn fetch(&mut self, spec: FetchSpec) -> FetchOutcome;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Advances simulated time (think time, typing, dwell).
    fn sleep(&mut self, ms: u64);

    /// The agent's client address.
    fn client_ip(&self) -> ClientIp;

    /// The entry-point page of the site this session targets.
    fn entry_point(&self) -> Uri;

    /// Asks whether a CAPTCHA is on offer for this session; returns the
    /// challenge if so. Each session is offered at most one.
    fn offer_captcha(&mut self) -> Option<Challenge>;

    /// Submits a CAPTCHA answer; returns whether it passed.
    fn answer_captcha(&mut self, id: u64, answer: &str) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_spec_constructors() {
        let uri: Uri = "http://h/a.html".parse().unwrap();
        let g = FetchSpec::get(uri.clone());
        assert_eq!(g.method, Method::Get);
        assert!(g.referer.is_none());
        let r = FetchSpec::get_with_referer(uri.clone(), "http://h/");
        assert_eq!(r.referer.as_deref(), Some("http://h/"));
        let p = FetchSpec::post(uri, b"a=1".to_vec());
        assert_eq!(p.method, Method::Post);
        assert_eq!(p.body, b"a=1");
    }
}
