//! The agent abstraction and ground-truth taxonomy.

use crate::world::ClientWorld;
use botwall_http::BrowserFamily;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth identity of a traffic source.
///
/// The robot species are the abuse categories the paper's introduction
/// enumerates: DDoS zombies, referrer spammers, click-fraud generators,
/// e-mail harvesters, and vulnerability testers — plus the benign-but-
/// robotic sources (crawlers, offline browsers) and the adversarial
/// JS-capable bot of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// A human driving the given browser family.
    Human(BrowserFamily),
    /// A blind crawler that scans HTML bytes and follows every URL.
    Crawler,
    /// A Robot-Exclusion-Protocol-compliant spider.
    PoliteSpider,
    /// An e-mail address harvester.
    EmailHarvester,
    /// A referrer spammer (forged `Referer` headers for ranking inflation).
    ReferrerSpammer,
    /// A click-fraud generator hammering ad/CGI endpoints.
    ClickFraud,
    /// A vulnerability scanner probing exploit paths.
    VulnScanner,
    /// A password-guessing bot POSTing credentials.
    PasswordCracker,
    /// An offline browser mirroring pages with all embedded content.
    OfflineBrowser,
    /// A JavaScript-executing bot (the §4.1 adversary).
    SmartBot,
    /// A DDoS zombie flooding one target.
    DdosZombie,
    /// A headless-browser imitator: runs the probe JS path and
    /// synthesizes mouse entropy, but leaks the automation-framework
    /// signals (webdriver flag, empty plugin list).
    HeadlessBrowser,
    /// A headless imitator that also patches over the automation leaks
    /// (the honest upper bound on this detector family).
    StealthHeadless,
    /// A coordinated fleet member sharing harvested probe URLs and
    /// solved CAPTCHA pairs with its peers.
    FleetBot,
    /// An LLM-driven browsing agent: human-like pacing, systematic
    /// non-human traversal, no probe execution.
    LlmAgent,
}

impl AgentKind {
    /// Whether the ground truth is human.
    pub fn is_human(self) -> bool {
        matches!(self, AgentKind::Human(_))
    }

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::Human(_) => "human",
            AgentKind::Crawler => "crawler",
            AgentKind::PoliteSpider => "polite-spider",
            AgentKind::EmailHarvester => "email-harvester",
            AgentKind::ReferrerSpammer => "referrer-spammer",
            AgentKind::ClickFraud => "click-fraud",
            AgentKind::VulnScanner => "vuln-scanner",
            AgentKind::PasswordCracker => "password-cracker",
            AgentKind::OfflineBrowser => "offline-browser",
            AgentKind::SmartBot => "smart-bot",
            AgentKind::DdosZombie => "ddos-zombie",
            AgentKind::HeadlessBrowser => "headless-browser",
            AgentKind::StealthHeadless => "stealth-headless",
            AgentKind::FleetBot => "fleet-bot",
            AgentKind::LlmAgent => "llm-agent",
        }
    }

    /// Whether sessions of this kind generate abuse that can draw
    /// complaints against the proxy (Figure 3's complaint model).
    pub fn generates_abuse(self) -> bool {
        matches!(
            self,
            AgentKind::ReferrerSpammer
                | AgentKind::ClickFraud
                | AgentKind::VulnScanner
                | AgentKind::PasswordCracker
                | AgentKind::DdosZombie
                | AgentKind::EmailHarvester
                | AgentKind::FleetBot
        )
    }
}

/// A traffic source: runs one session against a [`ClientWorld`].
pub trait Agent {
    /// Ground-truth identity.
    fn kind(&self) -> AgentKind;

    /// The User-Agent header this agent sends (may be forged).
    fn user_agent(&self) -> String;

    /// Drives one complete session.
    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_partitions() {
        assert!(AgentKind::Human(BrowserFamily::Firefox).is_human());
        assert!(!AgentKind::Crawler.is_human());
        assert!(AgentKind::ReferrerSpammer.generates_abuse());
        assert!(!AgentKind::Human(BrowserFamily::Opera).generates_abuse());
        assert!(!AgentKind::PoliteSpider.generates_abuse());
        assert!(!AgentKind::OfflineBrowser.generates_abuse());
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let kinds = [
            AgentKind::Crawler,
            AgentKind::PoliteSpider,
            AgentKind::EmailHarvester,
            AgentKind::ReferrerSpammer,
            AgentKind::ClickFraud,
            AgentKind::VulnScanner,
            AgentKind::PasswordCracker,
            AgentKind::OfflineBrowser,
            AgentKind::SmartBot,
            AgentKind::DdosZombie,
            AgentKind::HeadlessBrowser,
            AgentKind::StealthHeadless,
            AgentKind::FleetBot,
            AgentKind::LlmAgent,
        ];
        let names: HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
