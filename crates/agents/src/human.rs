//! The human browsing model.
//!
//! A human drives a browser: fetches a page, lets the browser pull in its
//! embedded objects (including the injected CSS probe and script), dwells
//! while reading, moves the mouse (firing the beacon — once, thanks to the
//! `do_once` flag in the generated script), and clicks a *visible* link.
//! Humans never fetch the hidden link — they cannot see it.
//!
//! The first mouse event is modelled per page view with probability
//! `mouse_move_per_page`; this geometric page distribution is what shapes
//! the Figure-2 mouse CDF (80% of mouse movers detected within ~20
//! requests).

use crate::agent::{Agent, AgentKind};
use crate::browser::BrowserProfile;
use crate::world::{ClientWorld, FetchSpec};
use botwall_captcha::SolverProfile;
use botwall_http::{Method, UserAgent};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tunables for the human model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HumanConfig {
    /// Pages visited per session (min, max).
    pub pages: (u32, u32),
    /// Dwell time per page in ms (min, max).
    pub think_time_ms: (u64, u64),
    /// Probability the user moves the mouse during any given page view.
    pub mouse_move_per_page: f64,
    /// Probability the user attempts an offered CAPTCHA (the incentive
    /// opt-in rate).
    pub captcha: SolverProfile,
}

impl Default for HumanConfig {
    fn default() -> Self {
        HumanConfig {
            pages: (2, 12),
            think_time_ms: (2_000, 30_000),
            mouse_move_per_page: 0.45,
            captcha: SolverProfile::human_default(),
        }
    }
}

/// A human driving one browser configuration.
#[derive(Debug, Clone)]
pub struct HumanAgent {
    profile: BrowserProfile,
    config: HumanConfig,
}

impl HumanAgent {
    /// Creates a human with the given browser and behaviour.
    pub fn new(profile: BrowserProfile, config: HumanConfig) -> HumanAgent {
        HumanAgent { profile, config }
    }

    /// The browser profile in use.
    pub fn profile(&self) -> &BrowserProfile {
        &self.profile
    }
}

impl Agent for HumanAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::Human(self.profile.family)
    }

    fn user_agent(&self) -> String {
        self.profile.user_agent().to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let pages = rng.gen_range(self.config.pages.0..=self.config.pages.1);
        let mut current = world.entry_point();
        let mut referer: Option<String> = None;
        let mut moved_mouse = false;
        let mut fetched_favicon = false;
        let mut captcha_offered = false;

        for page_no in 0..pages {
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(current.clone(), r.clone()),
                None => FetchSpec::get(current.clone()),
            };
            let outcome = world.fetch(spec);
            let Some(view) = outcome.page else {
                // Redirect loops or errors: a human gives up quickly.
                break;
            };
            let page_url = current.to_string();

            // The browser pulls embedded objects automatically.
            for asset in &view.embedded {
                let class_css = asset.extension().as_deref() == Some("css");
                let class_js = asset.extension().as_deref() == Some("js");
                if class_css && !self.profile.fetches_css {
                    continue;
                }
                if class_js && !self.profile.js_enabled {
                    // A JS-disabled browser still downloads nothing it
                    // will not run; it skips script files.
                    continue;
                }
                if !class_css && !class_js && !self.profile.fetches_images {
                    continue;
                }
                world.fetch(FetchSpec::get_with_referer(asset.clone(), page_url.clone()));
            }
            if let Some(manifest) = &view.manifest {
                // The injected CSS probe is just another stylesheet link.
                if self.profile.fetches_css {
                    if let Some(css) = &manifest.css_probe {
                        world.fetch(FetchSpec::get_with_referer(css.clone(), page_url.clone()));
                    }
                }
                if self.profile.js_enabled {
                    // Download the external script…
                    if let Some(js) = &manifest.js_file {
                        world.fetch(FetchSpec::get_with_referer(js.clone(), page_url.clone()));
                    }
                    // …and execute it: the agent reporter fires with the
                    // *true* canonicalized agent string plus the benign
                    // environment facts every real desktop browser
                    // reports — no webdriver, a populated plugin list.
                    if let Some(agent) = &manifest.agent_beacon {
                        let reported = UserAgent::canonicalize(&self.user_agent());
                        let url = format!("{agent}?agent={reported}&wd=0&pl=3");
                        if let Ok(uri) = url.parse() {
                            world.fetch(FetchSpec::get_with_referer(uri, page_url.clone()));
                        }
                    }
                }
            }
            if self.profile.fetches_favicon && !fetched_favicon {
                fetched_favicon = true;
                if let Some(host) = current.host() {
                    let fav = botwall_http::Uri::absolute(host, "/favicon.ico");
                    world.fetch(FetchSpec::get(fav));
                }
            }

            // CAPTCHA offer (once per session).
            if !captcha_offered {
                captcha_offered = true;
                if let Some(ch) = world.offer_captcha() {
                    if let Some(success) = self.config.captcha.attempt(&ch, rng) {
                        let answer = if success {
                            ch.answer().to_string()
                        } else {
                            "wrong-guess".to_string()
                        };
                        world.answer_captcha(ch.id, &answer);
                    }
                }
            }

            // Dwell on the page; somewhere in there, maybe move the mouse.
            let dwell = rng.gen_range(self.config.think_time_ms.0..=self.config.think_time_ms.1);
            world.sleep(dwell / 2);
            if !moved_mouse
                && self.profile.js_enabled
                && rng.gen_bool(self.config.mouse_move_per_page)
            {
                moved_mouse = true;
                if let Some(beacon) = view.manifest.as_ref().and_then(|m| m.mouse_beacon.clone()) {
                    world.fetch(FetchSpec::get_with_referer(beacon, page_url.clone()));
                }
            }
            world.sleep(dwell / 2);

            // Click a visible link (humans only follow what they can see).
            let next = view
                .links
                .iter()
                .filter(|l| Some(l.path()) != view.manifest.as_ref().map(|m| m.page.path()))
                .collect::<Vec<_>>();
            if next.is_empty() {
                break;
            }
            // Clicking a link IS mouse activity: a human physically cannot
            // navigate without moving the mouse (or typing — either fires
            // the handler). The paper hooks exactly this via `onclick` on
            // anchors, so the first navigation redeems the beacon if the
            // page dwell did not already.
            if !moved_mouse && self.profile.js_enabled {
                moved_mouse = true;
                if let Some(beacon) = view.manifest.as_ref().and_then(|m| m.mouse_beacon.clone()) {
                    world.fetch(FetchSpec::get_with_referer(beacon, page_url.clone()));
                }
            }
            let pick = next[rng.gen_range(0..next.len())].clone();
            referer = Some(page_url);
            current = pick;
            let _ = page_no;
        }
    }
}

/// A quick sanity helper: the method a human never uses.
pub fn humans_never_use_head() -> Method {
    Method::Head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use botwall_http::BrowserFamily;
    use rand_chacha::rand_core::SeedableRng;

    fn run(profile: BrowserProfile, config: HumanConfig, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(7);
        let mut agent = HumanAgent::new(profile, config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        agent.run_session(&mut world, &mut rng);
        world
    }

    fn eager_config() -> HumanConfig {
        HumanConfig {
            pages: (6, 6),
            think_time_ms: (10, 20),
            mouse_move_per_page: 1.0,
            ..HumanConfig::default()
        }
    }

    #[test]
    fn js_human_fires_all_probes_but_never_hidden_link() {
        let world = run(
            BrowserProfile::standard(BrowserFamily::Firefox),
            eager_config(),
            1,
        );
        assert!(world.css_probe_hits > 0, "fetched CSS probe");
        assert!(world.js_file_hits > 0, "downloaded the script");
        assert!(world.agent_beacon_hits > 0, "executed the script");
        assert!(world.mouse_beacon_hits > 0, "moved the mouse");
        assert_eq!(world.hidden_link_hits, 0, "humans cannot see hidden links");
        assert_eq!(world.decoy_hits, 0, "humans run the real handler only");
    }

    #[test]
    fn js_disabled_human_fetches_css_but_no_beacons() {
        let world = run(
            BrowserProfile::js_disabled(BrowserFamily::Firefox),
            eager_config(),
            2,
        );
        assert!(world.css_probe_hits > 0);
        assert_eq!(world.js_file_hits, 0);
        assert_eq!(world.agent_beacon_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0, "no JS, no beacon");
    }

    #[test]
    fn mouse_fires_at_most_once() {
        let world = run(
            BrowserProfile::standard(BrowserFamily::InternetExplorer),
            eager_config(),
            3,
        );
        assert_eq!(world.mouse_beacon_hits, 1, "do_once semantics");
    }

    #[test]
    fn favicon_once_for_fetching_browsers() {
        let world = run(
            BrowserProfile::standard(BrowserFamily::Firefox),
            eager_config(),
            4,
        );
        assert_eq!(world.favicon_hits, 1);
        let world = run(
            BrowserProfile::standard(BrowserFamily::Opera),
            eager_config(),
            5,
        );
        assert_eq!(world.favicon_hits, 0);
    }

    #[test]
    fn referers_follow_navigation() {
        let world = run(
            BrowserProfile::standard(BrowserFamily::Safari),
            eager_config(),
            6,
        );
        // After the first page, every page fetch carries a referer.
        assert!(world.page_fetches >= 2);
        assert!(world.page_fetches_with_referer >= world.page_fetches - 1);
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let a = run(
            BrowserProfile::standard(BrowserFamily::Firefox),
            eager_config(),
            9,
        );
        let b = run(
            BrowserProfile::standard(BrowserFamily::Firefox),
            eager_config(),
            9,
        );
        assert_eq!(a.request_log, b.request_log);
    }
}
