//! Workload models for `botwall`: the traffic sources that exercise the
//! detector.
//!
//! The paper evaluates on live CoDeeN traffic — humans behind real
//! browsers and a zoo of robots abusing an open proxy. This crate is the
//! synthetic stand-in: behavioural models that issue the same request
//! patterns against any [`ClientWorld`] (implemented by the proxy
//! simulation in `botwall-codeen` and by [`testutil::MockWorld`] for
//! tests).
//!
//! * [`human`] — browser-driving humans: asset fetching per
//!   [`browser::BrowserProfile`], think times, mouse events (at most one
//!   beacon, per the generated script's `do_once` flag), visible-link
//!   navigation, optional CAPTCHA attempts.
//! * [`robots`] — one module per species from the paper's abuse taxonomy:
//!   crawlers (blind, byte-scanning, hidden-link-tripping), polite REP
//!   spiders, e-mail harvesters, referrer spammers, click-fraud bots,
//!   vulnerability scanners, password crackers, offline browsers (the
//!   acknowledged false-positive source), JS-capable smart bots (§4.1's
//!   adversary), and DDoS zombies.
//! * [`population`] — weighted mixes, including the Table-1 calibration.
//!
//! # Examples
//!
//! ```
//! use botwall_agents::population::Population;
//! use botwall_agents::testutil::MockWorld;
//! use rand_chacha::rand_core::SeedableRng;
//!
//! let population = Population::demo();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut agent = population.sample(&mut rng);
//! let mut world = MockWorld::new(1);
//! agent.run_session(&mut world, &mut rng);
//! assert!(world.total_fetches > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod browser;
pub mod human;
pub mod population;
pub mod robots;
pub mod testutil;
pub mod world;

pub use agent::{Agent, AgentKind};
pub use browser::BrowserProfile;
pub use human::{HumanAgent, HumanConfig};
pub use population::{AgentSpec, Population};
pub use world::{ClientWorld, FetchOutcome, FetchSpec, PageView};
