//! A self-contained [`ClientWorld`] for unit tests and examples.
//!
//! `MockWorld` wires a single generated site through a real
//! [`Instrumenter`], classifies every fetch the way a proxy node would,
//! and tallies probe hits — so agent models can be tested end to end
//! without the full network simulation.

use crate::world::{ClientWorld, FetchOutcome, FetchSpec, PageView};
use botwall_captcha::{CaptchaService, Challenge, ServingPolicy};
use botwall_http::request::ClientIp;
use botwall_http::{Method, Request, StatusCode, Uri};
use botwall_instrument::{Classified, InstrumentConfig, Instrumenter, KeyOutcome, ProbeKind};
use botwall_sessions::SimTime;
use botwall_webgraph::{render, Site, SiteConfig};

/// A one-site world with full instrumentation and hit counters.
#[derive(Debug)]
pub struct MockWorld {
    site: Site,
    instrumenter: Instrumenter,
    captcha: CaptchaService,
    captcha_offered: bool,
    now: SimTime,
    ip: ClientIp,
    /// Valid mouse-beacon redemptions.
    pub mouse_beacon_hits: u64,
    /// Decoy beacon fetches.
    pub decoy_hits: u64,
    /// Replayed beacon fetches.
    pub replay_hits: u64,
    /// Beacon-shaped fetches whose key was never issued here (forgeries
    /// or cross-session theft).
    pub unknown_beacon_hits: u64,
    /// CSS probe fetches.
    pub css_probe_hits: u64,
    /// Generated-script downloads.
    pub js_file_hits: u64,
    /// Agent-beacon fetches (JS execution).
    pub agent_beacon_hits: u64,
    /// Hidden-link fetches.
    pub hidden_link_hits: u64,
    /// Favicon fetches.
    pub favicon_hits: u64,
    /// robots.txt fetches.
    pub robots_txt_hits: u64,
    /// HTML page fetches.
    pub page_fetches: u64,
    /// HTML page fetches that carried a Referer.
    pub page_fetches_with_referer: u64,
    /// CGI fetches.
    pub cgi_hits: u64,
    /// POST requests.
    pub post_count: u64,
    /// 404 responses served.
    pub not_found: u64,
    /// Total fetches.
    pub total_fetches: u64,
    /// CAPTCHA passes.
    pub captcha_passes: u64,
    /// Flat log of `METHOD uri` lines, for determinism assertions.
    pub request_log: Vec<String>,
}

impl MockWorld {
    /// Creates a world with a deterministic site and instrumenter.
    pub fn new(seed: u64) -> MockWorld {
        MockWorld {
            site: Site::generate("mock.example.com", &SiteConfig::default(), seed),
            instrumenter: Instrumenter::new(InstrumentConfig::default(), seed ^ 0x5eed),
            captcha: CaptchaService::new(ServingPolicy::OptionalWithIncentive, seed ^ 0xcafe),
            captcha_offered: false,
            now: SimTime::ZERO,
            ip: ClientIp::new(0x0A00_0001),
            mouse_beacon_hits: 0,
            decoy_hits: 0,
            replay_hits: 0,
            unknown_beacon_hits: 0,
            css_probe_hits: 0,
            js_file_hits: 0,
            agent_beacon_hits: 0,
            hidden_link_hits: 0,
            favicon_hits: 0,
            robots_txt_hits: 0,
            page_fetches: 0,
            page_fetches_with_referer: 0,
            cgi_hits: 0,
            post_count: 0,
            not_found: 0,
            total_fetches: 0,
            captcha_passes: 0,
            request_log: Vec::new(),
        }
    }

    /// The underlying site (for assertions).
    pub fn site(&self) -> &Site {
        &self.site
    }

    fn build_request(&self, spec: &FetchSpec) -> Request {
        let mut b = Request::builder(spec.method.clone(), spec.uri.to_string())
            .header("User-Agent", "mock-agent")
            .client(self.ip);
        if let Some(r) = &spec.referer {
            b = b.header("Referer", r.clone());
        }
        b.body_bytes(spec.body.clone())
            .build()
            .expect("specs carry valid uris")
    }
}

impl ClientWorld for MockWorld {
    fn fetch(&mut self, spec: FetchSpec) -> FetchOutcome {
        self.total_fetches += 1;
        self.now += 50;
        self.request_log
            .push(format!("{} {}", spec.method, spec.uri));
        if spec.method == Method::Post {
            self.post_count += 1;
        }
        let request = self.build_request(&spec);
        // Instrumentation traffic first, exactly like a proxy node.
        let classified = self.instrumenter.classify(&request, self.now);
        match &classified {
            Classified::MouseBeacon { outcome, .. } => {
                match outcome {
                    KeyOutcome::Valid => self.mouse_beacon_hits += 1,
                    KeyOutcome::Decoy => self.decoy_hits += 1,
                    KeyOutcome::Replay => self.replay_hits += 1,
                    KeyOutcome::Unknown => self.unknown_beacon_hits += 1,
                }
                let resp = self.instrumenter.respond(&classified).expect("beacon");
                return FetchOutcome {
                    status: resp.status(),
                    page: None,
                    body_len: resp.body().len(),
                };
            }
            Classified::Probe(hit) => {
                match hit.kind {
                    ProbeKind::CssProbe => self.css_probe_hits += 1,
                    ProbeKind::JsFile => self.js_file_hits += 1,
                    ProbeKind::AgentBeacon => self.agent_beacon_hits += 1,
                    ProbeKind::HiddenLink => self.hidden_link_hits += 1,
                    ProbeKind::TransparentPixel | ProbeKind::MouseBeacon => {}
                }
                let resp = self.instrumenter.respond(&classified).expect("probe");
                return FetchOutcome {
                    status: resp.status(),
                    page: None,
                    body_len: resp.body().len(),
                };
            }
            Classified::Ordinary => {}
        }
        // Origin content.
        let path = spec.uri.path().to_string();
        if path.eq_ignore_ascii_case("/favicon.ico") {
            self.favicon_hits += 1;
            return FetchOutcome {
                status: StatusCode::OK,
                page: None,
                body_len: 512,
            };
        }
        if path.eq_ignore_ascii_case("/robots.txt") {
            self.robots_txt_hits += 1;
            return FetchOutcome {
                status: StatusCode::OK,
                page: None,
                body_len: 64,
            };
        }
        if path.contains("/cgi-bin/") {
            self.cgi_hits += 1;
            return FetchOutcome {
                status: StatusCode::OK,
                page: None,
                body_len: 256,
            };
        }
        if let Some(page) = self.site.page_by_path(&path) {
            self.page_fetches += 1;
            if spec.referer.is_some() {
                self.page_fetches_with_referer += 1;
            }
            let host = self.site.host().to_string();
            let html = render::render_page(&self.site, page);
            let (html, manifest) = self
                .instrumenter
                .instrument_page(&html, &spec.uri, self.ip, self.now);
            let links = page
                .links
                .iter()
                .filter_map(|id| self.site.page(*id))
                .map(|p| Uri::absolute(&host, p.path.clone()))
                .collect();
            let embedded = page
                .assets
                .iter()
                .map(|a| Uri::absolute(&host, a.path.clone()))
                .collect();
            let cgi = page
                .cgi_endpoint
                .as_ref()
                .map(|c| Uri::absolute(&host, c.clone()));
            return FetchOutcome {
                status: StatusCode::OK,
                body_len: html.len(),
                page: Some(PageView {
                    links,
                    embedded,
                    cgi,
                    manifest: Some(manifest),
                    html,
                }),
            };
        }
        if self.site.asset(&path).is_some() {
            let (_, body) = render::render_asset(&self.site, &path).expect("asset exists");
            return FetchOutcome {
                status: StatusCode::OK,
                page: None,
                body_len: body.len(),
            };
        }
        self.not_found += 1;
        FetchOutcome {
            status: StatusCode::NOT_FOUND,
            page: None,
            body_len: 0,
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sleep(&mut self, ms: u64) {
        self.now += ms;
    }

    fn client_ip(&self) -> ClientIp {
        self.ip
    }

    fn entry_point(&self) -> Uri {
        Uri::absolute(self.site.host(), "/index.html")
    }

    fn offer_captcha(&mut self) -> Option<Challenge> {
        if self.captcha_offered {
            return None;
        }
        self.captcha_offered = true;
        Some(self.captcha.issue())
    }

    fn answer_captcha(&mut self, id: u64, answer: &str) -> bool {
        let ok = self.captcha.verify(id, answer);
        if ok {
            self.captcha_passes += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_come_back_instrumented() {
        let mut w = MockWorld::new(1);
        let entry = w.entry_point();
        let out = w.fetch(FetchSpec::get(entry));
        let view = out.page.expect("index is a page");
        let m = view.manifest.expect("instrumented");
        assert!(m.css_probe.is_some());
        assert!(view.html.contains("onmousemove"));
        assert_eq!(w.page_fetches, 1);
    }

    #[test]
    fn unknown_paths_are_404() {
        let mut w = MockWorld::new(2);
        let uri = Uri::absolute("mock.example.com", "/no/such/thing.html");
        let out = w.fetch(FetchSpec::get(uri));
        assert_eq!(out.status, StatusCode::NOT_FOUND);
        assert_eq!(w.not_found, 1);
    }

    #[test]
    fn captcha_offered_once() {
        let mut w = MockWorld::new(3);
        let ch = w.offer_captcha().expect("first offer");
        assert!(w.offer_captcha().is_none(), "only one offer per session");
        let answer = ch.answer().to_string();
        assert!(w.answer_captcha(ch.id, &answer));
        assert_eq!(w.captcha_passes, 1);
    }

    #[test]
    fn time_advances_on_fetch_and_sleep() {
        let mut w = MockWorld::new(4);
        let t0 = w.now();
        w.fetch(FetchSpec::get(w.entry_point()));
        assert!(w.now() > t0);
        let t1 = w.now();
        w.sleep(1000);
        assert_eq!(w.now() - t1, 1000);
    }
}
