//! The vulnerability scanner: probes a dictionary of exploit paths
//! ("testing vulnerabilities in servers, CGI scripts, etc., to compromise
//! machines" — abuse category 5). Almost every request 404s, driving the
//! `RESPCODE 4XX %` feature and the §3.2 error-rate blocking threshold;
//! after the detector deployment these are the "hackers, who tried to
//! exploit new PHP or SQL vulnerabilities through CoDeeN" that remained in
//! the complaint stream.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Exploit paths a 2006-era scanner walked.
pub const PROBE_PATHS: &[&str] = &[
    "/cgi-bin/phf",
    "/cgi-bin/formmail.pl",
    "/cgi-bin/test-cgi",
    "/cgi-bin/awstats.pl",
    "/admin.php",
    "/phpmyadmin/index.php",
    "/xmlrpc.php",
    "/horde/README",
    "/awstats/awstats.pl",
    "/cgi-bin/count.cgi",
    "/scripts/root.exe",
    "/msadc/msadcs.dll",
    "/_vti_bin/owssvr.dll",
    "/cgi-bin/webcart/webcart.cgi",
    "/login.asp",
    "/setup.php",
];

/// A vulnerability-probing robot.
#[derive(Debug, Clone)]
pub struct VulnScanner {
    /// How many probe rounds to run (each walks the dictionary once).
    pub rounds: u32,
    /// Delay between probes, ms.
    pub delay_ms: u64,
}

impl Default for VulnScanner {
    fn default() -> Self {
        VulnScanner {
            rounds: 2,
            delay_ms: 60,
        }
    }
}

impl Agent for VulnScanner {
    fn kind(&self) -> AgentKind {
        AgentKind::VulnScanner
    }

    fn user_agent(&self) -> String {
        // Scanners of the period often omitted or minimized the UA.
        "Mozilla/4.0".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let entry = world.entry_point();
        let host = entry.host().unwrap_or("victim.example").to_string();
        for round in 0..self.rounds {
            for path in PROBE_PATHS {
                let uri = Uri::absolute(&host, path.to_string());
                if rng.gen_bool(0.2) {
                    // Some exploits need POSTs.
                    let payload = format!("cmd=id&round={round}");
                    world.fetch(FetchSpec::post(uri, payload.into_bytes()));
                } else {
                    world.fetch(FetchSpec::get(uri));
                }
                world.sleep(self.delay_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn generates_an_error_storm() {
        let mut world = MockWorld::new(1);
        let mut bot = VulnScanner::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        // Non-CGI dictionary paths 404 (CGI-looking ones are absorbed by
        // the mock's CGI handler).
        assert!(world.not_found > 5, "not_found = {}", world.not_found);
        assert!(world.post_count > 0, "some exploit POSTs");
        assert_eq!(world.css_probe_hits, 0);
    }

    #[test]
    fn probes_the_whole_dictionary() {
        let mut world = MockWorld::new(2);
        let mut bot = VulnScanner {
            rounds: 1,
            delay_ms: 0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.total_fetches, PROBE_PATHS.len() as u64);
    }
}
