//! The click-fraud generator: automates ad click-throughs "to boost
//! affiliate revenue" (abuse category 3). Hammers CGI endpoints with
//! forged referrers, never fetching the content the clicks supposedly
//! came from — maximal `CGI %`, zero presentation traffic.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A click-fraud robot.
#[derive(Debug, Clone)]
pub struct ClickFraudBot {
    /// Clicks per session.
    pub clicks: u32,
    /// Delay between clicks, ms.
    pub delay_ms: u64,
}

impl Default for ClickFraudBot {
    fn default() -> Self {
        ClickFraudBot {
            clicks: 30,
            delay_ms: 400,
        }
    }
}

impl Agent for ClickFraudBot {
    fn kind(&self) -> AgentKind {
        AgentKind::ClickFraud
    }

    fn user_agent(&self) -> String {
        "Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en) AppleWebKit/418 Safari/417.9.2".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let entry = world.entry_point();
        let host = entry.host().unwrap_or("target.example").to_string();
        // One page fetch to discover a CGI endpoint (an ad redirector).
        let out = world.fetch(FetchSpec::get(entry.clone()));
        let cgi = out
            .page
            .and_then(|v| v.cgi)
            .unwrap_or_else(|| Uri::absolute(&host, "/cgi-bin/adclick"));
        for i in 0..self.clicks {
            let clicked = format!("{cgi}?ad={}&n={i}", rng.gen_range(100..999));
            let Ok(uri) = clicked.parse::<Uri>() else {
                continue;
            };
            let fake_origin = format!("http://publisher{}.example/page.html", rng.gen_range(1..50));
            world.fetch(FetchSpec::get_with_referer(uri, fake_origin));
            world.sleep(self.delay_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn traffic_is_dominated_by_cgi() {
        let mut world = MockWorld::new(1);
        let mut bot = ClickFraudBot::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert!(world.cgi_hits >= 30);
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
    }
}
