//! The headless-browser imitator — the modern escalation past §4.1's
//! smart bot.
//!
//! Where [`crate::robots::SmartBot`] merely *scans* for beacon URLs (and
//! gambles against the decoys), a headless browser genuinely renders the
//! page: it executes the injected script, so the real mouse handler is
//! wired up, and driving synthesized pointer events through it redeems
//! the *correct* keyed beacon — no decoy gamble at all. On the paper's
//! original evidence lattice this adversary is indistinguishable from a
//! human.
//!
//! What gives it away is the execution *environment*: off-the-shelf
//! automation frameworks leak machine-checkable signals — the
//! WebDriver-mandated `navigator.webdriver` flag and the empty
//! `navigator.plugins` array of a headless build — which the agent
//! reporter now ships alongside the agent string (the "Detecting Bot
//! Detection" catalogue). The [`HeadlessBrowser`] model leaks them; its
//! `stealth` variant patches them over, bounding honestly what this
//! detector family can and cannot catch.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::{Uri, UserAgent};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`HeadlessBrowser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadlessConfig {
    /// Pages per session.
    pub pages: u32,
    /// Delay between pages, ms.
    pub delay_ms: u64,
    /// If `true`, the framework's leaks are patched: the reporter claims
    /// `webdriver = false` and a populated plugin list, exactly like a
    /// real desktop browser. The evader half of the honest eval.
    pub stealth: bool,
}

impl Default for HeadlessConfig {
    fn default() -> Self {
        HeadlessConfig {
            pages: 8,
            delay_ms: 700,
            stealth: false,
        }
    }
}

/// A headless browser driven by an automation framework.
#[derive(Debug, Clone)]
pub struct HeadlessBrowser {
    config: HeadlessConfig,
}

impl HeadlessBrowser {
    /// Creates the imitator.
    pub fn new(config: HeadlessConfig) -> HeadlessBrowser {
        HeadlessBrowser { config }
    }
}

impl Agent for HeadlessBrowser {
    fn kind(&self) -> AgentKind {
        if self.config.stealth {
            AgentKind::StealthHeadless
        } else {
            AgentKind::HeadlessBrowser
        }
    }

    fn user_agent(&self) -> String {
        // A real rendering engine behind the header: the UA is genuine.
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let mut current = world.entry_point();
        let mut referer: Option<String> = None;
        let mut visited = 0u32;
        let mut failures = 0u32;
        while visited < self.config.pages && failures < 12 {
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(current.clone(), r.clone()),
                None => FetchSpec::get(current.clone()),
            };
            let out = world.fetch(spec);
            let Some(view) = out.page else {
                failures += 1;
                world.sleep(self.config.delay_ms * 4);
                continue;
            };
            visited += 1;
            let page_url = current.to_string();
            if let Some(m) = &view.manifest {
                // A rendering engine pulls the whole probe suite.
                if let Some(css) = &m.css_probe {
                    world.fetch(FetchSpec::get_with_referer(css.clone(), page_url.clone()));
                }
                if let Some(js) = &m.js_file {
                    world.fetch(FetchSpec::get_with_referer(js.clone(), page_url.clone()));
                }
                // The script runs for real, so the reporter ships the
                // *true* environment — unless stealth patches it.
                if let Some(agent) = &m.agent_beacon {
                    let reported = UserAgent::canonicalize(&self.user_agent());
                    let (wd, pl) = if self.config.stealth { (0, 3) } else { (1, 0) };
                    if let Ok(uri) =
                        format!("{agent}?agent={reported}&wd={wd}&pl={pl}").parse::<Uri>()
                    {
                        world.fetch(FetchSpec::get_with_referer(uri, page_url.clone()));
                    }
                }
                // Synthesized mouse entropy dispatched through the live
                // handler redeems the genuine keyed beacon — decoys are
                // never touched, because the handler knows its own URL.
                if let Some(beacon) = &m.mouse_beacon {
                    world.fetch(FetchSpec::get_with_referer(
                        beacon.clone(),
                        page_url.clone(),
                    ));
                }
            }
            world.sleep(self.config.delay_ms);
            if view.links.is_empty() {
                break;
            }
            let next = view.links[rng.gen_range(0..view.links.len())].clone();
            referer = Some(page_url);
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    fn run(config: HeadlessConfig, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(seed);
        let mut bot = HeadlessBrowser::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        bot.run_session(&mut world, &mut rng);
        world
    }

    #[test]
    fn redeems_the_real_mouse_beacon_without_decoy_gambles() {
        let world = run(HeadlessConfig::default(), 1);
        assert!(world.css_probe_hits > 0);
        assert!(world.js_file_hits > 0);
        assert!(world.agent_beacon_hits > 0, "script executed");
        assert!(world.mouse_beacon_hits > 0, "synthesized entropy redeems");
        assert_eq!(world.decoy_hits, 0, "live handler never touches decoys");
        assert_eq!(world.hidden_link_hits, 0, "renders, so sees the CSS hide");
    }

    #[test]
    fn leaky_and_stealth_variants_report_different_environments() {
        let leaky = run(HeadlessConfig::default(), 2);
        let stealth = run(
            HeadlessConfig {
                stealth: true,
                ..HeadlessConfig::default()
            },
            2,
        );
        let reporter = |w: &MockWorld| {
            w.request_log
                .iter()
                .find(|l| l.contains("?agent="))
                .cloned()
                .expect("agent beacon fired")
        };
        assert!(reporter(&leaky).contains("&wd=1&pl=0"), "framework leaks");
        assert!(reporter(&stealth).contains("&wd=0&pl=3"), "leaks patched");
    }

    #[test]
    fn kind_tracks_stealth() {
        assert_eq!(
            HeadlessBrowser::new(HeadlessConfig::default()).kind(),
            AgentKind::HeadlessBrowser
        );
        assert_eq!(
            HeadlessBrowser::new(HeadlessConfig {
                stealth: true,
                ..HeadlessConfig::default()
            })
            .kind(),
            AgentKind::StealthHeadless
        );
    }
}
