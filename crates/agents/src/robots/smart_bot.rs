//! The JavaScript-capable adversary of §4.1: "A serious hacker could
//! implement a bot that could generate mouse or keystroke events if he or
//! she knows that a human activity detection mechanism has been
//! implemented."
//!
//! This model covers the escalation ladder short of full event forgery:
//!
//! * it downloads CSS and scripts like a browser (defeats the browser
//!   test),
//! * it *executes* the script far enough to fire the agent beacon
//!   (showing up in `S_JS`) — honestly or with a forged agent string,
//! * it optionally scans the script source for beacon URLs and fetches
//!   one blindly, which is precisely what the `m` decoys punish
//!   (caught with probability `m/(m+1)`),
//! * it never produces a true mouse event, so the set algebra lands it in
//!   `S_JS − S_MM`: robot.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::{Uri, UserAgent};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`SmartBot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartBotConfig {
    /// Pages per session.
    pub pages: u32,
    /// Delay between pages, ms.
    pub delay_ms: u64,
    /// If `true`, the agent beacon reports the same string as the
    /// User-Agent header (a careful forger); if `false`, the beacon
    /// reports the bot's real engine string and trips the browser-type
    /// mismatch (Table 1's 0.7%).
    pub forge_consistently: bool,
    /// If `true`, the bot scans the downloaded script for image URLs and
    /// blindly fetches one — gambling against the decoys.
    pub scan_beacons: bool,
}

impl Default for SmartBotConfig {
    fn default() -> Self {
        SmartBotConfig {
            pages: 8,
            delay_ms: 500,
            forge_consistently: true,
            scan_beacons: false,
        }
    }
}

/// The §4.1 adversary.
#[derive(Debug, Clone)]
pub struct SmartBot {
    config: SmartBotConfig,
}

impl SmartBot {
    /// Creates the bot.
    pub fn new(config: SmartBotConfig) -> SmartBot {
        SmartBot { config }
    }

    /// The engine string the bot's embedded interpreter reports when it
    /// is not forging.
    fn real_engine(&self) -> &'static str {
        "customjs-engine/0.4 (headless)"
    }
}

impl Agent for SmartBot {
    fn kind(&self) -> AgentKind {
        AgentKind::SmartBot
    }

    fn user_agent(&self) -> String {
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let mut current = world.entry_point();
        let mut referer: Option<String> = None;
        let mut visited = 0u32;
        let mut failures = 0u32;
        // A bot does not give up on a 429: it backs off and retries —
        // which is exactly what keeps its session above the >10-request
        // classification floor even while throttled.
        while visited < self.config.pages && failures < 12 {
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(current.clone(), r.clone()),
                None => FetchSpec::get(current.clone()),
            };
            let out = world.fetch(spec);
            let Some(view) = out.page else {
                failures += 1;
                world.sleep(self.config.delay_ms * 4);
                continue;
            };
            visited += 1;
            let page_url = current.to_string();
            if let Some(m) = &view.manifest {
                // Behave like a browser for the probe suite.
                if let Some(css) = &m.css_probe {
                    world.fetch(FetchSpec::get_with_referer(css.clone(), page_url.clone()));
                }
                if let Some(js) = &m.js_file {
                    world.fetch(FetchSpec::get_with_referer(js.clone(), page_url.clone()));
                }
                // "Execute" the script: fire the agent beacon.
                if let Some(agent) = &m.agent_beacon {
                    let reported = if self.config.forge_consistently {
                        UserAgent::canonicalize(&self.user_agent())
                    } else {
                        UserAgent::canonicalize(self.real_engine())
                    };
                    if let Ok(uri) = format!("{agent}?agent={reported}").parse::<Uri>() {
                        world.fetch(FetchSpec::get_with_referer(uri, page_url.clone()));
                    }
                }
                // Optionally gamble on a scanned beacon URL. The bot sees
                // the m+1 candidates via static scanning and cannot tell
                // them apart, so it picks uniformly — the paper's
                // m/(m+1) catch probability.
                if self.config.scan_beacons {
                    let mut candidates = m.decoy_beacons.clone();
                    if let Some(real) = &m.mouse_beacon {
                        candidates.push(real.clone());
                    }
                    if !candidates.is_empty() {
                        let pick = candidates[rng.gen_range(0..candidates.len())].clone();
                        world.fetch(FetchSpec::get_with_referer(pick, page_url.clone()));
                    }
                }
            }
            world.sleep(self.config.delay_ms);
            if view.links.is_empty() {
                break;
            }
            let next = view.links[rng.gen_range(0..view.links.len())].clone();
            referer = Some(page_url);
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    fn run(config: SmartBotConfig, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(seed);
        let mut bot = SmartBot::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        bot.run_session(&mut world, &mut rng);
        world
    }

    #[test]
    fn executes_js_but_never_moves_the_mouse() {
        let world = run(SmartBotConfig::default(), 1);
        assert!(world.css_probe_hits > 0);
        assert!(world.js_file_hits > 0);
        assert!(world.agent_beacon_hits > 0, "lands in S_JS");
        assert_eq!(world.mouse_beacon_hits, 0, "never in S_MM");
    }

    #[test]
    fn beacon_scanning_gets_caught_at_decoy_rate() {
        // Across many independent gambles, decoy hits ≈ m/(m+1) of all
        // beacon fetches (m = 5 decoys by default).
        let mut decoys = 0u64;
        let mut valids = 0u64;
        for seed in 0..60 {
            let world = run(
                SmartBotConfig {
                    scan_beacons: true,
                    pages: 4,
                    ..SmartBotConfig::default()
                },
                seed,
            );
            decoys += world.decoy_hits;
            valids += world.mouse_beacon_hits;
        }
        let total = decoys + valids;
        assert!(total > 100, "enough gambles: {total}");
        let rate = decoys as f64 / total as f64;
        assert!(
            (rate - 5.0 / 6.0).abs() < 0.08,
            "decoy rate {rate} vs expected {}",
            5.0 / 6.0
        );
    }

    #[test]
    fn sloppy_forger_reports_inconsistent_agent() {
        // The world can't check mismatch itself (that's the detector's
        // job); here we just confirm the two modes issue different agent
        // beacon URLs.
        let consistent = run(
            SmartBotConfig {
                forge_consistently: true,
                ..SmartBotConfig::default()
            },
            7,
        );
        let sloppy = run(
            SmartBotConfig {
                forge_consistently: false,
                ..SmartBotConfig::default()
            },
            7,
        );
        let find_agent = |w: &MockWorld| {
            w.request_log
                .iter()
                .find(|l| l.contains("?agent="))
                .cloned()
                .expect("agent beacon fired")
        };
        let a = find_agent(&consistent);
        let b = find_agent(&sloppy);
        assert!(a.contains("firefox"), "consistent forger claims Firefox");
        assert!(b.contains("customjs-engine"), "sloppy forger leaks: {b}");
    }
}
