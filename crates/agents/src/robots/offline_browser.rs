//! The offline browser / site mirrorer: "there are some exceptions like
//! off-line browsers that download all the possible files for future
//! display" (§2.2). It fetches pages *and* every embedded object —
//! including the CSS probe — but never executes JavaScript and never
//! produces mouse events.
//!
//! This species is the paper's acknowledged false-positive source: under
//! the set algebra it lands in `S_CSS` without landing in `S_JS`, so it is
//! classified human. The gap between the human-set bounds (the 2.4% max
//! FPR) is populated by exactly these sessions.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// A mirroring robot.
#[derive(Debug, Clone)]
pub struct OfflineBrowser {
    /// Maximum pages per session.
    pub page_budget: u32,
    /// Delay between fetches, ms.
    pub delay_ms: u64,
    /// Whether to follow hidden links too (tools differed; the default
    /// mirrors visible structure only, which is what makes this species a
    /// false positive rather than a hidden-link catch).
    pub follow_hidden: bool,
}

impl Default for OfflineBrowser {
    fn default() -> Self {
        OfflineBrowser {
            page_budget: 15,
            delay_ms: 250,
            follow_hidden: false,
        }
    }
}

impl Agent for OfflineBrowser {
    fn kind(&self) -> AgentKind {
        AgentKind::OfflineBrowser
    }

    fn user_agent(&self) -> String {
        // Mirroring tools mostly forged browser strings by 2006.
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.7.5) Gecko/20050512 Netscape/8.0"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, _rng: &mut ChaCha8Rng) {
        let mut queue: VecDeque<(Uri, Option<String>)> = VecDeque::new();
        let mut seen: HashSet<String> = HashSet::new();
        queue.push_back((world.entry_point(), None));
        let mut fetched = 0;
        while let Some((uri, referer)) = queue.pop_front() {
            if fetched >= self.page_budget {
                break;
            }
            if !seen.insert(uri.to_string()) {
                continue;
            }
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(uri.clone(), r.clone()),
                None => FetchSpec::get(uri.clone()),
            };
            let out = world.fetch(spec);
            fetched += 1;
            world.sleep(self.delay_ms);
            let Some(view) = out.page else { continue };
            let page_url = uri.to_string();
            // Mirror every embedded object, including the CSS probe and
            // the script file — but never run anything.
            for asset in &view.embedded {
                if seen.insert(asset.to_string()) {
                    world.fetch(FetchSpec::get_with_referer(asset.clone(), page_url.clone()));
                }
            }
            if let Some(m) = &view.manifest {
                if let Some(css) = &m.css_probe {
                    world.fetch(FetchSpec::get_with_referer(css.clone(), page_url.clone()));
                }
                if let Some(js) = &m.js_file {
                    world.fetch(FetchSpec::get_with_referer(js.clone(), page_url.clone()));
                }
                if self.follow_hidden {
                    if let Some(hidden) = &m.hidden_link {
                        queue.push_back((hidden.clone(), Some(page_url.clone())));
                    }
                }
            }
            for link in &view.links {
                queue.push_back((link.clone(), Some(page_url.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    fn run(follow_hidden: bool, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(seed);
        let mut bot = OfflineBrowser {
            follow_hidden,
            ..OfflineBrowser::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        bot.run_session(&mut world, &mut rng);
        world
    }

    #[test]
    fn downloads_probes_but_never_executes() {
        let world = run(false, 1);
        assert!(world.css_probe_hits > 0, "mirrors the CSS probe");
        assert!(world.js_file_hits > 0, "mirrors the script file");
        assert_eq!(world.agent_beacon_hits, 0, "never executes JS");
        assert_eq!(world.mouse_beacon_hits, 0, "no human at the controls");
        assert_eq!(world.decoy_hits, 0, "mirrors don't fetch script URLs");
    }

    #[test]
    fn default_config_avoids_hidden_links() {
        let world = run(false, 2);
        assert_eq!(world.hidden_link_hits, 0);
    }

    #[test]
    fn hidden_following_variant_gets_caught() {
        let world = run(true, 3);
        assert!(world.hidden_link_hits > 0);
    }
}
