//! The referrer spammer: issues requests whose forged `Referer` headers
//! advertise spam sites, to inflate search rankings via referrer logs and
//! trackback links (abuse category 2 in the paper's introduction; the
//! July-2005 complaint peak in Figure 3 was "mostly referrer spam and
//! click fraud").
//!
//! Tell-tales reproduced: HTML-only, *every* request carries a referrer,
//! and the referrer is always previously unseen — lighting up the
//! `REFERRER %` and `UNSEEN REFERRER %` features that the paper found
//! among the most informative.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A referrer-spamming robot.
#[derive(Debug, Clone)]
pub struct ReferrerSpammer {
    /// Requests per session.
    pub requests: u32,
    /// Delay between requests, ms.
    pub delay_ms: u64,
    /// Spam domains to advertise.
    pub spam_domains: Vec<String>,
}

impl Default for ReferrerSpammer {
    fn default() -> Self {
        ReferrerSpammer {
            requests: 25,
            delay_ms: 200,
            spam_domains: vec![
                "cheap-pills.example".to_string(),
                "casino-wins.example".to_string(),
                "rank-booster.example".to_string(),
            ],
        }
    }
}

impl Agent for ReferrerSpammer {
    fn kind(&self) -> AgentKind {
        AgentKind::ReferrerSpammer
    }

    fn user_agent(&self) -> String {
        "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let entry = world.entry_point();
        let mut targets = vec![entry.clone()];
        for i in 0..self.requests {
            let target = targets[rng.gen_range(0..targets.len())].clone();
            let domain = &self.spam_domains[rng.gen_range(0..self.spam_domains.len())];
            // Unique path per request: the referrer is always unseen.
            let forged = format!("http://{domain}/promo/{i}_{}.html", rng.gen::<u32>());
            let out = world.fetch(FetchSpec::get_with_referer(target, forged));
            world.sleep(self.delay_ms);
            if let Some(view) = out.page {
                for l in view.links.into_iter().take(2) {
                    if !targets.iter().any(|t| t == &l) {
                        targets.push(l);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn every_request_has_a_forged_referer() {
        let mut world = MockWorld::new(1);
        let mut bot = ReferrerSpammer::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.page_fetches, world.page_fetches_with_referer);
        assert!(world.page_fetches >= 20);
    }

    #[test]
    fn fetches_no_presentation_content() {
        let mut world = MockWorld::new(2);
        let mut bot = ReferrerSpammer::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
        assert_eq!(world.favicon_hits, 0);
    }
}
