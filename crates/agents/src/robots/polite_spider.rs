//! The Robot-Exclusion-Protocol-compliant spider: fetches `robots.txt`
//! first, declares itself in the User-Agent with contact information, and
//! crawls visible links slowly. The REP baseline (§5) catches exactly this
//! species and nothing else.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// A declared, polite crawler.
#[derive(Debug, Clone)]
pub struct PoliteSpider {
    /// Maximum pages per session.
    pub page_budget: u32,
    /// Politeness delay between fetches, ms.
    pub delay_ms: u64,
}

impl Default for PoliteSpider {
    fn default() -> Self {
        PoliteSpider {
            page_budget: 30,
            delay_ms: 1_000,
        }
    }
}

impl Agent for PoliteSpider {
    fn kind(&self) -> AgentKind {
        AgentKind::PoliteSpider
    }

    fn user_agent(&self) -> String {
        "FriendlySpider/1.2 (+http://friendly.example/bot.html; admin@friendly.example)".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, _rng: &mut ChaCha8Rng) {
        let entry = world.entry_point();
        // REP: retrieve robots.txt before crawling.
        if let Some(host) = entry.host() {
            world.fetch(FetchSpec::get(Uri::absolute(host, "/robots.txt")));
        }
        let mut queue: VecDeque<Uri> = VecDeque::new();
        let mut seen: HashSet<String> = HashSet::new();
        queue.push_back(entry);
        let mut fetched = 0;
        while let Some(uri) = queue.pop_front() {
            if fetched >= self.page_budget {
                break;
            }
            if !seen.insert(uri.to_string()) {
                continue;
            }
            let out = world.fetch(FetchSpec::get(uri));
            fetched += 1;
            world.sleep(self.delay_ms);
            let Some(view) = out.page else { continue };
            // Polite spiders parse properly and follow only visible links.
            for link in &view.links {
                queue.push_back(link.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn fetches_robots_txt_first() {
        let mut world = MockWorld::new(1);
        let mut bot = PoliteSpider::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.robots_txt_hits, 1);
        assert!(world.request_log[0].contains("/robots.txt"));
    }

    #[test]
    fn avoids_hidden_links_and_assets() {
        let mut world = MockWorld::new(2);
        let mut bot = PoliteSpider::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.hidden_link_hits, 0, "parses the DOM, skips traps");
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
    }

    #[test]
    fn declares_itself() {
        let bot = PoliteSpider::default();
        let ua = bot.user_agent();
        assert!(ua.contains("+http://"), "REP contact info present");
        assert!(ua.to_lowercase().contains("spider"));
    }
}
