//! The e-mail address harvester: walks pages quickly looking for
//! `mailto:` addresses. Requests only HTML ("Some Web crawlers request
//! only HTML files, as do email address collectors" — §2.2), keeps no
//! rendering state, and sends no referrers.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// An address-harvesting robot.
#[derive(Debug, Clone)]
pub struct EmailHarvester {
    /// Maximum pages per session.
    pub page_budget: u32,
    /// Delay between fetches, ms.
    pub delay_ms: u64,
}

impl Default for EmailHarvester {
    fn default() -> Self {
        EmailHarvester {
            page_budget: 35,
            delay_ms: 80,
        }
    }
}

impl Agent for EmailHarvester {
    fn kind(&self) -> AgentKind {
        AgentKind::EmailHarvester
    }

    fn user_agent(&self) -> String {
        // Forged: harvesters learned long ago to hide from UA filters.
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        // Harvesters of the period used HTML parsers tuned to find
        // addresses; they follow parsed anchor elements (visible links)
        // rather than grepping bytes, which keeps them out of the
        // hidden-link trap — and is why the trap alone catches only ~1%
        // of sessions (Table 1).
        let mut queue: VecDeque<Uri> = VecDeque::new();
        let mut seen: HashSet<String> = HashSet::new();
        queue.push_back(world.entry_point());
        let mut fetched = 0;
        while let Some(uri) = queue.pop_front() {
            if fetched >= self.page_budget {
                break;
            }
            if !seen.insert(uri.to_string()) {
                continue;
            }
            let out = world.fetch(FetchSpec::get(uri));
            fetched += 1;
            world.sleep(self.delay_ms);
            let Some(view) = out.page else { continue };
            // Shuffle order a little so sessions differ.
            let mut links = view.links.clone();
            if links.len() > 1 {
                let swap = rng.gen_range(0..links.len());
                links.swap(0, swap);
            }
            for link in links {
                queue.push_back(link);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn html_only_no_probes() {
        let mut world = MockWorld::new(1);
        let mut bot = EmailHarvester::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert!(world.page_fetches > 1);
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.js_file_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
        assert_eq!(world.hidden_link_hits, 0);
    }

    #[test]
    fn forges_a_browser_ua() {
        let bot = EmailHarvester::default();
        assert!(bot.user_agent().contains("Firefox"));
    }
}
