//! The password cracker: hammers a login CGI with credential guesses
//! ("attempting to crack passwords" — the abstract's abuse list). All
//! POSTs, all to one endpoint, most rejected — high `CGI %`, high 4xx.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Common passwords of the era, for guess generation.
const WORDLIST: &[&str] = &[
    "123456", "password", "letmein", "qwerty", "abc123", "admin", "root", "master", "monkey",
    "dragon",
];

/// A credential-guessing robot.
#[derive(Debug, Clone)]
pub struct PasswordCracker {
    /// Guesses per session.
    pub attempts: u32,
    /// Delay between attempts, ms.
    pub delay_ms: u64,
}

impl Default for PasswordCracker {
    fn default() -> Self {
        PasswordCracker {
            attempts: 40,
            delay_ms: 150,
        }
    }
}

impl Agent for PasswordCracker {
    fn kind(&self) -> AgentKind {
        AgentKind::PasswordCracker
    }

    fn user_agent(&self) -> String {
        "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.0)".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        let entry = world.entry_point();
        let host = entry.host().unwrap_or("victim.example").to_string();
        let login = Uri::absolute(&host, "/cgi-bin/login");
        for i in 0..self.attempts {
            let user = ["admin", "root", "test", "webmaster"][rng.gen_range(0..4)];
            let pass = WORDLIST[rng.gen_range(0..WORDLIST.len())];
            let body = format!("user={user}&pass={pass}&try={i}");
            world.fetch(FetchSpec::post(login.clone(), body.into_bytes()));
            world.sleep(self.delay_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn all_traffic_is_cgi_posts() {
        let mut world = MockWorld::new(1);
        let mut bot = PasswordCracker::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.post_count, 40);
        assert_eq!(world.cgi_hits, 40);
        assert_eq!(world.page_fetches, 0);
        assert_eq!(world.css_probe_hits, 0);
    }
}
