//! The DDoS zombie: one of "hundreds or thousands of compromised machines
//! … flooding Web sites" (abuse category 1). Hammers a single target at
//! high rate with no variety — the easiest species for rate limiting to
//! squelch once classified.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use rand_chacha::ChaCha8Rng;

/// A flooding robot.
#[derive(Debug, Clone)]
pub struct DdosZombie {
    /// Requests per session.
    pub requests: u32,
    /// Delay between requests, ms (small: it floods).
    pub delay_ms: u64,
}

impl Default for DdosZombie {
    fn default() -> Self {
        DdosZombie {
            requests: 120,
            delay_ms: 10,
        }
    }
}

impl Agent for DdosZombie {
    fn kind(&self) -> AgentKind {
        AgentKind::DdosZombie
    }

    fn user_agent(&self) -> String {
        "Mozilla/4.0 (compatible; MSIE 5.5; Windows 98)".to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, _rng: &mut ChaCha8Rng) {
        let target = world.entry_point();
        for _ in 0..self.requests {
            world.fetch(FetchSpec::get(target.clone()));
            world.sleep(self.delay_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn floods_one_target() {
        let mut world = MockWorld::new(1);
        let mut bot = DdosZombie {
            requests: 50,
            delay_ms: 0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bot.run_session(&mut world, &mut rng);
        assert_eq!(world.total_fetches, 50);
        // All fetches hit the same URL.
        let mut urls = world.request_log.clone();
        urls.dedup();
        assert_eq!(urls.len(), 1);
        assert_eq!(world.css_probe_hits, 0);
    }
}
