//! The LLM-driven browsing agent.
//!
//! A language-model agent reads pages through a text extraction layer:
//! no stylesheet fetches, no script execution, no pointer. Its pacing is
//! the inverse of a classic crawler's — *slow*, because every step waits
//! on model inference, landing squarely inside human think-time bands.
//! What stays non-human is the traversal: the agent works through the
//! site systematically (sorted, exhaustive, deduplicated), where humans
//! meander and repeat.
//!
//! Against the evidence lattice this adversary looks exactly like the
//! paper's no-signal crawlers — it never touches a probe — so the
//! browser test catches it on silence (`NoBrowserSignals`), pacing
//! notwithstanding. It earns its place in the escalation suite as the
//! honest negative: human rhythm alone does not beat the detector.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Configuration for [`LlmAgent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlmAgentConfig {
    /// Pages per session (the agent's step budget).
    pub pages: u32,
    /// Inter-request pacing band, ms — inference latency plus reading
    /// time, tuned to sit inside human think-time.
    pub think_time_ms: (u64, u64),
}

impl Default for LlmAgentConfig {
    fn default() -> Self {
        LlmAgentConfig {
            pages: 10,
            think_time_ms: (800, 4_000),
        }
    }
}

/// An LLM-backed agent traversing the site via a text browser.
#[derive(Debug, Clone)]
pub struct LlmAgent {
    config: LlmAgentConfig,
}

impl LlmAgent {
    /// Creates the agent.
    pub fn new(config: LlmAgentConfig) -> LlmAgent {
        LlmAgent { config }
    }
}

impl Agent for LlmAgent {
    fn kind(&self) -> AgentKind {
        AgentKind::LlmAgent
    }

    fn user_agent(&self) -> String {
        // The tool layer forwards a stock browser header.
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        // Systematic frontier: lexicographically ordered, each page once.
        let mut frontier: BTreeSet<String> = BTreeSet::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut current = world.entry_point();
        let mut referer: Option<String> = None;
        let mut visited = 0u32;
        let mut failures = 0u32;
        while visited < self.config.pages && failures < 12 {
            seen.insert(current.to_string());
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(current.clone(), r.clone()),
                None => FetchSpec::get(current.clone()),
            };
            let out = world.fetch(spec);
            let Some(view) = out.page else {
                failures += 1;
                world.sleep(self.config.think_time_ms.1);
                continue;
            };
            visited += 1;
            let page_url = current.to_string();
            // The text layer surfaces links only; probes, stylesheets and
            // scripts never reach the model.
            for link in &view.links {
                let s = link.to_string();
                if !seen.contains(&s) {
                    frontier.insert(s);
                }
            }
            // "Inference": human-band pacing between steps.
            let pause = rng.gen_range(self.config.think_time_ms.0..=self.config.think_time_ms.1);
            world.sleep(pause);
            // Next step: the first unvisited link in sorted order — the
            // systematic tell no human traversal produces.
            let Some(next) = frontier.iter().next().cloned() else {
                break;
            };
            frontier.remove(&next);
            let Ok(uri) = next.parse::<Uri>() else {
                continue;
            };
            referer = Some(page_url);
            current = uri;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    fn run(config: LlmAgentConfig, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(seed);
        let mut agent = LlmAgent::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        agent.run_session(&mut world, &mut rng);
        world
    }

    #[test]
    fn never_touches_a_probe() {
        let world = run(LlmAgentConfig::default(), 1);
        assert!(world.page_fetches > 3, "traverses the site");
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.js_file_hits, 0);
        assert_eq!(world.agent_beacon_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
        assert_eq!(world.decoy_hits, 0);
    }

    #[test]
    fn traversal_is_systematic_and_deduplicated() {
        let world = run(LlmAgentConfig::default(), 2);
        let pages: Vec<&String> = world
            .request_log
            .iter()
            .filter(|l| l.ends_with(".html"))
            .collect();
        let unique: BTreeSet<&String> = pages.iter().copied().collect();
        assert_eq!(pages.len(), unique.len(), "each page visited once");
        // Mostly-ascending order: the frontier-min policy only breaks
        // rank when a late-discovered link sorts below visited ground.
        let ascending = pages.windows(2).filter(|w| w[0] < w[1]).count();
        assert!(
            ascending * 4 >= (pages.len() - 1) * 3,
            "systematic traversal should be mostly ascending: {pages:?}"
        );
    }

    #[test]
    fn pacing_sits_in_the_human_band() {
        let config = LlmAgentConfig::default();
        let world = run(config, 3);
        let span = world.now().as_millis();
        let per_page = span / world.page_fetches.max(1);
        assert!(
            per_page >= config.think_time_ms.0,
            "per-page pacing {per_page}ms is slower than a crawler"
        );
    }
}
