//! Robot species simulators.
//!
//! One module per species; each reproduces the behavioural *tell* that the
//! paper's detectors and Table-2 features key on. See
//! [`crate::agent::AgentKind`] for the taxonomy.

pub mod click_fraud;
pub mod crawler;
pub mod ddos_zombie;
pub mod email_harvester;
pub mod fleet;
pub mod headless;
pub mod llm_agent;
pub mod offline_browser;
pub mod password_cracker;
pub mod polite_spider;
pub mod referrer_spammer;
pub mod smart_bot;
pub mod vuln_scanner;

pub use click_fraud::ClickFraudBot;
pub use crawler::CrawlerBot;
pub use ddos_zombie::DdosZombie;
pub use email_harvester::EmailHarvester;
pub use fleet::{FleetBot, FleetCache};
pub use headless::HeadlessBrowser;
pub use llm_agent::LlmAgent;
pub use offline_browser::OfflineBrowser;
pub use password_cracker::PasswordCracker;
pub use polite_spider::PoliteSpider;
pub use referrer_spammer::ReferrerSpammer;
pub use smart_bot::SmartBot;
pub use vuln_scanner::VulnScanner;
