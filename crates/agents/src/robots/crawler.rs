//! The blind crawler: scans raw HTML bytes and follows *every* URL,
//! including the hidden link behind the transparent pixel — the exact
//! behaviour the hidden-link trap (§2.2) exists to catch. Fetches HTML
//! only; never downloads CSS, images, or scripts.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::Uri;
use botwall_webgraph::scan;

use rand_chacha::ChaCha8Rng;
use std::collections::{HashSet, VecDeque};

/// Configuration for [`CrawlerBot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlerConfig {
    /// Maximum pages fetched per session.
    pub page_budget: u32,
    /// Delay between fetches in ms (crawlers are fast).
    pub delay_ms: u64,
    /// Whether the crawler forges a browser User-Agent.
    pub forge_ua: bool,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            page_budget: 40,
            delay_ms: 120,
            forge_ua: true,
        }
    }
}

/// A breadth-first byte-scanning crawler.
#[derive(Debug, Clone)]
pub struct CrawlerBot {
    config: CrawlerConfig,
}

impl CrawlerBot {
    /// Creates a crawler.
    pub fn new(config: CrawlerConfig) -> CrawlerBot {
        CrawlerBot { config }
    }
}

impl Agent for CrawlerBot {
    fn kind(&self) -> AgentKind {
        AgentKind::Crawler
    }

    fn user_agent(&self) -> String {
        if self.config.forge_ua {
            // Forged to slip past signature matching.
            "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)".to_string()
        } else {
            "DeepCrawl/0.9".to_string()
        }
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, _rng: &mut ChaCha8Rng) {
        let mut queue: VecDeque<Uri> = VecDeque::new();
        let mut seen: HashSet<String> = HashSet::new();
        queue.push_back(world.entry_point());
        let mut fetched = 0;
        while let Some(uri) = queue.pop_front() {
            if fetched >= self.config.page_budget {
                break;
            }
            if !seen.insert(uri.to_string()) {
                continue;
            }
            let out = world.fetch(FetchSpec::get(uri.clone()));
            fetched += 1;
            world.sleep(self.config.delay_ms);
            let Some(view) = out.page else { continue };
            // Byte-level scanning: every href found in the raw markup is
            // followed — visible or not.
            for link in scan::scan_links(&view.html) {
                let Ok(resolved) = uri.join(&link) else {
                    continue;
                };
                // HTML-only: skip anything that looks like an asset.
                if matches!(
                    resolved.extension().as_deref(),
                    Some("css") | Some("js") | Some("jpg") | Some("gif") | Some("png")
                ) {
                    continue;
                }
                queue.push_back(resolved);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    fn run(config: CrawlerConfig, seed: u64) -> MockWorld {
        let mut world = MockWorld::new(seed);
        let mut bot = CrawlerBot::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        bot.run_session(&mut world, &mut rng);
        world
    }

    #[test]
    fn follows_hidden_links() {
        let world = run(CrawlerConfig::default(), 1);
        assert!(
            world.hidden_link_hits > 0,
            "a blind crawler must trip the hidden-link trap"
        );
    }

    #[test]
    fn fetches_no_presentation_content() {
        let world = run(CrawlerConfig::default(), 2);
        assert_eq!(world.css_probe_hits, 0);
        assert_eq!(world.js_file_hits, 0);
        assert_eq!(world.agent_beacon_hits, 0);
        assert_eq!(world.mouse_beacon_hits, 0);
        assert_eq!(world.favicon_hits, 0);
    }

    #[test]
    fn respects_page_budget() {
        let world = run(
            CrawlerConfig {
                page_budget: 5,
                ..CrawlerConfig::default()
            },
            3,
        );
        assert!(world.total_fetches <= 5);
    }

    #[test]
    fn never_revisits_a_url() {
        let world = run(CrawlerConfig::default(), 4);
        let mut sorted = world.request_log.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            world.request_log.len(),
            "no duplicate fetches"
        );
    }
}
