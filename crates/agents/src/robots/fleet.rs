//! The coordinated fleet: many sessions, one shared loot bag.
//!
//! Each member scrapes what its own sessions are given — beacon-shaped
//! image URLs scanned out of the injected script, and the answer to any
//! CAPTCHA one member bothered to solve — and deposits it in a cache the
//! whole fleet shares. Later sessions spend the loot instead of earning
//! their own: they replay harvested beacon URLs and re-submit the solved
//! `(id, answer)` pair.
//!
//! Both moves are exactly what the hardening in PRs 4–5 exists to stop:
//! a beacon key is bound to the session it was issued to, so a
//! cross-session redemption reads as a forged key (hard robot evidence),
//! and a CAPTCHA id is burned service-wide on first acceptance, so the
//! shared answer buys nothing twice.

use crate::agent::{Agent, AgentKind};
use crate::world::{ClientWorld, FetchSpec};
use botwall_http::{Uri, UserAgent};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// The fleet's shared loot: harvested beacon-shaped URLs and solved
/// CAPTCHA pairs, deposited by any member and spent by all.
#[derive(Debug, Default)]
pub struct FleetCache {
    /// Beacon-shaped URLs scanned from instrumented pages (the scanner
    /// cannot tell the real mouse beacon from the decoys).
    pub beacon_urls: Vec<Uri>,
    /// Solved CAPTCHA `(id, answer)` pairs.
    pub captcha_answers: Vec<(u64, String)>,
}

/// How many harvested URLs the cache keeps (oldest dropped first).
const CACHE_CAP: usize = 256;

/// Configuration for [`FleetBot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Pages per session.
    pub pages: u32,
    /// Delay between pages, ms.
    pub delay_ms: u64,
    /// How many harvested URLs one session replays before browsing.
    pub replays_per_session: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            pages: 6,
            delay_ms: 400,
            replays_per_session: 3,
        }
    }
}

/// One member of the coordinated fleet.
#[derive(Debug, Clone)]
pub struct FleetBot {
    config: FleetConfig,
    cache: Arc<Mutex<FleetCache>>,
}

impl FleetBot {
    /// Creates a member wired to the fleet's shared cache.
    pub fn new(config: FleetConfig, cache: Arc<Mutex<FleetCache>>) -> FleetBot {
        FleetBot { config, cache }
    }

    /// A fresh single-member fleet (tests, demos).
    pub fn solo(config: FleetConfig) -> FleetBot {
        FleetBot::new(config, Arc::new(Mutex::new(FleetCache::default())))
    }

    /// The shared cache handle.
    pub fn cache(&self) -> Arc<Mutex<FleetCache>> {
        Arc::clone(&self.cache)
    }
}

impl Agent for FleetBot {
    fn kind(&self) -> AgentKind {
        AgentKind::FleetBot
    }

    fn user_agent(&self) -> String {
        "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1"
            .to_string()
    }

    fn run_session(&mut self, world: &mut dyn ClientWorld, rng: &mut ChaCha8Rng) {
        // Spend loot first: replay URLs harvested by earlier sessions.
        let (replays, solved) = {
            let cache = self.cache.lock().expect("fleet cache");
            let n = (self.config.replays_per_session as usize).min(cache.beacon_urls.len());
            let start = cache.beacon_urls.len() - n;
            (
                cache.beacon_urls[start..].to_vec(),
                cache.captcha_answers.last().cloned(),
            )
        };
        for url in replays {
            world.fetch(FetchSpec::get(url));
            world.sleep(self.config.delay_ms / 2);
        }
        // Re-submit the fleet's solved CAPTCHA pair (burned service-wide
        // after its first acceptance, so this buys nothing).
        if let Some((id, answer)) = &solved {
            world.answer_captcha(*id, answer);
        }

        // Then browse and harvest like the §4.1 scanner.
        let mut current = world.entry_point();
        let mut referer: Option<String> = None;
        let mut visited = 0u32;
        let mut failures = 0u32;
        while visited < self.config.pages && failures < 12 {
            let spec = match &referer {
                Some(r) => FetchSpec::get_with_referer(current.clone(), r.clone()),
                None => FetchSpec::get(current.clone()),
            };
            let out = world.fetch(spec);
            let Some(view) = out.page else {
                failures += 1;
                world.sleep(self.config.delay_ms * 4);
                continue;
            };
            visited += 1;
            let page_url = current.to_string();
            if let Some(m) = &view.manifest {
                // Blend in: fetch the probe suite and fire the reporter
                // with a consistent forgery (header-matching agent, clean
                // environment) — the fleet's tell is its loot, not its
                // fingerprint.
                if let Some(css) = &m.css_probe {
                    world.fetch(FetchSpec::get_with_referer(css.clone(), page_url.clone()));
                }
                if let Some(js) = &m.js_file {
                    world.fetch(FetchSpec::get_with_referer(js.clone(), page_url.clone()));
                }
                if let Some(agent) = &m.agent_beacon {
                    let reported = UserAgent::canonicalize(&self.user_agent());
                    if let Ok(uri) = format!("{agent}?agent={reported}&wd=0&pl=3").parse::<Uri>() {
                        world.fetch(FetchSpec::get_with_referer(uri, page_url.clone()));
                    }
                }
                // Harvest every beacon-shaped URL the scanner can see.
                let mut cache = self.cache.lock().expect("fleet cache");
                for url in m.decoy_beacons.iter().chain(m.mouse_beacon.iter()).cloned() {
                    cache.beacon_urls.push(url);
                }
                if cache.beacon_urls.len() > CACHE_CAP {
                    let drop = cache.beacon_urls.len() - CACHE_CAP;
                    cache.beacon_urls.drain(..drop);
                }
            }
            // One member solves the CAPTCHA honestly and shares the pair.
            if solved.is_none() {
                if let Some(ch) = world.offer_captcha() {
                    let answer = ch.answer().to_string();
                    world.answer_captcha(ch.id, &answer);
                    self.cache
                        .lock()
                        .expect("fleet cache")
                        .captcha_answers
                        .push((ch.id, answer));
                }
            }
            world.sleep(self.config.delay_ms);
            if view.links.is_empty() {
                break;
            }
            let next = view.links[rng.gen_range(0..view.links.len())].clone();
            referer = Some(page_url);
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockWorld;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn harvests_into_the_shared_cache() {
        let bot = FleetBot::solo(FleetConfig::default());
        let cache = bot.cache();
        let mut world = MockWorld::new(1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut member = bot.clone();
        member.run_session(&mut world, &mut rng);
        let loot = cache.lock().unwrap();
        assert!(!loot.beacon_urls.is_empty(), "beacon URLs harvested");
        assert!(!loot.captcha_answers.is_empty(), "captcha pair shared");
    }

    #[test]
    fn later_members_replay_harvested_urls() {
        let bot = FleetBot::solo(FleetConfig::default());
        let cache = bot.cache();
        let mut first = bot.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        first.run_session(&mut MockWorld::new(2), &mut rng);
        let harvested = cache.lock().unwrap().beacon_urls.len();
        assert!(harvested > 0);

        // The second member replays loot it never earned: in its own
        // session those keys were never issued, so they land as decoy or
        // unknown (forged) fetches.
        let mut second = bot.clone();
        let mut world = MockWorld::new(3);
        second.run_session(&mut world, &mut rng);
        assert!(
            world.decoy_hits + world.unknown_beacon_hits > 0,
            "cross-session replays misfire: decoys={} unknown={}",
            world.decoy_hits,
            world.unknown_beacon_hits
        );
    }

    #[test]
    fn cache_is_bounded() {
        let bot = FleetBot::solo(FleetConfig {
            pages: 60,
            ..FleetConfig::default()
        });
        let cache = bot.cache();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for seed in 0..20 {
            let mut member = bot.clone();
            member.run_session(&mut MockWorld::new(seed), &mut rng);
        }
        assert!(cache.lock().unwrap().beacon_urls.len() <= CACHE_CAP);
    }
}
