//! Gateway configuration and the builder.

use crate::gateway::Gateway;
use botwall_captcha::ServingPolicy;
use botwall_core::staged::StagedConfig;
use botwall_core::{BoundaryClassifier, DetectorConfig, PolicyConfig};
use botwall_instrument::InstrumentConfig;
use serde::{Deserialize, Serialize};

/// Everything a [`Gateway`] is parameterized by.
///
/// Each field mirrors one stage of the paper's deployment: page
/// instrumentation (§2), sessionized detection (§3.1), policy
/// enforcement (§3.2), CAPTCHA serving (§4.2), and the staged-decision
/// tuning (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Page-rewriting / probe configuration.
    pub instrument: InstrumentConfig,
    /// Detection engine configuration (session tracking inside).
    pub detector: DetectorConfig,
    /// Rate-limiting and behavioural-blocking thresholds.
    pub policy: PolicyConfig,
    /// When CAPTCHAs are offered (and whether solving is compulsory).
    pub captcha: ServingPolicy,
    /// Staged-pipeline tuning for the optional boundary classifier.
    pub staged: StagedConfig,
    /// Whether the policy engine gates requests at all. Off reproduces
    /// the paper's pre-deployment state: observe and classify, but
    /// never throttle or block.
    pub enforcement: bool,
    /// Serve a CAPTCHA interstitial instead of a bare 429 when a session
    /// is throttled — the paper's §4.2 incentive flow as an enforcement
    /// escape hatch: a throttled human (or misjudged client) can solve
    /// the challenge, become ground-truth human, and shed the rate
    /// limit. Ignored when the CAPTCHA policy is `Disabled`.
    pub challenge_on_throttle: bool,
    /// Wrong answers allowed against one outstanding challenge record
    /// before it is burned (the next request re-challenges with a fresh
    /// id). `0` is treated as `1`: every record tolerates at least the
    /// attempt that burns it.
    pub max_challenge_attempts: u32,
    /// Seed for the gateway's deterministic RNGs (instrumentation keys,
    /// challenge generation).
    pub seed: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            instrument: InstrumentConfig::default(),
            detector: DetectorConfig::default(),
            policy: PolicyConfig::default(),
            captcha: ServingPolicy::OptionalWithIncentive,
            staged: StagedConfig::default(),
            enforcement: true,
            challenge_on_throttle: false,
            max_challenge_attempts: 3,
            seed: 0,
        }
    }
}

/// Builder for [`Gateway`].
///
/// # Examples
///
/// ```
/// use botwall_captcha::ServingPolicy;
/// use botwall_core::PolicyConfig;
/// use botwall_gateway::Gateway;
///
/// let gw = Gateway::builder()
///     .policy(PolicyConfig::default())
///     .captcha(ServingPolicy::Disabled)
///     .seed(42)
///     .build();
/// assert_eq!(gw.config().seed, 42);
/// ```
#[derive(Default)]
pub struct GatewayBuilder {
    config: GatewayConfig,
    boundary: Option<Box<dyn BoundaryClassifier + Send + Sync>>,
}

impl GatewayBuilder {
    /// Starts from the default configuration.
    pub fn new() -> GatewayBuilder {
        GatewayBuilder::default()
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: GatewayConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the instrumentation configuration.
    pub fn instrument(mut self, instrument: InstrumentConfig) -> Self {
        self.config.instrument = instrument;
        self
    }

    /// Sets the detector configuration.
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.config.detector = detector;
        self
    }

    /// Sets the policy configuration.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the CAPTCHA serving policy.
    pub fn captcha(mut self, captcha: ServingPolicy) -> Self {
        self.config.captcha = captcha;
        self
    }

    /// Sets the staged-pipeline tuning.
    pub fn staged(mut self, staged: StagedConfig) -> Self {
        self.config.staged = staged;
        self
    }

    /// Turns policy enforcement on or off.
    pub fn enforcement(mut self, on: bool) -> Self {
        self.config.enforcement = on;
        self
    }

    /// Serves a CAPTCHA instead of a bare 429 to throttled sessions
    /// (§4.2 escape hatch; see [`GatewayConfig::challenge_on_throttle`]).
    pub fn challenge_on_throttle(mut self, on: bool) -> Self {
        self.config.challenge_on_throttle = on;
        self
    }

    /// Sets the per-record wrong-answer budget (see
    /// [`GatewayConfig::max_challenge_attempts`]).
    pub fn max_challenge_attempts(mut self, attempts: u32) -> Self {
        self.config.max_challenge_attempts = attempts;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Installs a boundary classifier for the §4.1 staged pipeline: when
    /// present, classifiable sessions whose evidence leaves them on the
    /// set-algebra boundary are re-decided by it at flush time.
    /// `Send + Sync` because the gateway itself is shared across threads.
    pub fn boundary(mut self, boundary: impl BoundaryClassifier + Send + Sync + 'static) -> Self {
        self.boundary = Some(Box::new(boundary));
        self
    }

    /// Builds the gateway.
    pub fn build(self) -> Gateway {
        Gateway::from_parts(self.config, self.boundary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_deployment() {
        let c = GatewayConfig::default();
        assert!(c.enforcement);
        assert!(c.instrument.css_probe);
        assert!(c.instrument.mouse_beacon);
        assert_eq!(c.captcha, ServingPolicy::OptionalWithIncentive);
    }

    #[test]
    fn builder_setters_land_in_config() {
        let gw = GatewayBuilder::new()
            .enforcement(false)
            .captcha(ServingPolicy::Disabled)
            .seed(9)
            .build();
        assert!(!gw.config().enforcement);
        assert_eq!(gw.config().captcha, ServingPolicy::Disabled);
        assert_eq!(gw.config().seed, 9);
    }

    #[test]
    fn config_round_trips_through_clone_and_eq() {
        let c = GatewayConfig {
            seed: 77,
            enforcement: false,
            ..GatewayConfig::default()
        };
        let back = c.clone();
        assert_eq!(c, back);
    }
}
