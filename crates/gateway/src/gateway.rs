//! The gateway engine: one `handle` call per exchange.
//!
//! # Concurrency
//!
//! The entire request path is `&self` and the gateway is `Send + Sync`:
//! wrap it in an [`std::sync::Arc`] and call [`Gateway::handle`] from as
//! many threads as the hardware offers. Per-key mutable state (session
//! record, evidence, verdict, rate bucket, block flag) lives inside the
//! detector's sharded tracker — one shard-mutex acquisition covers the
//! policy gate, and one covers the exchange observation, so requests for
//! different keys proceed in parallel. Cross-key state is either
//! immutable (config, thresholds), atomic (activity counters, the
//! under-attack flag), or behind a lock only rare paths touch (the
//! instrumenter's token table for beacon redemptions and page rewrites —
//! ordinary classification takes the read side only).

use crate::config::{GatewayBuilder, GatewayConfig};
use crate::decision::{challenge_response, Decision, Origin};
use botwall_captcha::{CaptchaService, Challenge};
use botwall_core::classifier::{Reason, Verdict};
use botwall_core::staged::{Stage, StagedPipeline};
use botwall_core::{Action, BoundaryClassifier, CompletedSession, Detector, PolicyEngine};
use botwall_http::{Request, Response, StatusCode};
use botwall_instrument::{Classified, Instrumenter};
use botwall_sessions::{Session, SessionKey, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// Salt applied to the gateway seed for the CAPTCHA generator, so the
/// instrumentation and challenge RNG streams never collide.
const CAPTCHA_SEED_SALT: u64 = 0x0c47_c4a0;

/// A point-in-time snapshot of gateway activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayStats {
    /// Exchanges handled.
    pub requests: u64,
    /// Requests served (origin content, pages, probe objects).
    pub served: u64,
    /// Requests rejected with 429.
    pub throttled: u64,
    /// Requests rejected with 403.
    pub blocked: u64,
    /// Requests answered with a CAPTCHA interstitial.
    pub challenged: u64,
    /// Served requests that were instrumentation traffic.
    pub probe_requests: u64,
    /// Sessions flushed through sweep/drain.
    pub completed_sessions: u64,
    /// Flushed sessions whose label the boundary classifier overrode.
    pub ml_overrides: u64,
    /// Live sessions at snapshot time.
    pub live_sessions: usize,
    /// Tracker shards at snapshot time.
    pub shard_count: usize,
    /// Total bytes moved (requests + responses).
    pub total_bytes: u64,
    /// Bytes attributable to instrumentation: HTML inflation, probe
    /// object payloads, probe-request wire bytes.
    pub instrumentation_bytes: u64,
    /// Challenges issued.
    pub captcha_issued: u64,
    /// Challenges passed.
    pub captcha_passed: u64,
    /// Challenges failed.
    pub captcha_failed: u64,
}

/// One cache-line-padded cell of per-request counters. Requests update
/// the cell their session key hashes to, so concurrent handlers touch
/// different cache lines instead of serializing on one hot counter word.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CounterCell {
    requests: AtomicU64,
    served: AtomicU64,
    throttled: AtomicU64,
    blocked: AtomicU64,
    challenged: AtomicU64,
    probe_requests: AtomicU64,
    total_bytes: AtomicU64,
    instrumentation_bytes: AtomicU64,
}

/// Request counters sharded by session-key hash, merged at
/// [`Gateway::stats`] time. Every request lands in exactly one outcome
/// column (served / throttled / blocked / challenged), so the merged
/// ledger balances exactly even under concurrent ingest.
#[derive(Debug)]
struct ShardedCounters {
    cells: Vec<CounterCell>,
}

impl ShardedCounters {
    fn new(shards: usize) -> ShardedCounters {
        ShardedCounters {
            cells: (0..shards.max(1)).map(|_| CounterCell::default()).collect(),
        }
    }

    fn cell(&self, key: &SessionKey) -> &CounterCell {
        &self.cells[(key.shard_hash() % self.cells.len() as u64) as usize]
    }

    fn sum(&self, f: impl Fn(&CounterCell) -> &AtomicU64) -> u64 {
        self.cells
            .iter()
            .map(|c| f(c).load(Ordering::Relaxed))
            .sum()
    }
}

/// The single front door over the detection core.
///
/// One `Gateway` owns the whole per-deployment composition the paper
/// describes: the page instrumenter, the sessionized detector (sharded
/// tracker with colocated evidence/policy state), the policy engine, and
/// the CAPTCHA service. Every exchange goes through [`Gateway::handle`]
/// or [`Gateway::handle_with`]; idle sessions flush through
/// [`Gateway::sweep`] / [`Gateway::drain`]. All of it takes `&self` —
/// see the module docs for the locking model.
///
/// # Examples
///
/// ```
/// use botwall_gateway::{Decision, Gateway};
/// use botwall_http::request::ClientIp;
/// use botwall_http::{Method, Request};
/// use botwall_sessions::SimTime;
///
/// let gw = Gateway::builder().seed(1).build();
/// let req = Request::builder(Method::Get, "http://site.example/x.html")
///     .header("User-Agent", "curl/7.0")
///     .client(ClientIp::new(9))
///     .build()
///     .unwrap();
/// // No origin hooked up: ordinary paths 404, but the exchange is
/// // observed and sessionized all the same.
/// let d = gw.handle(&req, SimTime::ZERO);
/// assert!(d.is_serve());
/// assert_eq!(gw.stats().live_sessions, 1);
/// ```
pub struct Gateway {
    config: GatewayConfig,
    instrumenter: RwLock<Instrumenter>,
    detector: Detector,
    policy: PolicyEngine,
    captcha: CaptchaService,
    boundary: Option<Box<dyn BoundaryClassifier + Send + Sync>>,
    /// CAPTCHA passes verified while the keyed session was not live
    /// (swept or evicted between issue and answer): credited to the
    /// key's next incarnation on its first observed exchange.
    pending_captcha: Mutex<HashMap<SessionKey, SimTime>>,
    /// Lock-free gate for `pending_captcha`: the hot path only takes the
    /// mutex when at least one pass is actually pending.
    pending_count: AtomicUsize,
    counters: ShardedCounters,
    completed_sessions: AtomicU64,
    ml_overrides: AtomicU64,
}

/// Bound on [`Gateway::pending_captcha`]; beyond it the smallest key is
/// dropped (deterministic, unlike arbitrary map eviction).
const MAX_PENDING_CAPTCHA: usize = 100_000;

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .field("boundary", &self.boundary.is_some())
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Starts a [`GatewayBuilder`].
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder::new()
    }

    /// Assembles a gateway from a config plus optional boundary
    /// classifier (the builder's terminal step).
    pub(crate) fn from_parts(
        config: GatewayConfig,
        boundary: Option<Box<dyn BoundaryClassifier + Send + Sync>>,
    ) -> Gateway {
        let counter_shards = config.detector.tracker.shards;
        Gateway {
            instrumenter: RwLock::new(Instrumenter::new(config.instrument.clone(), config.seed)),
            detector: Detector::new(config.detector.clone()),
            policy: PolicyEngine::new(config.policy.clone()),
            captcha: CaptchaService::new(config.captcha, config.seed ^ CAPTCHA_SEED_SALT),
            boundary,
            pending_captcha: Mutex::new(HashMap::new()),
            pending_count: AtomicUsize::new(0),
            counters: ShardedCounters::new(counter_shards),
            completed_sessions: AtomicU64::new(0),
            ml_overrides: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this gateway was built with.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Read access to the detection engine (verdicts, evidence, tracker).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The current fast-path verdict for a session.
    pub fn verdict(&self, key: &SessionKey) -> Verdict {
        self.detector.verdict(key)
    }

    /// Whether a session is blocked.
    pub fn is_blocked(&self, key: &SessionKey) -> bool {
        self.detector
            .with_key_state(key, |_, state| state.policy.is_blocked())
            .unwrap_or(false)
    }

    /// Flips the under-attack flag consulted by the
    /// [`botwall_captcha::ServingPolicy::MandatoryUnderAttack`] policy.
    /// Atomic and `&self`: an operator can flip it while traffic is in
    /// flight, without pausing the request path.
    pub fn set_under_attack(&self, yes: bool) {
        self.captcha.set_under_attack(yes);
    }

    fn read_instrumenter(&self) -> std::sync::RwLockReadGuard<'_, Instrumenter> {
        botwall_sessions::sync::read_or_recover(&self.instrumenter)
    }

    fn write_instrumenter(&self) -> std::sync::RwLockWriteGuard<'_, Instrumenter> {
        botwall_sessions::sync::write_or_recover(&self.instrumenter)
    }

    fn lock_pending(&self) -> std::sync::MutexGuard<'_, HashMap<SessionKey, SimTime>> {
        botwall_sessions::sync::lock_or_recover(&self.pending_captcha)
    }

    /// Handles one exchange with no origin behind the gateway: probe and
    /// beacon traffic is answered in full; allowed ordinary paths 404.
    pub fn handle(&self, request: &Request, now: SimTime) -> Decision {
        self.handle_with(request, now, |_| Origin::NotFound)
    }

    /// Handles one exchange end to end: classify against the
    /// instrumentation, gate through policy with the session's verdict
    /// as of the previous request, serve probe objects directly, pull
    /// origin content through `origin` for allowed ordinary requests
    /// (instrumenting HTML pages on the way out), and feed the final
    /// exchange back into the detector — error responses included, so
    /// rejected traffic keeps feeding the behavioural thresholds.
    pub fn handle_with<F>(&self, request: &Request, now: SimTime, origin: F) -> Decision
    where
        F: FnOnce(&Request) -> Origin,
    {
        let key = SessionKey::of(request);
        let cell = self.counters.cell(&key);
        cell.requests.fetch_add(1, Ordering::Relaxed);

        // Ordinary and probe traffic classifies through the read lock;
        // only mouse-beacon redemptions (single-use keys) take the write
        // side. The guard must drop before the write attempt.
        let fast = self.read_instrumenter().classify_probe(request);
        let classified = match fast {
            Some(c) => c,
            None => self.write_instrumenter().classify(request, now),
        };

        // Policy gate first, on the verdict as of the previous request:
        // the gateway decides before doing origin work. One shard-lock
        // acquisition covers verdict read, thresholds, and the bucket.
        let action = if self.config.enforcement {
            self.detector
                .with_key_state(&key, |session, state| {
                    self.policy.decide(
                        &mut state.policy,
                        state.verdict,
                        session.counters(),
                        session.request_rate(),
                        now,
                    )
                })
                // A key with no live session has nothing to enforce
                // against yet; its first exchange creates the state.
                .unwrap_or(Action::Allow)
        } else {
            Action::Allow
        };

        match action {
            Action::Block => {
                cell.blocked.fetch_add(1, Ordering::Relaxed);
                let response = Response::empty(StatusCode::FORBIDDEN);
                self.observe(request, &response, &classified, now, cell);
                Decision::Block
            }
            Action::Throttle => {
                // §4.2 escape hatch: a throttled session can be offered a
                // CAPTCHA instead of a bare 429 — solving it makes the
                // session ground-truth human and sheds the rate limit.
                if self.config.challenge_on_throttle && self.captcha.is_enabled() {
                    let challenge = self.captcha.issue();
                    cell.challenged.fetch_add(1, Ordering::Relaxed);
                    let response = challenge_response(&challenge);
                    self.observe(request, &response, &classified, now, cell);
                    return Decision::Challenge(challenge);
                }
                cell.throttled.fetch_add(1, Ordering::Relaxed);
                let response = Response::empty(StatusCode::TOO_MANY_REQUESTS);
                self.observe(request, &response, &classified, now, cell);
                Decision::Throttle
            }
            Action::Allow => self.respond(request, &classified, key, now, cell, origin),
        }
    }

    /// Produces the served decision for an allowed request.
    fn respond<F>(
        &self,
        request: &Request,
        classified: &Classified,
        key: SessionKey,
        now: SimTime,
        cell: &CounterCell,
        origin: F,
    ) -> Decision
    where
        F: FnOnce(&Request) -> Origin,
    {
        // Instrumentation traffic is answered by the gateway itself —
        // it must flow even under mandatory-challenge mode, because it
        // is the channel through which humans prove themselves.
        let probe_response = self.read_instrumenter().respond(classified);
        if let Some(response) = probe_response {
            cell.served.fetch_add(1, Ordering::Relaxed);
            cell.probe_requests.fetch_add(1, Ordering::Relaxed);
            let out = self.observe(request, &response, classified, now, cell);
            return Decision::Serve {
                response,
                body: None,
                manifest: None,
                verdict: out,
                key,
                probe: true,
            };
        }

        // Kandula-style mandatory challenges gate ordinary traffic for
        // every session not yet proven human (a pending pass awaiting
        // its first exchange counts as proven).
        if self.captcha.is_mandatory()
            && !matches!(self.detector.verdict(&key), Verdict::Human(_))
            && !self.pending_contains(&key)
        {
            let challenge = self.captcha.issue();
            cell.challenged.fetch_add(1, Ordering::Relaxed);
            let response = challenge_response(&challenge);
            self.observe(request, &response, classified, now, cell);
            return Decision::Challenge(challenge);
        }

        let (response, body, manifest) = match origin(request) {
            Origin::Page(html) => {
                let (rewritten, manifest) = self.write_instrumenter().instrument_page(
                    &html,
                    request.uri(),
                    request.client(),
                    now,
                );
                // The page's wire bytes are tallied by `observe`; only
                // the injected share moves into the overhead column here.
                cell.instrumentation_bytes
                    .fetch_add(manifest.html_overhead as u64, Ordering::Relaxed);
                let mut response = Response::builder(StatusCode::OK)
                    .header("Content-Type", "text/html")
                    .body_bytes(rewritten.clone().into_bytes())
                    .build();
                Instrumenter::mark_uncacheable(&mut response);
                (response, Some(rewritten), Some(manifest))
            }
            Origin::Response(response) => (response, None, None),
            Origin::NotFound => (Response::empty(StatusCode::NOT_FOUND), None, None),
        };
        cell.served.fetch_add(1, Ordering::Relaxed);
        let out = self.observe(request, &response, classified, now, cell);
        Decision::Serve {
            response,
            body,
            manifest,
            verdict: out,
            key,
            probe: false,
        }
    }

    /// Feeds the finished exchange into the detector and the byte
    /// ledgers; returns the fast-path verdict.
    fn observe(
        &self,
        request: &Request,
        response: &Response,
        classified: &Classified,
        now: SimTime,
        cell: &CounterCell,
    ) -> Verdict {
        let out = self.detector.observe(request, response, classified, now);
        let bytes = (request.wire_len() + response.wire_len()) as u64;
        cell.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        if !matches!(classified, Classified::Ordinary) {
            cell.instrumentation_bytes
                .fetch_add(bytes, Ordering::Relaxed);
        }
        // A CAPTCHA pass verified while this key had no live session is
        // credited now that one exists.
        if self.pending_count.load(Ordering::Acquire) != 0 {
            let credited = {
                let mut pending = self.lock_pending();
                let hit = pending.remove(&out.key);
                self.pending_count.store(pending.len(), Ordering::Release);
                hit
            };
            if let Some(at) = credited {
                self.detector.record_captcha_pass(&out.key, at);
                return self.detector.verdict(&out.key);
            }
        }
        out.verdict
    }

    fn pending_contains(&self, key: &SessionKey) -> bool {
        self.pending_count.load(Ordering::Acquire) != 0 && self.lock_pending().contains_key(key)
    }

    /// Offers a CAPTCHA if the serving policy says so.
    pub fn offer_captcha(&self) -> Option<Challenge> {
        if !self.captcha.should_offer() {
            return None;
        }
        Some(self.captcha.issue())
    }

    /// Verifies a CAPTCHA answer; on success the session is marked
    /// ground-truth human. If the keyed session is no longer live (swept
    /// or evicted between issue and answer), the pass is held and
    /// credited to the key's next incarnation on its first exchange —
    /// a correct answer is never silently dropped.
    pub fn verify_captcha(&self, key: &SessionKey, id: u64, answer: &str, now: SimTime) -> bool {
        let ok = self.captcha.verify(id, answer);
        if ok {
            // A session idle past the timeout is already dead — its next
            // exchange rolls it over — so crediting it would bury the
            // pass with the old incarnation. Only a genuinely live
            // session takes the credit directly.
            let tracker = self.detector.tracker();
            let live = tracker
                .get(key)
                .is_some_and(|s| now.since(s.last_seen()) <= tracker.config().idle_timeout_ms);
            if live {
                self.detector.record_captcha_pass(key, now);
            } else {
                let mut pending = self.lock_pending();
                if pending.len() >= MAX_PENDING_CAPTCHA && !pending.contains_key(key) {
                    // Deterministic eviction: drop the smallest key.
                    if let Some(min) = pending.keys().min().cloned() {
                        pending.remove(&min);
                    }
                }
                pending.insert(key.clone(), now);
                self.pending_count.store(pending.len(), Ordering::Release);
            }
        }
        ok
    }

    /// Marks a CAPTCHA pass for a session directly (harnesses with their
    /// own verification path). Unknown sessions are a no-op.
    pub fn record_captcha_pass(&self, key: &SessionKey, now: SimTime) {
        self.detector.record_captcha_pass(key, now);
    }

    /// Expires idle sessions and instrumentation state as of `now`,
    /// applying the batch classification to every flushed session.
    pub fn sweep(&self, now: SimTime) -> Vec<CompletedSession> {
        self.write_instrumenter().sweep(now);
        let completed = self.detector.sweep(now);
        self.finish(completed)
    }

    /// Flushes every session unconditionally (end of deployment).
    pub fn drain(&self) -> Vec<CompletedSession> {
        let completed = self.detector.drain();
        self.finish(completed)
    }

    /// Post-flush bookkeeping shared by sweep and drain: boundary
    /// re-decisions. Per-key policy state needs no cleanup — it lives in
    /// the shard entry and is gone the moment the entry flushes, while a
    /// still-live successor incarnation keeps its own carried state.
    fn finish(&self, mut completed: Vec<CompletedSession>) -> Vec<CompletedSession> {
        self.completed_sessions
            .fetch_add(completed.len() as u64, Ordering::Relaxed);
        if let Some(boundary) = &self.boundary {
            let pipeline = StagedPipeline::new(self.config.staged, |s: &Session| {
                boundary.classify_session(s)
            });
            for cs in completed.iter_mut() {
                if !cs.classifiable {
                    continue;
                }
                let decision = pipeline.decide(&cs.session, &cs.evidence);
                if decision.stage == Stage::MlBoundary && decision.label != cs.label {
                    cs.label = decision.label;
                    cs.reason = Reason::MlBoundary;
                    self.ml_overrides.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        completed
    }

    /// Snapshots the gateway's activity counters, merging the per-shard
    /// cells.
    pub fn stats(&self) -> GatewayStats {
        let (captcha_issued, captcha_passed, captcha_failed) = self.captcha.stats();
        let tracker = self.detector.tracker();
        GatewayStats {
            requests: self.counters.sum(|c| &c.requests),
            served: self.counters.sum(|c| &c.served),
            throttled: self.counters.sum(|c| &c.throttled),
            blocked: self.counters.sum(|c| &c.blocked),
            challenged: self.counters.sum(|c| &c.challenged),
            probe_requests: self.counters.sum(|c| &c.probe_requests),
            completed_sessions: self.completed_sessions.load(Ordering::Relaxed),
            ml_overrides: self.ml_overrides.load(Ordering::Relaxed),
            live_sessions: tracker.live_count(),
            shard_count: tracker.shard_count(),
            total_bytes: self.counters.sum(|c| &c.total_bytes),
            instrumentation_bytes: self.counters.sum(|c| &c.instrumentation_bytes),
            captcha_issued,
            captcha_passed,
            captcha_failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_captcha::ServingPolicy;
    use botwall_core::classifier::{Label, Reason};
    use botwall_http::request::ClientIp;
    use botwall_http::Method;

    const HTML: &str = "<html><head></head><body><p>x</p></body></html>";

    fn req(ip: u32, uri: &str, ua: &str) -> Request {
        Request::builder(Method::Get, uri)
            .header("User-Agent", ua)
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    }

    fn page_decision(gw: &Gateway, ip: u32, ua: &str, at: SimTime) -> Decision {
        let r = req(ip, "http://site.example/index.html", ua);
        gw.handle_with(&r, at, |_| Origin::Page(HTML.into()))
    }

    #[test]
    fn gateway_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gateway>();
    }

    #[test]
    fn pages_come_back_instrumented() {
        let gw = Gateway::builder().seed(3).build();
        match page_decision(&gw, 1, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve {
                body,
                manifest,
                probe,
                response,
                ..
            } => {
                let body = body.unwrap();
                assert!(body.contains("onmousemove"));
                assert_eq!(response.body(), body.as_bytes());
                assert!(manifest.unwrap().mouse_beacon.is_some());
                assert!(!probe);
            }
            other => panic!("{other:?}"),
        }
        let stats = gw.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.served, 1);
        assert!(stats.instrumentation_bytes > 0);
        assert!(stats.total_bytes > stats.instrumentation_bytes);
    }

    #[test]
    fn mouse_beacon_flows_to_human_verdict() {
        let gw = Gateway::builder().seed(4).build();
        let manifest = match page_decision(&gw, 2, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let beacon = manifest.mouse_beacon.unwrap();
        let r = req(2, &beacon.to_string(), "Mozilla/5.0");
        let d = gw.handle(&r, SimTime::from_secs(2));
        assert_eq!(
            d.verdict(),
            Some(Verdict::Human(Reason::MouseActivity)),
            "{d:?}"
        );
        match d {
            Decision::Serve { probe, .. } => assert!(probe, "beacon is instrumentation traffic"),
            other => panic!("{other:?}"),
        }
        let done = gw.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn probe_objects_are_served_by_the_gateway() {
        let gw = Gateway::builder().seed(5).build();
        let manifest = match page_decision(&gw, 3, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let css = manifest.css_probe.unwrap();
        let d = gw.handle(&req(3, &css.to_string(), "Mozilla/5.0"), SimTime::ZERO);
        match d {
            Decision::Serve {
                probe, response, ..
            } => {
                assert!(probe);
                assert_eq!(response.status(), StatusCode::OK);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(gw.stats().probe_requests, 1);
    }

    #[test]
    fn no_signal_sessions_get_throttled_then_survive_enforcement_off() {
        let mut throttled = 0;
        let gw = Gateway::builder().seed(6).build();
        for i in 0..40 {
            let r = req(4, &format!("http://site.example/{i}.html"), "wget/1.0");
            if !gw
                .handle_with(&r, SimTime::from_secs(i / 4), |_| Origin::Page(HTML.into()))
                .is_serve()
            {
                throttled += 1;
            }
        }
        assert!(throttled > 0, "no-signal session must hit the robot limit");
        // Enforcement off: everything flows.
        let open = Gateway::builder().seed(6).enforcement(false).build();
        for i in 0..40 {
            let r = req(4, &format!("http://site.example/{i}.html"), "wget/1.0");
            assert!(open
                .handle_with(&r, SimTime::from_secs(i / 4), |_| Origin::Page(HTML.into()))
                .is_serve());
        }
    }

    #[test]
    fn mandatory_mode_challenges_until_passed() {
        let gw = Gateway::builder()
            .seed(7)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(5, "http://site.example/index.html", "Mozilla/5.0");
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("expected a challenge, got {d:?}");
        };
        // Solve it: the session becomes ground-truth human and is served.
        let key = SessionKey::of(&r);
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(1)));
        assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
        let d = gw.handle_with(&r, SimTime::from_secs(2), |_| Origin::Page(HTML.into()));
        assert!(d.is_serve(), "{d:?}");
        assert_eq!(gw.stats().challenged, 1);
        assert_eq!(gw.stats().captcha_passed, 1);
    }

    #[test]
    fn captcha_pass_in_the_stale_unswept_window_credits_the_next_incarnation() {
        // The user answers correctly after the idle timeout but BEFORE
        // any sweep: the old incarnation still sits in the tracker, yet
        // it is dead — its next exchange rolls it over. The pass must
        // ride to the successor, not be buried with the corpse.
        let gw = Gateway::builder()
            .seed(22)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(10, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("{d:?}");
        };
        // Answer lands idle_timeout + ε later; no sweep has run.
        let late = SimTime::from_hours(1) + 1;
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, late));
        // The next request rolls the session over — and must be served
        // as the proven human, not re-challenged.
        let d = gw.handle_with(&r, late + 1, |_| Origin::Page(HTML.into()));
        match d {
            Decision::Serve { verdict, .. } => {
                assert_eq!(verdict, Verdict::Human(Reason::CaptchaPassed));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn captcha_pass_survives_session_expiry_between_issue_and_answer() {
        // The user solves the challenge, but slower than the idle
        // timeout: the session is swept away before the answer arrives.
        // The pass must carry over to the key's next incarnation instead
        // of vanishing into a re-challenge loop.
        let gw = Gateway::builder()
            .seed(21)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(9, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("{d:?}");
        };
        // The session idles out and is flushed before the answer lands.
        assert_eq!(gw.sweep(SimTime::from_hours(2)).len(), 1);
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_hours(2) + 1));
        // The key's next exchange is served, not re-challenged, and the
        // pending pass is credited to the new incarnation.
        let d = gw.handle_with(&r, SimTime::from_hours(2) + 2, |_| {
            Origin::Page(HTML.into())
        });
        match d {
            Decision::Serve { verdict, .. } => {
                assert_eq!(verdict, Verdict::Human(Reason::CaptchaPassed));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn origin_variants_map_to_responses() {
        let gw = Gateway::builder().seed(8).build();
        let r = req(6, "http://site.example/asset.bin", "Mozilla/5.0");
        let d = gw.handle_with(&r, SimTime::ZERO, |_| {
            Origin::Response(
                Response::builder(StatusCode::OK)
                    .header("Content-Type", "application/octet-stream")
                    .body_bytes(vec![1, 2, 3])
                    .build(),
            )
        });
        match d {
            Decision::Serve {
                response,
                body,
                manifest,
                ..
            } => {
                assert_eq!(response.body(), &[1, 2, 3]);
                assert!(body.is_none());
                assert!(manifest.is_none());
            }
            other => panic!("{other:?}"),
        }
        let d = gw.handle(
            &req(6, "http://site.example/nope", "Mozilla/5.0"),
            SimTime::ZERO,
        );
        assert_eq!(d.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn sweep_flushes_idle_sessions_and_forgets_policy_state() {
        let gw = Gateway::builder().seed(9).build();
        page_decision(&gw, 7, "Mozilla/5.0", SimTime::ZERO);
        assert!(gw.sweep(SimTime::from_secs(10)).is_empty());
        let done = gw.sweep(SimTime::from_hours(2));
        assert_eq!(done.len(), 1);
        assert_eq!(gw.stats().completed_sessions, 1);
        assert_eq!(gw.stats().live_sessions, 0);
    }

    #[test]
    fn boundary_classifier_overrides_boundary_cases_at_flush() {
        // JS-without-mouse over a long session is the boundary case the
        // ML stage exists for; a classifier that calls everything human
        // must override the set-algebra robot label.
        let build = |with_ml: bool| {
            let b = Gateway::builder().seed(10).enforcement(false);
            let b = if with_ml {
                b.boundary(|_: &Session| Some(Label::Human))
            } else {
                b
            };
            let gw = b.build();
            let manifest = match page_decision(&gw, 8, "Mozilla/5.0", SimTime::ZERO) {
                Decision::Serve { manifest, .. } => manifest.unwrap(),
                other => panic!("{other:?}"),
            };
            // Execute JS (honestly) but never move the mouse.
            let agent = manifest.agent_beacon.unwrap();
            let fetch = format!(
                "{agent}?agent={}",
                botwall_http::UserAgent::canonicalize("Mozilla/5.0")
            );
            gw.handle(&req(8, &fetch, "Mozilla/5.0"), SimTime::from_secs(1));
            // Burn past the classification minimum.
            for i in 0..30 {
                gw.handle_with(
                    &req(8, &format!("http://site.example/{i}.html"), "Mozilla/5.0"),
                    SimTime::from_secs(2 + i),
                    |_| Origin::Page(HTML.into()),
                );
            }
            let done = gw.drain();
            (done[0].label, done[0].reason, gw.stats().ml_overrides)
        };
        let (without, reason, overrides) = build(false);
        assert_eq!(without, Label::Robot);
        assert_eq!(reason, Reason::JsWithoutMouse);
        assert_eq!(overrides, 0);
        let (with, reason, overrides) = build(true);
        assert_eq!(with, Label::Human);
        assert_eq!(reason, Reason::MlBoundary, "label and reason must agree");
        assert_eq!(overrides, 1);
    }

    #[test]
    fn stats_snapshot_reports_shards() {
        let gw = Gateway::builder().seed(11).build();
        assert_eq!(gw.stats().shard_count, 16);
    }

    #[test]
    fn blocked_sessions_stay_blocked_across_idle_rollover() {
        // A robot trips the behavioural thresholds and gets blocked, goes
        // quiet past the idle timeout, then returns: the successor
        // incarnation must still be blocked (the policy block flag
        // carries over at rollover; only a full flush with no live
        // successor clears it).
        let gw = Gateway::builder().seed(30).build();
        let mk = |i: u64| {
            req(
                12,
                &format!("http://site.example/cgi-bin/x{i}?q=1"),
                "wget/1.0",
            )
        };
        let key = SessionKey::of(&mk(0));
        let mut saw_block = false;
        for i in 0..40 {
            let d = gw.handle_with(&mk(i), SimTime::from_secs(i), |_| Origin::NotFound);
            if matches!(d, Decision::Block) {
                saw_block = true;
                break;
            }
        }
        assert!(saw_block, "CGI storm over 404s must trip a threshold");
        assert!(gw.is_blocked(&key));
        // Two hours later, the same key returns: still blocked.
        let later = SimTime::from_hours(3);
        let d = gw.handle_with(&mk(99), later, |_| Origin::NotFound);
        assert!(matches!(d, Decision::Block), "{d:?}");
        assert!(gw.is_blocked(&key));
        // A sweep flushes both incarnations; with no live successor the
        // key starts clean.
        gw.sweep(SimTime::from_hours(5));
        assert!(!gw.is_blocked(&key));
    }

    #[test]
    fn throttle_escape_hatch_serves_a_challenge_instead_of_429() {
        let gw = Gateway::builder()
            .seed(31)
            .challenge_on_throttle(true)
            .build();
        let mk = |i: u64| req(13, &format!("http://site.example/{i}.html"), "wget/1.0");
        // Crawl as a no-signal robot (1 req/s — under the blocking rate
        // threshold, over the robot bucket's refill) until the rate
        // limit bites.
        let mut challenge = None;
        for i in 0..60 {
            match gw.handle_with(&mk(i), SimTime::from_secs(i), |_| Origin::Page(HTML.into())) {
                Decision::Challenge(ch) => {
                    challenge = Some(ch);
                    break;
                }
                Decision::Throttle => panic!("escape hatch must replace bare 429s"),
                _ => {}
            }
        }
        let ch = challenge.expect("robot-paced session must get challenged");
        let stats = gw.stats();
        assert_eq!(stats.throttled, 0);
        assert!(stats.challenged > 0);
        assert_eq!(
            stats.requests,
            stats.served + stats.throttled + stats.blocked + stats.challenged,
            "every request lands in exactly one outcome column"
        );
        // Solving the challenge lifts the limit: ground-truth human.
        let key = SessionKey::of(&mk(0));
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(60)));
        assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
        for i in 0..20 {
            let d = gw.handle_with(&mk(100 + i), SimTime::from_secs(61), |_| {
                Origin::Page(HTML.into())
            });
            assert!(d.is_serve(), "proven humans are never rate limited: {d:?}");
        }
    }

    #[test]
    fn concurrent_handles_share_one_gateway() {
        use std::sync::Arc;
        let gw = Arc::new(Gateway::builder().seed(32).build());
        let handles: Vec<_> = (0..4u32)
            .map(|n| {
                let gw = Arc::clone(&gw);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let r = req(
                            40 + n,
                            &format!("http://site.example/{i}.html"),
                            "Mozilla/5.0",
                        );
                        gw.handle_with(&r, SimTime::from_secs(i), |_| Origin::Page(HTML.into()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = gw.stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(
            stats.requests,
            stats.served + stats.throttled + stats.blocked + stats.challenged
        );
        assert_eq!(stats.live_sessions, 4);
    }
}
