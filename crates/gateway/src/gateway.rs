//! The gateway engine: one `handle` call per exchange.
//!
//! # Concurrency
//!
//! The entire request path is `&self` and the gateway is `Send + Sync`:
//! wrap it in an [`std::sync::Arc`] and call [`Gateway::handle`] from as
//! many threads as the hardware offers.
//!
//! Since PR 5 the request path is a **two-phase lease/commit protocol**
//! with an exact lock taxonomy:
//!
//! * **Non-origin decisions — one shard lock.** Blocks, throttles,
//!   challenges, probe objects, and beacon redemptions are produced
//!   inside the gate's single fused critical section
//!   ([`botwall_core::Detector::gate`]), exactly as in PR 4.
//! * **Origin serves — two shard locks, zero held during the fetch.**
//!   The gate resolves policy and sighting under the first acquisition
//!   and returns a lease; the origin callback then runs with **no lock
//!   held** — one slow origin never stalls the other sessions on its
//!   shard — and [`botwall_core::Detector::commit_exchange`] re-binds
//!   the entry *by incarnation* under the second acquisition to record
//!   the exchange and fold its evidence. A session evicted or rolled
//!   over mid-fetch commits through the deferred-carry channel instead
//!   of dropping evidence.
//!
//! Everything the request touches is one of three kinds:
//!
//! * **shard-local** — the session record and its colocated `KeyState`
//!   (evidence, verdict, rate bucket, block flag, beacon tokens +
//!   stored scripts, outstanding CAPTCHA challenge), all inside the one
//!   shard entry;
//! * **immutable-shared** — the config, thresholds, the boundary model,
//!   and the [`RewriteEngine`] (page rewriting and probe classification
//!   with no interior mutability at all — probe URLs authenticate
//!   themselves, so classification is recomputation, not lookup);
//! * **global-atomic** — the cache-line-padded per-shard counter cells
//!   and the tracker's occupancy gauges merged at [`Gateway::stats`],
//!   the CAPTCHA id counter, and the under-attack flag.
//!
//! There is no `RwLock`, no global mutex, and no cross-shard anything on
//! the request path; a debug-build regression test asserts the exact
//! lock counts for both taxonomy classes. Because no lock spans the
//! origin fetch, the callback may even reenter the gateway, and
//! executor-driven callers can split the phases across tasks with
//! [`Gateway::handle_deferred`] / [`Gateway::complete`].

use crate::config::{GatewayBuilder, GatewayConfig};
use crate::decision::{challenge_response, Decision, Origin};
use botwall_captcha::{CaptchaService, Challenge};
use botwall_core::classifier::{Reason, Verdict};
use botwall_core::staged::{Stage, StagedPipeline};
use botwall_core::{
    Action, BoundaryClassifier, ChallengeState, CompletedSession, Detector, GateRespond, Gated,
    KeyCarry, KeyState, OriginLease, PendingCaptchaPass, PolicyEngine,
};
use botwall_http::{Request, Response, StatusCode};
use botwall_instrument::{Classified, ProbeKind, ProbeManifest, RewriteEngine, StreamingRewrite};
use botwall_sessions::{Session, SessionKey, SimTime};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Salt applied to the gateway seed for the CAPTCHA generator, so the
/// instrumentation and challenge RNG streams never collide.
const CAPTCHA_SEED_SALT: u64 = 0x0c47_c4a0;

/// A point-in-time snapshot of gateway activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayStats {
    /// Exchanges handled.
    pub requests: u64,
    /// Requests served (origin content, pages, probe objects).
    pub served: u64,
    /// Requests rejected with 429.
    pub throttled: u64,
    /// Requests rejected with 403.
    pub blocked: u64,
    /// Requests answered with a CAPTCHA interstitial.
    pub challenged: u64,
    /// Served requests that were instrumentation traffic.
    pub probe_requests: u64,
    /// Sessions flushed through sweep/drain.
    pub completed_sessions: u64,
    /// Flushed sessions whose label the boundary classifier overrode.
    pub ml_overrides: u64,
    /// Live sessions at snapshot time.
    pub live_sessions: usize,
    /// Tracker shards at snapshot time.
    pub shard_count: usize,
    /// Total bytes moved (requests + responses).
    pub total_bytes: u64,
    /// Bytes attributable to instrumentation: HTML inflation, probe
    /// object payloads, probe-request wire bytes.
    pub instrumentation_bytes: u64,
    /// Challenges issued.
    pub captcha_issued: u64,
    /// Challenges passed.
    pub captcha_passed: u64,
    /// Challenges failed.
    pub captcha_failed: u64,
    /// Outstanding per-session challenge records at snapshot time,
    /// merged across shards (the decentralized successor of the old
    /// global issue table).
    pub pending_challenges: u64,
    /// Outstanding per-session beacon-token entries at snapshot time,
    /// merged across shards (the decentralized successor of the old
    /// global token table).
    pub token_entries: u64,
}

/// One cache-line-padded cell of per-request counters. Requests update
/// the cell their session key hashes to, so concurrent handlers touch
/// different cache lines instead of serializing on one hot counter word.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CounterCell {
    requests: AtomicU64,
    served: AtomicU64,
    throttled: AtomicU64,
    blocked: AtomicU64,
    challenged: AtomicU64,
    probe_requests: AtomicU64,
    total_bytes: AtomicU64,
    instrumentation_bytes: AtomicU64,
}

/// Request counters sharded by session-key hash, merged at
/// [`Gateway::stats`] time. Every request lands in exactly one outcome
/// column (served / throttled / blocked / challenged), so the merged
/// ledger balances exactly even under concurrent ingest.
#[derive(Debug)]
struct ShardedCounters {
    cells: Vec<CounterCell>,
}

impl ShardedCounters {
    fn new(shards: usize) -> ShardedCounters {
        ShardedCounters {
            cells: (0..shards.max(1)).map(|_| CounterCell::default()).collect(),
        }
    }

    fn cell(&self, key: &SessionKey) -> &CounterCell {
        &self.cells[(key.shard_hash() % self.cells.len() as u64) as usize]
    }

    fn sum(&self, f: impl Fn(&CounterCell) -> &AtomicU64) -> u64 {
        self.cells
            .iter()
            .map(|c| f(c).load(Ordering::Relaxed))
            .sum()
    }
}

/// What the gate phase produced inside its critical section — the
/// decision classes that never need the origin.
enum ProducedGate {
    Blocked,
    Throttled,
    Challenged(Challenge),
    /// Instrumentation traffic answered by the gateway itself.
    Probe,
}

/// The gate phase's outcome: a finished decision, or a leased session
/// awaiting its origin fetch.
// Like `Decision`, the `Done` payload dwarfs the lease, but a
// `GatePhase` lives for one request and is matched immediately — boxing
// would only add an allocation to the hot path.
#[allow(clippy::large_enum_variant)]
enum GatePhase {
    Done(Decision),
    Leased(OriginLease),
}

/// A gated request whose decision may still be waiting on the origin —
/// the executor-facing half of the two-phase protocol, returned by
/// [`Gateway::handle_deferred`]. No lock is held in either variant.
// Same trade as `Decision`: one short-lived value per request, moved
// straight to the caller — boxing `Ready` buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
#[must_use = "resolve the pending serve: match on it and complete AwaitingOrigin leases"]
pub enum PendingServe {
    /// The gate decided without the origin (rejection, challenge, probe
    /// object, beacon redemption): the decision is final.
    Ready(Decision),
    /// The session is leased: fetch the origin — on another thread, in
    /// an async task, whenever — then call [`Gateway::complete`].
    AwaitingOrigin(PendingOrigin),
}

/// The lease half of a [`PendingServe`]: the session lease plus the
/// request it was taken for (owned, so the token is `'static` and can
/// cross threads/tasks). Dropping it abandons the exchange — nothing is
/// recorded and nothing leaks; the requests ledger simply keeps one
/// request that never reached an outcome column.
#[derive(Debug)]
#[must_use = "a pending origin serve must be completed (or dropped to abandon the exchange)"]
pub struct PendingOrigin {
    lease: OriginLease,
    request: Request,
}

impl PendingOrigin {
    /// The request awaiting its origin content.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// The session the exchange belongs to.
    pub fn key(&self) -> &SessionKey {
        self.lease.key()
    }
}

/// An HTML page serve streaming through the rewriter, produced by
/// [`Gateway::begin_page_stream`] once the origin response head turns
/// out to be a page: origin body chunks go in via [`PageStream::write`],
/// rewritten bytes come out as they resolve, and
/// [`Gateway::finish_page_stream`] commits the exchange when the body
/// ends. Holds no lock and no engine borrow — it rides inside a
/// connection slot across event-loop turns.
#[derive(Debug)]
pub struct PageStream {
    /// `None` when the lease died before the stream began: the page
    /// passes through uninstrumented, like the buffered lost path.
    rewrite: Option<StreamingRewrite>,
}

impl PageStream {
    /// Whether this stream is actually instrumenting (false on the
    /// lost-lease passthrough).
    pub fn instrumented(&self) -> bool {
        self.rewrite.is_some()
    }

    /// Feeds one origin body chunk; rewritten output is appended to
    /// `out` as soon as it resolves.
    pub fn write(&mut self, chunk: &[u8], out: &mut Vec<u8>) {
        match &mut self.rewrite {
            Some(rewrite) => rewrite.write(chunk, out),
            None => out.extend_from_slice(chunk),
        }
    }

    /// High-water mark of bytes the rewriter has held back — the
    /// O(chunk)-memory gauge (0 for passthrough streams).
    pub fn peak_buffered(&self) -> usize {
        self.rewrite.as_ref().map_or(0, |r| r.peak_buffered())
    }
}

/// What a finished streaming serve amounted to, returned by
/// [`Gateway::finish_page_stream`] (the streaming counterpart of
/// [`Decision::Serve`] — the body itself already went to the client).
#[derive(Debug)]
pub struct StreamedServe {
    /// The session served.
    pub key: SessionKey,
    /// The session's verdict after folding the exchange.
    pub verdict: Verdict,
    /// The injected-probe manifest (`None` on the lost-lease
    /// passthrough — nothing was injected).
    pub manifest: Option<ProbeManifest>,
}

/// The single front door over the detection core.
///
/// One `Gateway` owns the whole per-deployment composition the paper
/// describes: the immutable page-rewrite engine, the sessionized
/// detector (sharded tracker with colocated evidence/policy/token/
/// challenge state), the policy engine, and the stateless CAPTCHA
/// service. Every exchange goes through [`Gateway::handle`] or
/// [`Gateway::handle_with`]; idle sessions flush through
/// [`Gateway::sweep`] / [`Gateway::drain`]. All of it takes `&self` —
/// see the module docs for the locking model.
///
/// # Examples
///
/// ```
/// use botwall_gateway::{Decision, Gateway};
/// use botwall_http::request::ClientIp;
/// use botwall_http::{Method, Request};
/// use botwall_sessions::SimTime;
///
/// let gw = Gateway::builder().seed(1).build();
/// let req = Request::builder(Method::Get, "http://site.example/x.html")
///     .header("User-Agent", "curl/7.0")
///     .client(ClientIp::new(9))
///     .build()
///     .unwrap();
/// // No origin hooked up: ordinary paths 404, but the exchange is
/// // observed and sessionized all the same.
/// let d = gw.handle(&req, SimTime::ZERO);
/// assert!(d.is_serve());
/// assert_eq!(gw.stats().live_sessions, 1);
/// ```
pub struct Gateway {
    config: GatewayConfig,
    engine: RewriteEngine,
    detector: Detector,
    policy: PolicyEngine,
    captcha: CaptchaService,
    boundary: Option<Box<dyn BoundaryClassifier + Send + Sync>>,
    counters: ShardedCounters,
    completed_sessions: AtomicU64,
    ml_overrides: AtomicU64,
}

/// Builds the uncacheable HTML response a page serve puts on the wire.
fn page_response(html: String) -> Response {
    let mut response = Response::builder(StatusCode::OK)
        .header("Content-Type", "text/html")
        .body_bytes(html.into_bytes())
        .build();
    RewriteEngine::mark_uncacheable(&mut response);
    response
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .field("boundary", &self.boundary.is_some())
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Starts a [`GatewayBuilder`].
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder::new()
    }

    /// Assembles a gateway from a config plus optional boundary
    /// classifier (the builder's terminal step).
    pub(crate) fn from_parts(
        config: GatewayConfig,
        boundary: Option<Box<dyn BoundaryClassifier + Send + Sync>>,
    ) -> Gateway {
        let counter_shards = config.detector.tracker.shards;
        Gateway {
            engine: RewriteEngine::new(config.instrument.clone(), config.seed),
            detector: Detector::new(config.detector.clone()),
            policy: PolicyEngine::new(config.policy.clone()),
            captcha: CaptchaService::new(config.captcha, config.seed ^ CAPTCHA_SEED_SALT),
            boundary,
            counters: ShardedCounters::new(counter_shards),
            completed_sessions: AtomicU64::new(0),
            ml_overrides: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this gateway was built with.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Read access to the detection engine (verdicts, evidence, tracker).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The shared, immutable rewrite engine.
    pub fn engine(&self) -> &RewriteEngine {
        &self.engine
    }

    /// The current fast-path verdict for a session.
    pub fn verdict(&self, key: &SessionKey) -> Verdict {
        self.detector.verdict(key)
    }

    /// Whether a session is blocked.
    pub fn is_blocked(&self, key: &SessionKey) -> bool {
        self.detector
            .with_key_state(key, |_, state| state.policy.is_blocked())
            .unwrap_or(false)
    }

    /// Flips the under-attack flag consulted by the
    /// [`botwall_captcha::ServingPolicy::MandatoryUnderAttack`] policy.
    /// Atomic and `&self`: an operator can flip it while traffic is in
    /// flight, without pausing the request path.
    pub fn set_under_attack(&self, yes: bool) {
        self.captcha.set_under_attack(yes);
    }

    /// Handles one exchange with no origin behind the gateway: probe and
    /// beacon traffic is answered in full; allowed ordinary paths 404.
    pub fn handle(&self, request: &Request, now: SimTime) -> Decision {
        self.handle_with(request, now, |_| Origin::NotFound)
    }

    /// Handles one exchange end to end: classify against the
    /// instrumentation, gate through policy with the session's verdict
    /// as of the previous request, serve probe objects directly, pull
    /// origin content through `origin` for allowed ordinary requests
    /// (instrumenting HTML pages on the way out), and feed the final
    /// exchange back into the detector — error responses included, so
    /// rejected traffic keeps feeding the behavioural thresholds.
    ///
    /// Decisions that need no origin complete inside one shard critical
    /// section. When origin content is needed, the session is *leased*:
    /// the `origin` callback runs with **no lock held** (it may block,
    /// sleep, or even reenter this gateway without stalling any other
    /// session), and a second, short critical section commits the
    /// finished exchange. To run the fetch elsewhere entirely (thread
    /// pool, async task), use [`Gateway::handle_deferred`].
    pub fn handle_with<F>(&self, request: &Request, now: SimTime, origin: F) -> Decision
    where
        F: FnOnce(&Request) -> Origin,
    {
        match self.gate_phase(request, now) {
            GatePhase::Done(decision) => decision,
            GatePhase::Leased(lease) => {
                // No lock is held here: a slow origin stalls only this
                // request, never its shard.
                let fetched = origin(request);
                self.commit_phase(lease, request, fetched, now)
            }
        }
    }

    /// The executor-facing split of [`Gateway::handle_with`]: runs the
    /// gate phase now and, instead of fetching the origin itself, hands
    /// back a [`PendingServe`] token. `Ready` decisions are final
    /// (rejections, challenges, probe objects, beacon redemptions);
    /// `AwaitingOrigin` tokens carry the session lease across threads or
    /// tasks until [`Gateway::complete`] commits the fetched content. No
    /// lock is held while a token is outstanding.
    ///
    /// # Examples
    ///
    /// ```
    /// use botwall_gateway::{Gateway, Origin, PendingServe};
    /// use botwall_http::request::ClientIp;
    /// use botwall_http::{Method, Request};
    /// use botwall_sessions::SimTime;
    ///
    /// let gw = Gateway::builder().seed(7).build();
    /// let req = Request::builder(Method::Get, "http://site.example/index.html")
    ///     .header("User-Agent", "Mozilla/5.0")
    ///     .client(ClientIp::new(1))
    ///     .build()
    ///     .unwrap();
    /// // Phase one: gate the request. An ordinary allowed request needs
    /// // origin content, so the session comes back leased.
    /// let PendingServe::AwaitingOrigin(pending) = gw.handle_deferred(&req, SimTime::ZERO)
    /// else {
    ///     panic!("fresh ordinary requests await the origin");
    /// };
    /// // ...fetch the origin with no gateway lock held (any thread)...
    /// let html = "<html><head></head><body>hi</body></html>".to_string();
    /// // Phase two: commit the fetched content; the page is
    /// // instrumented into the leased session's state.
    /// let decision = gw.complete(pending, Origin::Page(html), SimTime::ZERO);
    /// assert!(decision.is_serve());
    /// ```
    pub fn handle_deferred(&self, request: &Request, now: SimTime) -> PendingServe {
        match self.gate_phase(request, now) {
            GatePhase::Done(decision) => PendingServe::Ready(decision),
            GatePhase::Leased(lease) => PendingServe::AwaitingOrigin(PendingOrigin {
                lease,
                request: request.clone(),
            }),
        }
    }

    /// Commits a deferred origin fetch (see [`Gateway::handle_deferred`]).
    pub fn complete(&self, pending: PendingOrigin, fetched: Origin, now: SimTime) -> Decision {
        let PendingOrigin { lease, request } = pending;
        self.commit_phase(lease, &request, fetched, now)
    }

    /// Phase two, **streaming** variant — begin. Called when the origin
    /// response head reveals an HTML page: one short critical section
    /// re-binds the lease to mint this page's instrumentation — the RNG
    /// draw, probe URLs, generated script, and the beacon token *issued
    /// into the session immediately*, so a fast browser redeeming a
    /// probe mid-stream already hits live state — and returns a
    /// [`PageStream`] to pump origin body chunks through. The rewrite
    /// is byte-identical to the buffered path ([`Origin::Page`] via
    /// [`Gateway::complete`]) for the same session state.
    ///
    /// A lease whose incarnation died mid-fetch degrades to a
    /// passthrough stream (the page goes out uninstrumented, exactly
    /// like the buffered lost-lease path); the eventual
    /// [`Gateway::finish_page_stream`] then commits through the
    /// deferred-carry channel. Streaming costs three shard acquisitions
    /// per serve (gate, begin, commit) against the buffered path's two
    /// — the price of never materializing the page.
    pub fn begin_page_stream(&self, pending: &PendingOrigin, now: SimTime) -> PageStream {
        let rewrite = self
            .detector
            .with_lease_state(&pending.lease, |session, state| {
                let seed = self
                    .engine
                    .session_stream_seed(session.key().shard_hash(), session.started());
                let stream = {
                    let rng = state.tokens.rng_seeded(seed);
                    self.engine.begin_stream(pending.request.uri(), now, rng)
                };
                if let Some(tok) = stream.token() {
                    state.tokens.issue(
                        pending.request.uri().path(),
                        tok.key,
                        tok.decoys.clone(),
                        Some((tok.js_nonce, tok.js.source.clone())),
                        now,
                        self.engine.config().token_table.max_entries_per_ip,
                    );
                }
                stream
            });
        PageStream { rewrite }
    }

    /// Phase two, **streaming** variant — commit. The origin body has
    /// finished (or died): flush the rewriter's held tail into `out`,
    /// record the exchange, and fold its evidence exactly as the
    /// buffered commit does. `wire_bytes` is what the caller already
    /// put on the wire for this response (head + encoded chunks); the
    /// tail flushed here is added to the byte ledger on top.
    ///
    /// The recorded response is a synthesized `200 text/html` head —
    /// the body bytes are long gone to the client, which is the point
    /// of streaming. Evidence folding only reads the status line and
    /// headers, so detection is unaffected; the per-page byte ledger is
    /// kept by the `wire_bytes` tally instead of `Response::wire_len`.
    pub fn finish_page_stream(
        &self,
        pending: PendingOrigin,
        stream: PageStream,
        out: &mut Vec<u8>,
        wire_bytes: u64,
        now: SimTime,
    ) -> StreamedServe {
        let PendingOrigin { lease, request } = pending;
        let key = lease.key().clone();
        let cell = self.counters.cell(&key);
        let tail_start = out.len();
        let manifest = match stream.rewrite {
            Some(rewrite) => {
                let finished = rewrite.finish(out);
                cell.instrumentation_bytes
                    .fetch_add(finished.manifest.html_overhead as u64, Ordering::Relaxed);
                Some(finished.manifest)
            }
            None => None,
        };
        let respond = || {
            let mut response = Response::builder(StatusCode::OK)
                .header("Content-Type", "text/html")
                .build();
            RewriteEngine::mark_uncacheable(&mut response);
            response
        };
        let (outcome, _, ()) = self.detector.commit_exchange(
            lease,
            &request,
            now,
            |_, state| {
                // Mirrors the buffered serve closure minus the page
                // (already streamed); in_flight bookkeeping and
                // recording happen inside commit_exchange.
                let _ = state;
                (respond(), ())
            },
            || (respond(), ()),
        );
        let bytes = request.wire_len() as u64 + wire_bytes + (out.len() - tail_start) as u64;
        cell.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        cell.served.fetch_add(1, Ordering::Relaxed);
        StreamedServe {
            key,
            verdict: outcome.verdict,
            manifest,
        }
    }

    /// Phase one: one shard critical section covering the policy gate,
    /// sighting resolution, and — for every decision that needs no
    /// origin — the response itself.
    fn gate_phase(&self, request: &Request, now: SimTime) -> GatePhase {
        let key = SessionKey::of(request);
        let cell = self.counters.cell(&key);
        cell.requests.fetch_add(1, Ordering::Relaxed);

        // Stateless pre-classification: probe URLs authenticate
        // themselves against the engine's keyed-hash scheme, beacon
        // URLs are recognized by shape. No state is touched until the
        // session's own critical section resolves the rest.
        let sighting = self.engine.classify(request, now);

        let gated = self.detector.gate(
            request,
            &sighting,
            now,
            self.config.enforcement,
            &self.policy,
            |action, _session, state, classified| {
                match action {
                    Action::Block => GateRespond::Respond(
                        Response::empty(StatusCode::FORBIDDEN),
                        ProducedGate::Blocked,
                    ),
                    Action::Throttle => {
                        // §4.2 escape hatch: a throttled session can be
                        // offered a CAPTCHA instead of a bare 429 —
                        // solving it makes the session ground-truth
                        // human and sheds the rate limit.
                        if self.config.challenge_on_throttle && self.captcha.is_enabled() {
                            let challenge = self.captcha.issue();
                            state.challenge = Some(ChallengeState::new(challenge.id, now));
                            GateRespond::Respond(
                                challenge_response(&challenge),
                                ProducedGate::Challenged(challenge),
                            )
                        } else {
                            GateRespond::Respond(
                                Response::empty(StatusCode::TOO_MANY_REQUESTS),
                                ProducedGate::Throttled,
                            )
                        }
                    }
                    Action::Allow => {
                        // Instrumentation traffic is answered by the
                        // gateway itself — it must flow even under
                        // mandatory-challenge mode, because it is the
                        // channel through which humans prove themselves.
                        // The generated script comes out of this
                        // session's own token state.
                        let js = match classified {
                            Classified::Probe(hit) if hit.kind == ProbeKind::JsFile => {
                                state.tokens.script_for(hit.nonce)
                            }
                            _ => None,
                        };
                        if let Some(response) = self.engine.respond(classified, js) {
                            return GateRespond::Respond(response, ProducedGate::Probe);
                        }

                        // Kandula-style mandatory challenges gate
                        // ordinary traffic for every session not yet
                        // proven human (a deferred pass was already
                        // absorbed at entry creation, so it reads as
                        // proven here).
                        if self.captcha.is_mandatory()
                            && !matches!(state.verdict, Verdict::Human(_))
                        {
                            let challenge = self.captcha.issue();
                            state.challenge = Some(ChallengeState::new(challenge.id, now));
                            return GateRespond::Respond(
                                challenge_response(&challenge),
                                ProducedGate::Challenged(challenge),
                            );
                        }

                        // Ordinary allowed traffic: lease the session
                        // and fetch the origin outside the lock.
                        GateRespond::NeedsOrigin
                    }
                }
            },
        );

        match gated {
            Gated::Done {
                outcome,
                response,
                value,
                ..
            } => {
                // Post-section accounting and decision assembly: the
                // byte ledgers are atomic cells, nothing needs the lock.
                let bytes = (request.wire_len() + response.wire_len()) as u64;
                cell.total_bytes.fetch_add(bytes, Ordering::Relaxed);
                if !matches!(sighting, botwall_instrument::Sighting::Ordinary) {
                    cell.instrumentation_bytes
                        .fetch_add(bytes, Ordering::Relaxed);
                }
                GatePhase::Done(match value {
                    ProducedGate::Blocked => {
                        cell.blocked.fetch_add(1, Ordering::Relaxed);
                        Decision::Block
                    }
                    ProducedGate::Throttled => {
                        cell.throttled.fetch_add(1, Ordering::Relaxed);
                        Decision::Throttle
                    }
                    ProducedGate::Challenged(challenge) => {
                        cell.challenged.fetch_add(1, Ordering::Relaxed);
                        Decision::Challenge(challenge)
                    }
                    ProducedGate::Probe => {
                        cell.served.fetch_add(1, Ordering::Relaxed);
                        cell.probe_requests.fetch_add(1, Ordering::Relaxed);
                        Decision::Serve {
                            response,
                            body: None,
                            manifest: None,
                            verdict: outcome.verdict,
                            key,
                            probe: true,
                        }
                    }
                })
            }
            Gated::NeedsOrigin(lease) => GatePhase::Leased(lease),
        }
    }

    /// Phase two: commits fetched origin content into the leased
    /// session — the second (short) critical section, where pages are
    /// instrumented into the session's token state and the exchange is
    /// recorded. A lease whose incarnation was evicted or rolled over
    /// mid-fetch still answers the client (the page goes out
    /// uninstrumented — there is no session state to hold its beacon
    /// token) and commits through the deferred-carry channel.
    fn commit_phase(
        &self,
        lease: OriginLease,
        request: &Request,
        fetched: Origin,
        now: SimTime,
    ) -> Decision {
        let key = lease.key().clone();
        let cell = self.counters.cell(&key);
        // One mapping from fetched content to the wire, shared by both
        // commit outcomes; only pages differ (instrumented into live
        // session state vs. served plain when the lease was lost).
        let serve = |fetched: Origin, live: Option<(&Session, &mut KeyState)>| match fetched {
            Origin::Page(html) => match live {
                Some((session, state)) => {
                    let seed = self
                        .engine
                        .session_stream_seed(session.key().shard_hash(), session.started());
                    let (rewritten, manifest) = self.engine.instrument_session_page(
                        &html,
                        request.uri(),
                        &mut state.tokens,
                        seed,
                        now,
                    );
                    // The page's wire bytes are tallied below; only the
                    // injected share moves into the overhead column.
                    cell.instrumentation_bytes
                        .fetch_add(manifest.html_overhead as u64, Ordering::Relaxed);
                    (
                        page_response(rewritten.clone()),
                        (Some(rewritten), Some(manifest)),
                    )
                }
                None => (page_response(html.clone()), (Some(html), None)),
            },
            Origin::Response(response) => (response, (None, None)),
            Origin::NotFound => (Response::empty(StatusCode::NOT_FOUND), (None, None)),
        };
        // Exactly one of the two commit closures runs; the fetched
        // content moves into whichever does.
        let fetched = Cell::new(Some(fetched));
        let (outcome, response, (body, manifest)) = self.detector.commit_exchange(
            lease,
            request,
            now,
            |session, state| {
                serve(
                    fetched.take().expect("origin consumed once"),
                    Some((session, state)),
                )
            },
            || serve(fetched.take().expect("origin consumed once"), None),
        );
        let bytes = (request.wire_len() + response.wire_len()) as u64;
        cell.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        cell.served.fetch_add(1, Ordering::Relaxed);
        Decision::Serve {
            response,
            body,
            manifest,
            verdict: outcome.verdict,
            key,
            probe: false,
        }
    }

    /// Offers a CAPTCHA if the serving policy says so.
    pub fn offer_captcha(&self) -> Option<Challenge> {
        if !self.captcha.should_offer() {
            return None;
        }
        Some(self.captcha.issue())
    }

    /// Verifies a CAPTCHA answer; on success the session is marked
    /// ground-truth human. Everything per-key — the outstanding
    /// challenge record, attempt counting, the pass evidence — updates
    /// under the session's one shard lock, and challenge ids are
    /// single-use service-wide, so a captured `(id, answer)` pair is
    /// worthless after its first successful submission.
    ///
    /// A session answering its outstanding challenge record gets a
    /// small fixed attempt budget on the record's authority (exhausting
    /// it consumes the id service-wide and drops the record, so the
    /// next request re-challenges with a fresh one). Any other id — an
    /// earlier challenge of the same session, or the opt-in offer flow
    /// — is accepted if the answer is correct and the id unconsumed,
    /// exactly as the old outstanding table accepted any live entry;
    /// wrong answers there consume nothing, so spraying garbage at
    /// predictable ids cannot invalidate anyone's challenge. If the
    /// keyed session is no longer live (swept or evicted between issue
    /// and answer), the pass parks in the key's shard as a deferred
    /// carry and is credited to the next incarnation on its first
    /// exchange — a correct answer is never silently dropped.
    pub fn verify_captcha(&self, key: &SessionKey, id: u64, answer: &str, now: SimTime) -> bool {
        let tracker = self.detector.tracker();
        let idle_timeout = tracker.config().idle_timeout_ms;
        tracker.with_entry_and_carry(key, |entry, carry| {
            match entry {
                // A session idle past the timeout is already dead — its
                // next exchange rolls it over — so crediting it would
                // bury the pass with the old incarnation. Only a
                // genuinely live session takes the credit directly.
                Some((session, state)) if now.since(session.last_seen()) <= idle_timeout => {
                    let passed = match state.challenge {
                        Some(outstanding) if outstanding.id == id => {
                            // The outstanding record is the single-use
                            // authority for its own id: accept on its
                            // say-so (immune to id pre-burning), within
                            // the attempt budget.
                            if self.captcha.verify_attempt(id, answer) {
                                state.challenge = None;
                                true
                            } else {
                                let record = state.challenge.as_mut().expect("matched above");
                                record.attempts += 1;
                                if record.attempts >= self.config.max_challenge_attempts.max(1) {
                                    // Ground out: consume the id
                                    // everywhere and drop the record so
                                    // the next request re-challenges.
                                    self.captcha.burn(id);
                                    state.challenge = None;
                                }
                                false
                            }
                        }
                        _ => {
                            // No record, or an *older* challenge of this
                            // session (two tabs each rendered one): a
                            // correct answer to any still-unconsumed id
                            // proves the human, exactly as the old
                            // outstanding table accepted any live entry.
                            let passed = self.captcha.verify_once(id, answer);
                            if passed {
                                state.challenge = None;
                            }
                            passed
                        }
                    };
                    if passed {
                        state.record_captcha_pass(session.request_count() as u32, now);
                    }
                    passed
                }
                _ => {
                    // Dead key: consume-on-success only, so garbage
                    // sprayed at predictable ids can never pre-burn the
                    // pass a swept session's answer depends on. The pass
                    // merges into any carry already parked for the key
                    // (e.g. a lost leased exchange).
                    let passed = self.captcha.verify_once(id, answer);
                    if passed {
                        carry.get_or_insert_with(KeyCarry::default).pass =
                            Some(PendingCaptchaPass { at: now });
                    }
                    passed
                }
            }
        })
    }

    /// Marks a CAPTCHA pass for a session directly (harnesses with their
    /// own verification path). Unknown sessions are a no-op.
    pub fn record_captcha_pass(&self, key: &SessionKey, now: SimTime) {
        self.detector.record_captcha_pass(key, now);
    }

    /// Expires idle sessions as of `now`, applying the batch
    /// classification to every flushed session. Per-key instrumentation
    /// state needs no global sweep: tokens and challenge records of
    /// flushed sessions leave *with their entries*, and live sessions'
    /// expired tokens/challenges are purged in the same deterministic
    /// shard walk — so long runs cannot grow an unbounded table
    /// anywhere.
    pub fn sweep(&self, now: SimTime) -> Vec<CompletedSession> {
        let ttl = self.config.instrument.token_table.entry_ttl_ms;
        self.detector.expire_key_state(now, ttl, ttl);
        let completed = self.detector.sweep(now);
        self.finish(completed)
    }

    /// Flushes every session unconditionally (end of deployment).
    pub fn drain(&self) -> Vec<CompletedSession> {
        let completed = self.detector.drain();
        self.finish(completed)
    }

    /// Post-flush bookkeeping shared by sweep and drain: boundary
    /// re-decisions. Per-key policy state needs no cleanup — it lives in
    /// the shard entry and is gone the moment the entry flushes, while a
    /// still-live successor incarnation keeps its own carried state.
    fn finish(&self, mut completed: Vec<CompletedSession>) -> Vec<CompletedSession> {
        self.completed_sessions
            .fetch_add(completed.len() as u64, Ordering::Relaxed);
        if let Some(boundary) = &self.boundary {
            let pipeline = StagedPipeline::new(self.config.staged, |s: &Session| {
                boundary.classify_session(s)
            });
            for cs in completed.iter_mut() {
                if !cs.classifiable {
                    continue;
                }
                let decision = pipeline.decide(&cs.session, &cs.evidence);
                if decision.stage == Stage::MlBoundary && decision.label != cs.label {
                    cs.label = decision.label;
                    cs.reason = Reason::MlBoundary;
                    self.ml_overrides.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        completed
    }

    /// Snapshots the gateway's activity counters, merging the per-shard
    /// cells and the tracker's per-shard occupancy gauges.
    ///
    /// Lock-free and O(shards): the challenge/token occupancy columns
    /// are atomic gauges the tracker maintains incrementally at every
    /// issue/clear/expire/flush, not a walk over live sessions — cheap
    /// enough to poll per request if an operator wants to.
    pub fn stats(&self) -> GatewayStats {
        let (captcha_issued, captcha_passed, captcha_failed) = self.captcha.stats();
        let tracker = self.detector.tracker();
        let (token_entries, pending_challenges) = self.detector.state_gauges();
        GatewayStats {
            requests: self.counters.sum(|c| &c.requests),
            served: self.counters.sum(|c| &c.served),
            throttled: self.counters.sum(|c| &c.throttled),
            blocked: self.counters.sum(|c| &c.blocked),
            challenged: self.counters.sum(|c| &c.challenged),
            probe_requests: self.counters.sum(|c| &c.probe_requests),
            completed_sessions: self.completed_sessions.load(Ordering::Relaxed),
            ml_overrides: self.ml_overrides.load(Ordering::Relaxed),
            live_sessions: tracker.live_count(),
            shard_count: tracker.shard_count(),
            total_bytes: self.counters.sum(|c| &c.total_bytes),
            instrumentation_bytes: self.counters.sum(|c| &c.instrumentation_bytes),
            captcha_issued,
            captcha_passed,
            captcha_failed,
            pending_challenges,
            token_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_captcha::ServingPolicy;
    use botwall_core::classifier::{Label, Reason};
    use botwall_http::request::ClientIp;
    use botwall_http::Method;

    const HTML: &str = "<html><head></head><body><p>x</p></body></html>";

    fn req(ip: u32, uri: &str, ua: &str) -> Request {
        Request::builder(Method::Get, uri)
            .header("User-Agent", ua)
            .client(ClientIp::new(ip))
            .build()
            .unwrap()
    }

    fn page_decision(gw: &Gateway, ip: u32, ua: &str, at: SimTime) -> Decision {
        let r = req(ip, "http://site.example/index.html", ua);
        gw.handle_with(&r, at, |_| Origin::Page(HTML.into()))
    }

    #[test]
    fn gateway_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gateway>();
    }

    #[test]
    fn pages_come_back_instrumented() {
        let gw = Gateway::builder().seed(3).build();
        match page_decision(&gw, 1, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve {
                body,
                manifest,
                probe,
                response,
                ..
            } => {
                let body = body.unwrap();
                assert!(body.contains("onmousemove"));
                assert_eq!(response.body(), body.as_bytes());
                assert!(manifest.unwrap().mouse_beacon.is_some());
                assert!(!probe);
            }
            other => panic!("{other:?}"),
        }
        let stats = gw.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.served, 1);
        assert!(stats.instrumentation_bytes > 0);
        assert!(stats.total_bytes > stats.instrumentation_bytes);
    }

    #[test]
    fn streamed_page_is_byte_identical_to_buffered_serve() {
        // Two gateways with the same seed, one fresh equivalent session
        // each: the buffered commit and the streaming commit must put
        // the exact same bytes on the wire.
        let buffered = match page_decision(
            &Gateway::builder().seed(11).build(),
            9,
            "Mozilla/5.0",
            SimTime::ZERO,
        ) {
            Decision::Serve { body, .. } => body.unwrap(),
            other => panic!("{other:?}"),
        };

        let gw = Gateway::builder().seed(11).build();
        let r = req(9, "http://site.example/index.html", "Mozilla/5.0");
        let PendingServe::AwaitingOrigin(pending) = gw.handle_deferred(&r, SimTime::ZERO) else {
            panic!("ordinary request leases");
        };
        let mut stream = gw.begin_page_stream(&pending, SimTime::ZERO);
        assert!(stream.instrumented());
        let mut out = Vec::new();
        // Arbitrary small chunks, boundaries inside tags.
        for chunk in HTML.as_bytes().chunks(3) {
            stream.write(chunk, &mut out);
        }
        let streamed = gw.finish_page_stream(pending, stream, &mut out, 0, SimTime::ZERO);
        assert_eq!(String::from_utf8(out).unwrap(), buffered);
        let manifest = streamed.manifest.unwrap();
        assert!(manifest.mouse_beacon.is_some());
        assert!(manifest.html_overhead > 0);
        let stats = gw.stats();
        assert_eq!(stats.served, 1);
        assert!(stats.instrumentation_bytes > 0);
    }

    #[test]
    fn streamed_page_token_redeems_mid_stream() {
        // The beacon token is issued at begin_page_stream, before the
        // body has streamed: a fast browser can redeem a probe while the
        // page is still going out.
        let gw = Gateway::builder().seed(12).build();
        let r = req(10, "http://site.example/index.html", "Mozilla/5.0");
        let PendingServe::AwaitingOrigin(pending) = gw.handle_deferred(&r, SimTime::ZERO) else {
            panic!("ordinary request leases");
        };
        let mut stream = gw.begin_page_stream(&pending, SimTime::ZERO);
        let mut out = Vec::new();
        stream.write(&HTML.as_bytes()[..10], &mut out); // body mid-flight
        let js_uri = {
            // The generated script probe is live in the session already.
            let streamed_manifest = gw
                .detector
                .with_lease_state(&pending.lease, |_, state| state.tokens.len())
                .unwrap();
            assert_eq!(streamed_manifest, 1);
            let finished = gw.finish_page_stream(pending, stream, &mut out, 0, SimTime::ZERO);
            finished.manifest.unwrap().js_file.unwrap()
        };
        // And the script URL classifies + serves as a probe afterwards.
        let probe_req = req(10, &js_uri.to_string(), "Mozilla/5.0");
        match gw.handle(&probe_req, SimTime::from_secs(1)) {
            Decision::Serve {
                probe, response, ..
            } => {
                assert!(probe);
                assert!(!response.body().is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mouse_beacon_flows_to_human_verdict() {
        let gw = Gateway::builder().seed(4).build();
        let manifest = match page_decision(&gw, 2, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let beacon = manifest.mouse_beacon.unwrap();
        let r = req(2, &beacon.to_string(), "Mozilla/5.0");
        let d = gw.handle(&r, SimTime::from_secs(2));
        assert_eq!(
            d.verdict(),
            Some(Verdict::Human(Reason::MouseActivity)),
            "{d:?}"
        );
        match d {
            Decision::Serve { probe, .. } => assert!(probe, "beacon is instrumentation traffic"),
            other => panic!("{other:?}"),
        }
        let done = gw.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].label, Label::Human);
    }

    #[test]
    fn probe_objects_are_served_by_the_gateway() {
        let gw = Gateway::builder().seed(5).build();
        let manifest = match page_decision(&gw, 3, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let css = manifest.css_probe.unwrap();
        let d = gw.handle(&req(3, &css.to_string(), "Mozilla/5.0"), SimTime::ZERO);
        match d {
            Decision::Serve {
                probe, response, ..
            } => {
                assert!(probe);
                assert_eq!(response.status(), StatusCode::OK);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(gw.stats().probe_requests, 1);
    }

    #[test]
    fn generated_script_serves_from_session_state() {
        let gw = Gateway::builder().seed(35).build();
        let manifest = match page_decision(&gw, 14, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let js = manifest.js_file.unwrap();
        let d = gw.handle(&req(14, &js.to_string(), "Mozilla/5.0"), SimTime::ZERO);
        match d {
            Decision::Serve { response, .. } => {
                let body = String::from_utf8(response.body().to_vec()).unwrap();
                assert!(
                    body.contains("new Image()"),
                    "script must come back from the session's token state"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_signal_sessions_get_throttled_then_survive_enforcement_off() {
        let mut throttled = 0;
        let gw = Gateway::builder().seed(6).build();
        for i in 0..40 {
            let r = req(4, &format!("http://site.example/{i}.html"), "wget/1.0");
            if !gw
                .handle_with(&r, SimTime::from_secs(i / 4), |_| Origin::Page(HTML.into()))
                .is_serve()
            {
                throttled += 1;
            }
        }
        assert!(throttled > 0, "no-signal session must hit the robot limit");
        // Enforcement off: everything flows.
        let open = Gateway::builder().seed(6).enforcement(false).build();
        for i in 0..40 {
            let r = req(4, &format!("http://site.example/{i}.html"), "wget/1.0");
            assert!(open
                .handle_with(&r, SimTime::from_secs(i / 4), |_| Origin::Page(HTML.into()))
                .is_serve());
        }
    }

    #[test]
    fn mandatory_mode_challenges_until_passed() {
        let gw = Gateway::builder()
            .seed(7)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(5, "http://site.example/index.html", "Mozilla/5.0");
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("expected a challenge, got {d:?}");
        };
        // Solve it: the session becomes ground-truth human and is served.
        let key = SessionKey::of(&r);
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(1)));
        assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
        let d = gw.handle_with(&r, SimTime::from_secs(2), |_| Origin::Page(HTML.into()));
        assert!(d.is_serve(), "{d:?}");
        assert_eq!(gw.stats().challenged, 1);
        assert_eq!(gw.stats().captcha_passed, 1);
    }

    #[test]
    fn captcha_pass_in_the_stale_unswept_window_credits_the_next_incarnation() {
        // The user answers correctly after the idle timeout but BEFORE
        // any sweep: the old incarnation still sits in the tracker, yet
        // it is dead — its next exchange rolls it over. The pass must
        // ride to the successor, not be buried with the corpse.
        let gw = Gateway::builder()
            .seed(22)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(10, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("{d:?}");
        };
        // Answer lands idle_timeout + ε later; no sweep has run.
        let late = SimTime::from_hours(1) + 1;
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, late));
        // The next request rolls the session over — and must be served
        // as the proven human, not re-challenged.
        let d = gw.handle_with(&r, late + 1, |_| Origin::Page(HTML.into()));
        match d {
            Decision::Serve { verdict, .. } => {
                assert_eq!(verdict, Verdict::Human(Reason::CaptchaPassed));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn captcha_pass_survives_session_expiry_between_issue_and_answer() {
        // The user solves the challenge, but slower than the idle
        // timeout: the session is swept away before the answer arrives.
        // The pass must carry over to the key's next incarnation instead
        // of vanishing into a re-challenge loop.
        let gw = Gateway::builder()
            .seed(21)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(9, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let d = gw.handle_with(&r, SimTime::ZERO, |_| Origin::Page(HTML.into()));
        let Decision::Challenge(ch) = d else {
            panic!("{d:?}");
        };
        // The session idles out and is flushed before the answer lands.
        assert_eq!(gw.sweep(SimTime::from_hours(2)).len(), 1);
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_hours(2) + 1));
        // The key's next exchange is served, not re-challenged, and the
        // pending pass is credited to the new incarnation.
        let d = gw.handle_with(&r, SimTime::from_hours(2) + 2, |_| {
            Origin::Page(HTML.into())
        });
        match d {
            Decision::Serve { verdict, .. } => {
                assert_eq!(verdict, Verdict::Human(Reason::CaptchaPassed));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn a_solved_challenge_cannot_be_replayed_by_other_sessions() {
        // One bot observes a human solving challenge (id, answer) and
        // the whole fleet replays it: only the first verification may
        // ever succeed. (The old global issue table got this by deleting
        // the entry; the stateless service gets it from the redeemed-id
        // set.)
        let gw = Gateway::builder()
            .seed(24)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let human = req(20, "http://site.example/index.html", "Mozilla/5.0");
        let Decision::Challenge(ch) = gw.handle_with(&human, SimTime::ZERO, |_| Origin::NotFound)
        else {
            panic!("challenge expected");
        };
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(
            &SessionKey::of(&human),
            ch.id,
            &answer,
            SimTime::from_secs(1)
        ));
        // Every replaying bot session fails verification, stays
        // unproven, and keeps getting challenged.
        for bot in 21..26u32 {
            let r = req(bot, "http://site.example/index.html", "Mozilla/5.0");
            gw.handle_with(&r, SimTime::from_secs(2), |_| Origin::NotFound);
            let key = SessionKey::of(&r);
            assert!(
                !gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(3)),
                "replayed (id, answer) must not verify"
            );
            assert_eq!(gw.verdict(&key), Verdict::Undecided);
            let d = gw.handle_with(&r, SimTime::from_secs(4), |_| Origin::NotFound);
            assert!(matches!(d, Decision::Challenge(_)), "{d:?}");
        }
        // And a dead-key replay parks no phantom carry either.
        let r = req(99, "http://site.example/index.html", "Mozilla/5.0");
        let ghost = SessionKey::of(&r);
        assert!(!gw.verify_captcha(&ghost, ch.id, &answer, SimTime::from_secs(5)));
        let d = gw.handle_with(&r, SimTime::from_secs(6), |_| Origin::NotFound);
        assert!(matches!(d, Decision::Challenge(_)), "{d:?}");
    }

    #[test]
    fn an_earlier_challenge_of_the_same_session_still_verifies() {
        // Two tabs: the session is challenged twice (ids A then B, the
        // record holds B), and the human solves the one they rendered
        // first. A correct answer to A must still prove them — the old
        // outstanding table accepted any live entry.
        let gw = Gateway::builder()
            .seed(25)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(27, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let Decision::Challenge(a) = gw.handle_with(&r, SimTime::ZERO, |_| Origin::NotFound) else {
            panic!("challenge expected");
        };
        let Decision::Challenge(b) =
            gw.handle_with(&r, SimTime::from_secs(1), |_| Origin::NotFound)
        else {
            panic!("challenge expected");
        };
        assert_ne!(a.id, b.id);
        let answer = a.answer().to_string();
        assert!(gw.verify_captcha(&key, a.id, &answer, SimTime::from_secs(2)));
        assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
        assert_eq!(
            gw.stats().pending_challenges,
            0,
            "record cleared by the pass"
        );
    }

    #[test]
    fn garbage_sprayed_at_predictable_ids_cannot_preburn_a_deferred_pass() {
        // A swept session's correct answer rides the deferred-carry
        // channel; an attacker spraying wrong answers at the (sequential,
        // guessable) id beforehand must not consume it.
        let gw = Gateway::builder()
            .seed(26)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(28, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let Decision::Challenge(ch) = gw.handle_with(&r, SimTime::ZERO, |_| Origin::NotFound)
        else {
            panic!("challenge expected");
        };
        // The session is swept before the answer arrives...
        assert_eq!(gw.sweep(SimTime::from_hours(2)).len(), 1);
        // ...and an attacker grinds wrong answers at the id from a key
        // that has no session at all.
        let attacker = req(666, "http://site.example/x.html", "evil/1.0");
        let attacker_key = SessionKey::of(&attacker);
        for i in 0..10 {
            assert!(!gw.verify_captcha(
                &attacker_key,
                ch.id,
                &format!("wrong{i}"),
                SimTime::from_hours(2) + i
            ));
        }
        // The human's late correct answer still lands and carries over.
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_hours(2) + 100));
        let d = gw.handle_with(&r, SimTime::from_hours(2) + 200, |_| Origin::NotFound);
        assert_eq!(
            d.verdict(),
            Some(Verdict::Human(Reason::CaptchaPassed)),
            "{d:?}"
        );
    }

    #[test]
    fn wrong_answers_burn_attempts_then_the_record() {
        let gw = Gateway::builder()
            .seed(23)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        gw.set_under_attack(true);
        let r = req(11, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let Decision::Challenge(ch) = gw.handle_with(&r, SimTime::ZERO, |_| Origin::NotFound)
        else {
            panic!("challenge expected");
        };
        assert_eq!(gw.stats().pending_challenges, 1);
        let attempts = gw.config().max_challenge_attempts;
        for i in 0..attempts {
            assert!(!gw.verify_captcha(&key, ch.id, "wrong", SimTime::from_secs(1 + u64::from(i))));
        }
        // Record burned: the outstanding-challenge column drops to zero
        // without any sweep.
        assert_eq!(gw.stats().pending_challenges, 0);
        assert_eq!(gw.stats().captcha_failed, u64::from(attempts));
        assert_eq!(gw.verdict(&key), Verdict::Undecided);
    }

    #[test]
    fn challenge_attempt_budget_is_configurable() {
        // A one-attempt deployment burns the record on the first wrong
        // answer; the next request re-challenges with a fresh id.
        let gw = Gateway::builder()
            .seed(51)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .max_challenge_attempts(1)
            .build();
        gw.set_under_attack(true);
        let r = req(52, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        let Decision::Challenge(ch) = gw.handle_with(&r, SimTime::ZERO, |_| Origin::NotFound)
        else {
            panic!("challenge expected");
        };
        assert!(!gw.verify_captcha(&key, ch.id, "wrong", SimTime::from_secs(1)));
        assert_eq!(
            gw.stats().pending_challenges,
            0,
            "single wrong answer burns the record at attempts=1"
        );
        let Decision::Challenge(fresh) =
            gw.handle_with(&r, SimTime::from_secs(2), |_| Origin::NotFound)
        else {
            panic!("re-challenge expected");
        };
        assert_ne!(fresh.id, ch.id, "burned id is never re-served");
        // The burned id is consumed service-wide: even the right answer
        // is worthless now.
        let answer = ch.answer().to_string();
        assert!(!gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(3)));
    }

    #[test]
    fn origin_variants_map_to_responses() {
        let gw = Gateway::builder().seed(8).build();
        let r = req(6, "http://site.example/asset.bin", "Mozilla/5.0");
        let d = gw.handle_with(&r, SimTime::ZERO, |_| {
            Origin::Response(
                Response::builder(StatusCode::OK)
                    .header("Content-Type", "application/octet-stream")
                    .body_bytes(vec![1, 2, 3])
                    .build(),
            )
        });
        match d {
            Decision::Serve {
                response,
                body,
                manifest,
                ..
            } => {
                assert_eq!(response.body(), &[1, 2, 3]);
                assert!(body.is_none());
                assert!(manifest.is_none());
            }
            other => panic!("{other:?}"),
        }
        let d = gw.handle(
            &req(6, "http://site.example/nope", "Mozilla/5.0"),
            SimTime::ZERO,
        );
        assert_eq!(d.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn sweep_flushes_idle_sessions_and_forgets_policy_state() {
        let gw = Gateway::builder().seed(9).build();
        page_decision(&gw, 7, "Mozilla/5.0", SimTime::ZERO);
        assert!(gw.sweep(SimTime::from_secs(10)).is_empty());
        let done = gw.sweep(SimTime::from_hours(2));
        assert_eq!(done.len(), 1);
        assert_eq!(gw.stats().completed_sessions, 1);
        assert_eq!(gw.stats().live_sessions, 0);
    }

    #[test]
    fn boundary_classifier_overrides_boundary_cases_at_flush() {
        // JS-without-mouse over a long session is the boundary case the
        // ML stage exists for; a classifier that calls everything human
        // must override the set-algebra robot label.
        let build = |with_ml: bool| {
            let b = Gateway::builder().seed(10).enforcement(false);
            let b = if with_ml {
                b.boundary(|_: &Session| Some(Label::Human))
            } else {
                b
            };
            let gw = b.build();
            let manifest = match page_decision(&gw, 8, "Mozilla/5.0", SimTime::ZERO) {
                Decision::Serve { manifest, .. } => manifest.unwrap(),
                other => panic!("{other:?}"),
            };
            // Execute JS (honestly) but never move the mouse.
            let agent = manifest.agent_beacon.unwrap();
            let fetch = format!(
                "{agent}?agent={}",
                botwall_http::UserAgent::canonicalize("Mozilla/5.0")
            );
            gw.handle(&req(8, &fetch, "Mozilla/5.0"), SimTime::from_secs(1));
            // Burn past the classification minimum.
            for i in 0..30 {
                gw.handle_with(
                    &req(8, &format!("http://site.example/{i}.html"), "Mozilla/5.0"),
                    SimTime::from_secs(2 + i),
                    |_| Origin::Page(HTML.into()),
                );
            }
            let done = gw.drain();
            (done[0].label, done[0].reason, gw.stats().ml_overrides)
        };
        let (without, reason, overrides) = build(false);
        assert_eq!(without, Label::Robot);
        assert_eq!(reason, Reason::JsWithoutMouse);
        assert_eq!(overrides, 0);
        let (with, reason, overrides) = build(true);
        assert_eq!(with, Label::Human);
        assert_eq!(reason, Reason::MlBoundary, "label and reason must agree");
        assert_eq!(overrides, 1);
    }

    #[test]
    fn stats_snapshot_reports_shards() {
        let gw = Gateway::builder().seed(11).build();
        assert_eq!(gw.stats().shard_count, 16);
    }

    #[test]
    fn stats_merge_token_and_challenge_occupancy_across_shards() {
        let gw = Gateway::builder().seed(36).build();
        assert_eq!(gw.stats().token_entries, 0);
        // Each instrumented page parks one token entry in its session's
        // shard; the snapshot folds them back together.
        for ip in 0..8 {
            page_decision(&gw, 100 + ip, "Mozilla/5.0", SimTime::ZERO);
        }
        let stats = gw.stats();
        assert_eq!(stats.token_entries, 8);
        assert_eq!(stats.pending_challenges, 0);
        // Sweeping the sessions takes their tokens with them — no
        // orphaned global table to leak.
        gw.sweep(SimTime::from_hours(2));
        let stats = gw.stats();
        assert_eq!(stats.token_entries, 0);
        assert_eq!(stats.live_sessions, 0);
    }

    #[test]
    fn stats_parity_across_identical_runs() {
        // The decentralized stats must reproduce exactly: same traffic,
        // same snapshot, field for field.
        let run = || {
            let gw = Gateway::builder()
                .seed(37)
                .challenge_on_throttle(true)
                .build();
            for i in 0..30u64 {
                let r = req(
                    (1 + i % 3) as u32,
                    &format!("http://site.example/{}.html", i % 7),
                    "wget/1.0",
                );
                gw.handle_with(&r, SimTime::from_secs(i), |_| Origin::Page(HTML.into()));
            }
            gw.stats()
        };
        assert_eq!(run(), run());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_ledger_pins_the_two_phase_taxonomy() {
        use botwall_sessions::sync::counters;
        // The PR-5 taxonomy: decisions that need no origin cost exactly
        // one shard lock (the fused gate section); origin serves cost
        // exactly two (gate + commit), with NONE held during the fetch.
        // Zero global locks everywhere.
        let gw = Gateway::builder().seed(38).build();
        let manifest = match page_decision(&gw, 60, "Mozilla/5.0", SimTime::ZERO) {
            Decision::Serve { manifest, .. } => manifest.unwrap(),
            other => panic!("{other:?}"),
        };
        let beacon = manifest.mouse_beacon.unwrap();
        let d = gw.handle(
            &req(60, &beacon.to_string(), "Mozilla/5.0"),
            SimTime::from_secs(1),
        );
        assert_eq!(d.verdict(), Some(Verdict::Human(Reason::MouseActivity)));

        // Origin serves: steady-state ordinary pass-through and a fully
        // instrumented page serve both take gate + commit.
        let r = req(60, "http://site.example/steady.html", "Mozilla/5.0");
        counters::reset();
        let d = gw.handle_with(&r, SimTime::from_secs(2), |_| {
            Origin::Response(Response::empty(StatusCode::OK))
        });
        assert!(d.is_serve(), "{d:?}");
        assert_eq!(
            counters::snapshot(),
            (2, 0),
            "origin serve = exactly (gate, commit) shard locks, no globals"
        );
        counters::reset();
        let d = page_decision(&gw, 60, "Mozilla/5.0", SimTime::from_secs(3));
        assert!(d.is_serve());
        assert_eq!(counters::snapshot(), (2, 0), "page serve");

        // Proof that no lock spans the fetch: the origin callback can
        // itself drive a full request through the SAME session's shard.
        counters::reset();
        let d = gw.handle_with(
            &req(60, "http://site.example/outer.html", "Mozilla/5.0"),
            SimTime::from_secs(4),
            |_| {
                let nested = gw.handle_with(
                    &req(60, "http://site.example/nested.html", "Mozilla/5.0"),
                    SimTime::from_secs(4),
                    |_| Origin::Response(Response::empty(StatusCode::OK)),
                );
                assert!(nested.is_serve(), "reentrant same-key handle: {nested:?}");
                Origin::Response(Response::empty(StatusCode::OK))
            },
        );
        assert!(d.is_serve(), "{d:?}");
        assert_eq!(counters::snapshot(), (4, 0), "outer (2) + nested (2)");

        // Non-origin decisions stay single-lock: beacon redemption...
        let Decision::Serve { manifest, .. } =
            page_decision(&gw, 60, "Mozilla/5.0", SimTime::from_secs(5))
        else {
            unreachable!()
        };
        let beacon = manifest.unwrap().mouse_beacon.unwrap();
        counters::reset();
        gw.handle(
            &req(60, &beacon.to_string(), "Mozilla/5.0"),
            SimTime::from_secs(6),
        );
        assert_eq!(counters::snapshot(), (1, 0), "beacon redemption");
        // ...probe objects...
        let Decision::Serve { manifest, .. } =
            page_decision(&gw, 60, "Mozilla/5.0", SimTime::from_secs(7))
        else {
            unreachable!()
        };
        let css = manifest.unwrap().css_probe.unwrap();
        counters::reset();
        let d = gw.handle(
            &req(60, &css.to_string(), "Mozilla/5.0"),
            SimTime::from_secs(8),
        );
        assert!(d.is_serve());
        assert_eq!(counters::snapshot(), (1, 0), "probe serve");
        // ...and challenges (the origin is never consulted).
        let mandatory = Gateway::builder()
            .seed(39)
            .captcha(ServingPolicy::MandatoryUnderAttack)
            .build();
        mandatory.set_under_attack(true);
        let r = req(61, "http://site.example/index.html", "Mozilla/5.0");
        counters::reset();
        let d = mandatory.handle_with(&r, SimTime::ZERO, |_| {
            panic!("challenged requests must not touch the origin")
        });
        assert!(matches!(d, Decision::Challenge(_)), "{d:?}");
        assert_eq!(counters::snapshot(), (1, 0), "challenge");
    }

    #[test]
    fn handle_deferred_splits_the_phases_across_call_sites() {
        let gw = Gateway::builder().seed(50).build();
        let r = req(70, "http://site.example/index.html", "Mozilla/5.0");
        let pending = match gw.handle_deferred(&r, SimTime::ZERO) {
            PendingServe::AwaitingOrigin(p) => p,
            PendingServe::Ready(d) => panic!("ordinary request needs the origin: {d:?}"),
        };
        assert_eq!(pending.key(), &SessionKey::of(&r));
        assert_eq!(pending.request().uri(), r.uri());
        // While the token is outstanding, no lock is held and the
        // exchange is not yet recorded.
        assert_eq!(gw.stats().requests, 1);
        assert_eq!(
            gw.detector()
                .tracker()
                .get(pending.key())
                .unwrap()
                .request_count(),
            0
        );
        let d = gw.complete(pending, Origin::Page(HTML.into()), SimTime::from_secs(1));
        match &d {
            Decision::Serve { manifest, body, .. } => {
                assert!(body.as_ref().unwrap().contains("onmousemove"));
                assert!(manifest.as_ref().unwrap().mouse_beacon.is_some());
            }
            other => panic!("{other:?}"),
        }
        let stats = gw.stats();
        assert_eq!((stats.requests, stats.served), (1, 1));
        // A probe fetch resolves Ready: no origin involved.
        let Decision::Serve { manifest, .. } = d else {
            unreachable!()
        };
        let css = manifest.unwrap().css_probe.unwrap();
        match gw.handle_deferred(
            &req(70, &css.to_string(), "Mozilla/5.0"),
            SimTime::from_secs(2),
        ) {
            PendingServe::Ready(d) => assert!(d.is_serve()),
            PendingServe::AwaitingOrigin(_) => panic!("probe traffic never leases"),
        }
    }

    #[test]
    fn dropping_a_pending_origin_abandons_the_exchange_cleanly() {
        let gw = Gateway::builder().seed(52).build();
        let r = req(71, "http://site.example/index.html", "Mozilla/5.0");
        let key = SessionKey::of(&r);
        match gw.handle_deferred(&r, SimTime::ZERO) {
            PendingServe::AwaitingOrigin(pending) => drop(pending),
            PendingServe::Ready(d) => panic!("{d:?}"),
        }
        // The gate created the session, but the abandoned exchange was
        // never recorded and nothing parked anywhere.
        assert_eq!(
            gw.detector().tracker().get(&key).unwrap().request_count(),
            0
        );
        assert_eq!(gw.detector().tracker().carry_count(), 0);
        assert_eq!(gw.stats().served, 0);
        // Sweep reclaims the empty session like any idle one.
        assert_eq!(gw.sweep(SimTime::from_hours(2)).len(), 1);
        assert_eq!(gw.stats().live_sessions, 0);
    }

    #[test]
    fn stats_gauges_match_a_full_fold() {
        // The O(shards) gauge snapshot must agree exactly with an
        // O(live-sessions) fold over the colocated state, across page
        // issues, challenge issues/clears, expiry, and flushes.
        let gw = Gateway::builder()
            .seed(53)
            .challenge_on_throttle(true)
            .build();
        for i in 0..60u64 {
            let r = req(
                (80 + i % 6) as u32,
                &format!("http://site.example/{}.html", i % 9),
                if i % 2 == 0 {
                    "Mozilla/5.0"
                } else {
                    "wget/1.0"
                },
            );
            gw.handle_with(&r, SimTime::from_secs(i / 2), |_| Origin::Page(HTML.into()));
        }
        let parity = |gw: &Gateway| {
            let stats = gw.stats();
            let (folded_challenges, folded_tokens) =
                gw.detector()
                    .fold_key_states((0u64, 0u64), |(pending, tokens), _, state| {
                        (
                            pending + u64::from(state.challenge.is_some()),
                            tokens + state.tokens.len() as u64,
                        )
                    });
            assert_eq!(
                (stats.pending_challenges, stats.token_entries),
                (folded_challenges, folded_tokens),
                "gauges must mirror the fold"
            );
            assert!(stats.token_entries > 0 || stats.live_sessions == 0);
        };
        parity(&gw);
        gw.sweep(SimTime::from_secs(10));
        parity(&gw);
        gw.sweep(SimTime::from_hours(3));
        parity(&gw);
        assert_eq!(gw.stats().token_entries, 0, "everything flushed");
    }

    #[test]
    fn blocked_sessions_stay_blocked_across_idle_rollover() {
        // A robot trips the behavioural thresholds and gets blocked, goes
        // quiet past the idle timeout, then returns: the successor
        // incarnation must still be blocked (the policy block flag
        // carries over at rollover; only a full flush with no live
        // successor clears it).
        let gw = Gateway::builder().seed(30).build();
        let mk = |i: u64| {
            req(
                12,
                &format!("http://site.example/cgi-bin/x{i}?q=1"),
                "wget/1.0",
            )
        };
        let key = SessionKey::of(&mk(0));
        let mut saw_block = false;
        for i in 0..40 {
            let d = gw.handle_with(&mk(i), SimTime::from_secs(i), |_| Origin::NotFound);
            if matches!(d, Decision::Block) {
                saw_block = true;
                break;
            }
        }
        assert!(saw_block, "CGI storm over 404s must trip a threshold");
        assert!(gw.is_blocked(&key));
        // Two hours later, the same key returns: still blocked.
        let later = SimTime::from_hours(3);
        let d = gw.handle_with(&mk(99), later, |_| Origin::NotFound);
        assert!(matches!(d, Decision::Block), "{d:?}");
        assert!(gw.is_blocked(&key));
        // A sweep flushes both incarnations; with no live successor the
        // key starts clean.
        gw.sweep(SimTime::from_hours(5));
        assert!(!gw.is_blocked(&key));
    }

    #[test]
    fn throttle_escape_hatch_serves_a_challenge_instead_of_429() {
        let gw = Gateway::builder()
            .seed(31)
            .challenge_on_throttle(true)
            .build();
        let mk = |i: u64| req(13, &format!("http://site.example/{i}.html"), "wget/1.0");
        // Crawl as a no-signal robot (1 req/s — under the blocking rate
        // threshold, over the robot bucket's refill) until the rate
        // limit bites.
        let mut challenge = None;
        for i in 0..60 {
            match gw.handle_with(&mk(i), SimTime::from_secs(i), |_| Origin::Page(HTML.into())) {
                Decision::Challenge(ch) => {
                    challenge = Some(ch);
                    break;
                }
                Decision::Throttle => panic!("escape hatch must replace bare 429s"),
                _ => {}
            }
        }
        let ch = challenge.expect("robot-paced session must get challenged");
        let stats = gw.stats();
        assert_eq!(stats.throttled, 0);
        assert!(stats.challenged > 0);
        assert_eq!(
            stats.requests,
            stats.served + stats.throttled + stats.blocked + stats.challenged,
            "every request lands in exactly one outcome column"
        );
        // Solving the challenge lifts the limit: ground-truth human.
        let key = SessionKey::of(&mk(0));
        let answer = ch.answer().to_string();
        assert!(gw.verify_captcha(&key, ch.id, &answer, SimTime::from_secs(60)));
        assert_eq!(gw.verdict(&key), Verdict::Human(Reason::CaptchaPassed));
        for i in 0..20 {
            let d = gw.handle_with(&mk(100 + i), SimTime::from_secs(61), |_| {
                Origin::Page(HTML.into())
            });
            assert!(d.is_serve(), "proven humans are never rate limited: {d:?}");
        }
    }

    #[test]
    fn concurrent_handles_share_one_gateway() {
        use std::sync::Arc;
        let gw = Arc::new(Gateway::builder().seed(32).build());
        let handles: Vec<_> = (0..4u32)
            .map(|n| {
                let gw = Arc::clone(&gw);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let r = req(
                            40 + n,
                            &format!("http://site.example/{i}.html"),
                            "Mozilla/5.0",
                        );
                        gw.handle_with(&r, SimTime::from_secs(i), |_| Origin::Page(HTML.into()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = gw.stats();
        assert_eq!(stats.requests, 200);
        assert_eq!(
            stats.requests,
            stats.served + stats.throttled + stats.blocked + stats.challenged
        );
        assert_eq!(stats.live_sessions, 4);
    }
}
