//! The gateway's typed request decision.

use botwall_captcha::Challenge;
use botwall_core::classifier::Verdict;
use botwall_http::{Response, StatusCode};
use botwall_instrument::ProbeManifest;
use botwall_sessions::SessionKey;
use serde::{Deserialize, Serialize};

/// What the origin behind the gateway produced for a request.
///
/// [`Gateway::handle_with`] consults its origin callback only when the
/// request was allowed through policy and is not instrumentation traffic
/// (probes and beacons are answered by the gateway itself).
///
/// [`Gateway::handle_with`]: crate::Gateway::handle_with
#[derive(Debug, Clone)]
pub enum Origin {
    /// An HTML page; the gateway instruments it before serving.
    Page(String),
    /// A complete non-HTML response, served as-is (assets, redirects,
    /// CGI output, upstream errors).
    Response(Response),
    /// The origin has nothing at this URL; the gateway serves a 404.
    NotFound,
}

/// The gateway's verdict-bearing answer for one request: the typed form
/// of the paper's serve / throttle / block / challenge deployment
/// decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// `Serve` dwarfs the rejection variants, but a `Decision` lives for one
// request and is moved straight to the caller — never parked in
// collections — so boxing the payload would only add an allocation to
// the hot path.
#[allow(clippy::large_enum_variant)]
pub enum Decision {
    /// Serve the response.
    Serve {
        /// The response to put on the wire (probe object, instrumented
        /// page, origin pass-through, or 404).
        response: Response,
        /// The rewritten HTML when the origin produced a page — the same
        /// bytes as `response`'s body, exposed separately so embedders
        /// can post-process without re-parsing.
        body: Option<String>,
        /// The probe manifest when a page was instrumented.
        manifest: Option<ProbeManifest>,
        /// The session's fast-path verdict after folding this exchange.
        verdict: Verdict,
        /// The session the exchange belongs to.
        key: SessionKey,
        /// Whether this request was instrumentation traffic (probe or
        /// beacon) rather than origin traffic — feeds overhead
        /// accounting.
        probe: bool,
    },
    /// Reject with 429: the session is over its rate allowance.
    Throttle,
    /// Reject with 403: the session is blocked.
    Block,
    /// Demand a CAPTCHA before serving (mandatory serving policy only).
    Challenge(Challenge),
}

impl Decision {
    /// The HTTP status this decision puts on the wire.
    pub fn status(&self) -> StatusCode {
        match self {
            Decision::Serve { response, .. } => response.status(),
            Decision::Throttle => StatusCode::TOO_MANY_REQUESTS,
            Decision::Block => StatusCode::FORBIDDEN,
            Decision::Challenge(_) => StatusCode::FORBIDDEN,
        }
    }

    /// The session verdict, when this decision carries one.
    pub fn verdict(&self) -> Option<Verdict> {
        match self {
            Decision::Serve { verdict, .. } => Some(*verdict),
            _ => None,
        }
    }

    /// Whether the request was actually served.
    pub fn is_serve(&self) -> bool {
        matches!(self, Decision::Serve { .. })
    }

    /// Converts the decision into the response to transmit. `Throttle`,
    /// `Block`, and `Challenge` produce exactly the responses the
    /// gateway accounted for internally.
    pub fn into_response(self) -> Response {
        match self {
            Decision::Serve { response, .. } => response,
            Decision::Throttle => Response::empty(StatusCode::TOO_MANY_REQUESTS),
            Decision::Block => Response::empty(StatusCode::FORBIDDEN),
            Decision::Challenge(ch) => challenge_response(&ch),
        }
    }
}

/// The interstitial served with a [`Decision::Challenge`]: a 403 carrying
/// the distorted challenge text, so robots that keep hammering keep
/// feeding the error-ratio blocking threshold.
pub(crate) fn challenge_response(challenge: &Challenge) -> Response {
    Response::builder(StatusCode::FORBIDDEN)
        .header("Content-Type", "text/html")
        .body_bytes(
            format!(
                "<html><body><p>solve to continue (id {})</p><pre>{}</pre></body></html>",
                challenge.id, challenge.distorted
            )
            .into_bytes(),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_captcha::ChallengeGenerator;

    #[test]
    fn status_mapping() {
        assert_eq!(Decision::Throttle.status(), StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(Decision::Block.status(), StatusCode::FORBIDDEN);
        let ch = ChallengeGenerator::new(1).issue();
        assert_eq!(Decision::Challenge(ch).status(), StatusCode::FORBIDDEN);
    }

    #[test]
    fn into_response_matches_status() {
        assert_eq!(
            Decision::Throttle.into_response().status(),
            StatusCode::TOO_MANY_REQUESTS
        );
        assert_eq!(
            Decision::Block.into_response().status(),
            StatusCode::FORBIDDEN
        );
        let ch = ChallengeGenerator::new(2).issue();
        let resp = Decision::Challenge(ch.clone()).into_response();
        assert_eq!(resp.status(), StatusCode::FORBIDDEN);
        let body = String::from_utf8_lossy(resp.body()).into_owned();
        assert!(body.contains(&ch.distorted));
    }

    #[test]
    fn challenge_decisions_carry_no_verdict() {
        let ch = ChallengeGenerator::new(3).issue();
        assert_eq!(Decision::Challenge(ch).verdict(), None);
        assert!(!Decision::Block.is_serve());
    }
}
