//! One front door for robot detection: the [`Gateway`] request-decision
//! API.
//!
//! The paper deploys its detector as a single in-line component that sees
//! every exchange and decides serve / throttle / block / challenge
//! "on-line at data request rates". This crate packages that composition
//! — instrumentation, sessionized detection, policy enforcement, and
//! CAPTCHA serving — behind one entry point so embedders never hand-wire
//! `Instrumenter` → `Detector` → `PolicyEngine` → `CaptchaService`
//! themselves:
//!
//! * [`Gateway::handle`] / [`Gateway::handle_with`] take a request and
//!   return a typed [`Decision`]: `Serve` (with the rewritten HTML when
//!   the origin produced a page), `Throttle`, `Block`, or
//!   `Challenge`.
//! * [`Gateway::sweep`] / [`Gateway::drain`] flush idle / all sessions,
//!   applying the batch set-algebra classification and returning
//!   [`CompletedSession`]s.
//! * [`Gateway::stats`] snapshots a [`GatewayStats`].
//!
//! Build one with [`Gateway::builder`]; the builder takes the
//! instrumentation, detector, policy, and CAPTCHA-serving configuration
//! plus an optional [`BoundaryClassifier`] that slots the §4.1 staged
//! pipeline's machine-learning stage into session finalization.
//!
//! # Examples
//!
//! ```
//! use botwall_gateway::{Decision, Gateway, Origin};
//! use botwall_http::request::ClientIp;
//! use botwall_http::{Method, Request};
//! use botwall_sessions::SimTime;
//!
//! let mut gw = Gateway::builder().seed(7).build();
//! let req = Request::builder(Method::Get, "http://site.example/index.html")
//!     .header("User-Agent", "Mozilla/5.0 Firefox/1.5")
//!     .client(ClientIp::new(1))
//!     .build()
//!     .unwrap();
//! let html = "<html><head></head><body></body></html>";
//! let decision = gw.handle_with(&req, SimTime::ZERO, |_| Origin::Page(html.into()));
//! match decision {
//!     Decision::Serve { body, manifest, .. } => {
//!         assert!(body.unwrap().contains("onmousemove"));
//!         assert!(manifest.unwrap().css_probe.is_some());
//!     }
//!     other => panic!("expected Serve, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod decision;
pub mod gateway;

pub use botwall_core::{BoundaryClassifier, CompletedSession};
pub use config::{GatewayBuilder, GatewayConfig};
pub use decision::{Decision, Origin};
pub use gateway::{Gateway, GatewayStats, PageStream, PendingOrigin, PendingServe, StreamedServe};
