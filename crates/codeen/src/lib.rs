//! Open-proxy network simulation for `botwall` — the CoDeeN stand-in.
//!
//! The paper's evaluation substrate is CoDeeN, an open-proxy CDN on 400+
//! PlanetLab nodes handling 20M+ requests/day. This crate reproduces the
//! pieces of it that the experiments depend on:
//!
//! * [`node`] — a proxy node with the full request path: instrumentation
//!   (page rewriting + probe serving), detection, and §3.2 policy
//!   enforcement, fetching origin content from the `botwall-webgraph`
//!   substrate.
//! * [`network`] — many nodes, client/session scheduling, merged
//!   accounting; [`network::Network::run`] executes a whole experiment.
//! * [`abuse`] — the delivered-abuse → complaint model.
//! * [`timeline`] — the 2005 deployment-schedule replay behind Figure 3.
//! * [`metrics`] — bandwidth/overhead ledgers (the 0.3% claim).
//!
//! # Examples
//!
//! ```
//! use botwall_agents::Population;
//! use botwall_codeen::network::{Network, NetworkConfig};
//! use botwall_webgraph::WebConfig;
//!
//! let config = NetworkConfig {
//!     nodes: 2,
//!     sessions: 10,
//!     web: WebConfig::small(),
//!     ..NetworkConfig::default()
//! };
//! let report = Network::run(&config, &Population::demo(), 42);
//! assert_eq!(report.summaries.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abuse;
pub mod metrics;
pub mod network;
pub mod node;
pub mod timeline;

pub use abuse::{complaints_for, ComplaintConfig, ComplaintTally};
pub use metrics::{BandwidthLedger, NodeStats};
pub use network::{Network, NetworkConfig, RunReport, SessionSummary};
pub use node::{Deployment, NodeSession, ProxyNode};
pub use timeline::{replay, MonthRow, TimelineConfig};
