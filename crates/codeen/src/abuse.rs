//! The complaint model behind Figure 3.
//!
//! CoDeeN's operators fielded complaints from origin sites when abuse got
//! through the proxy: referrer spam in logs, click fraud, vulnerability
//! probes, password attempts. We model each *delivered* abusive request
//! as drawing a complaint with a small probability, so complaint volume
//! tracks delivered abuse — which is exactly the causal chain the paper's
//! Figure 3 demonstrates (complaints collapse ~10× once classification +
//! rate limiting cut delivery).

use crate::network::SessionSummary;
use botwall_agents::AgentKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Complaint-model tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplaintConfig {
    /// Probability each delivered abusive request *beyond the noise
    /// floor* draws a complaint.
    pub per_request_probability: f64,
    /// Origins do not notice (or bother reporting) abuse below this many
    /// delivered requests per session — which is why aggressive rate
    /// limiting kills complaints even though a classified robot still
    /// gets a trickle through.
    pub min_delivered: u64,
    /// Monthly background of complaints traced to humans (mistaken
    /// reports, disputes) regardless of robot traffic.
    pub human_background_per_month: f64,
}

impl Default for ComplaintConfig {
    fn default() -> Self {
        ComplaintConfig {
            per_request_probability: 0.01,
            min_delivered: 15,
            human_background_per_month: 0.7,
        }
    }
}

/// Complaints attributed per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComplaintTally {
    /// Complaints caused by robot traffic.
    pub robot: u32,
    /// Complaints traced back to human activity.
    pub human: u32,
}

impl ComplaintTally {
    /// Total complaints.
    pub fn total(&self) -> u32 {
        self.robot + self.human
    }
}

/// Draws complaints for a batch of sessions (e.g. one simulated month).
pub fn complaints_for<R: Rng>(
    summaries: &[SessionSummary],
    config: &ComplaintConfig,
    rng: &mut R,
) -> ComplaintTally {
    let mut tally = ComplaintTally::default();
    for s in summaries {
        let delivered = s.abusive_delivered();
        let excess = delivered.saturating_sub(config.min_delivered);
        if excess == 0 {
            continue;
        }
        // P(at least one complaint) = 1 - (1-p)^excess.
        let p = 1.0 - (1.0 - config.per_request_probability).powi(excess as i32);
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            tally.robot += 1;
        }
    }
    // Human background: Bernoulli draws approximating a small Poisson.
    let lambda = config.human_background_per_month;
    let whole = lambda.floor() as u32;
    tally.human += whole;
    if rng.gen_bool((lambda - whole as f64).clamp(0.0, 1.0)) {
        tally.human += 1;
    }
    tally
}

/// Convenience: which kinds produce complaints at all.
pub fn complaint_capable(kind: AgentKind) -> bool {
    kind.generates_abuse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_http::request::ClientIp;
    use botwall_sessions::SessionKey;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn summary(kind: AgentKind, allowed: u64) -> SessionSummary {
        SessionSummary {
            node: 0,
            key: SessionKey::new(ClientIp::new(1), "x"),
            kind,
            requests: allowed,
            allowed,
            throttled: 0,
            blocked: 0,
            captcha_passed: false,
        }
    }

    #[test]
    fn no_abuse_no_robot_complaints() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sessions = vec![
            summary(AgentKind::Human(botwall_http::BrowserFamily::Firefox), 100),
            summary(AgentKind::PoliteSpider, 100),
        ];
        let cfg = ComplaintConfig {
            human_background_per_month: 0.0,
            ..ComplaintConfig::default()
        };
        let t = complaints_for(&sessions, &cfg, &mut rng);
        assert_eq!(t.robot, 0);
    }

    #[test]
    fn delivered_abuse_draws_complaints() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sessions: Vec<_> = (0..200)
            .map(|_| summary(AgentKind::ReferrerSpammer, 25))
            .collect();
        let cfg = ComplaintConfig {
            per_request_probability: 0.01,
            min_delivered: 15,
            human_background_per_month: 0.0,
        };
        let t = complaints_for(&sessions, &cfg, &mut rng);
        // Excess 10 per session → P ≈ 1-(0.99)^10 ≈ 0.096 → ≈19 of 200.
        assert!(t.robot > 8 && t.robot < 35, "robot complaints {}", t.robot);
    }

    #[test]
    fn squelched_abuse_draws_fewer_complaints() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = ComplaintConfig {
            human_background_per_month: 0.0,
            ..ComplaintConfig::default()
        };
        let loud: Vec<_> = (0..300)
            .map(|_| summary(AgentKind::ClickFraud, 30))
            .collect();
        let quiet: Vec<_> = (0..300)
            .map(|_| summary(AgentKind::ClickFraud, 12))
            .collect();
        let loud_t = complaints_for(&loud, &cfg, &mut rng);
        let quiet_t = complaints_for(&quiet, &cfg, &mut rng);
        assert!(
            quiet_t.robot * 3 < loud_t.robot,
            "rate limiting cuts complaints: {} vs {}",
            quiet_t.robot,
            loud_t.robot
        );
    }

    #[test]
    fn human_background_is_small_but_present() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cfg = ComplaintConfig {
            per_request_probability: 0.0,
            human_background_per_month: 1.4,
            ..ComplaintConfig::default()
        };
        let t = complaints_for(&[], &cfg, &mut rng);
        assert!(t.human == 1 || t.human == 2);
    }

    #[test]
    fn capability_mirrors_kind() {
        assert!(complaint_capable(AgentKind::VulnScanner));
        assert!(!complaint_capable(AgentKind::OfflineBrowser));
    }
}
