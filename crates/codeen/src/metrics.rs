//! Bandwidth and outcome accounting.

use serde::{Deserialize, Serialize};

/// Byte-level accounting for the §3.2 overhead claim (probe traffic was
/// 0.3% of CoDeeN's total bandwidth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthLedger {
    /// Total bytes moved (requests + responses).
    pub total_bytes: u64,
    /// Bytes attributable to instrumentation: HTML inflation, generated
    /// scripts, probe object bodies.
    pub instrumentation_bytes: u64,
}

impl BandwidthLedger {
    /// Adds ordinary traffic.
    pub fn add_traffic(&mut self, bytes: u64) {
        self.total_bytes += bytes;
    }

    /// Adds instrumentation overhead (also counted in the total).
    pub fn add_overhead(&mut self, bytes: u64) {
        self.total_bytes += bytes;
        self.instrumentation_bytes += bytes;
    }

    /// Overhead share of total traffic, in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.instrumentation_bytes as f64 * 100.0 / self.total_bytes as f64
        }
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &BandwidthLedger) {
        self.total_bytes += other.total_bytes;
        self.instrumentation_bytes += other.instrumentation_bytes;
    }
}

/// Per-node request outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Requests served normally.
    pub allowed: u64,
    /// Requests rejected by rate limiting (429).
    pub throttled: u64,
    /// Requests rejected because the session was blocked (403).
    pub blocked: u64,
    /// Sessions completed on this node.
    pub sessions: u64,
}

impl NodeStats {
    /// Total requests seen.
    pub fn total(&self) -> u64 {
        self.allowed + self.throttled + self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_percentages() {
        let mut l = BandwidthLedger::default();
        l.add_traffic(9_970);
        l.add_overhead(30);
        assert_eq!(l.total_bytes, 10_000);
        assert!((l.overhead_pct() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_zero_pct() {
        assert_eq!(BandwidthLedger::default().overhead_pct(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = BandwidthLedger {
            total_bytes: 100,
            instrumentation_bytes: 10,
        };
        let b = BandwidthLedger {
            total_bytes: 50,
            instrumentation_bytes: 5,
        };
        a.merge(&b);
        assert_eq!(a.total_bytes, 150);
        assert_eq!(a.instrumentation_bytes, 15);
    }

    #[test]
    fn node_stats_total() {
        let s = NodeStats {
            allowed: 5,
            throttled: 3,
            blocked: 2,
            sessions: 1,
        };
        assert_eq!(s.total(), 10);
    }
}
