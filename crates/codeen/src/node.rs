//! A single proxy node: instrumentation, detection, and policy in the
//! request path.
//!
//! CoDeeN nodes sit between clients and origin servers; our node does the
//! same — it resolves origin content from the [`Web`] substrate, rewrites
//! HTML through the [`Instrumenter`], recognizes probe traffic, feeds the
//! [`Detector`], and consults the [`PolicyEngine`] before serving.

use crate::metrics::{BandwidthLedger, NodeStats};
use botwall_agents::world::{ClientWorld, FetchOutcome, FetchSpec, PageView};
use botwall_captcha::{CaptchaService, Challenge, ServingPolicy};
use botwall_core::{
    Action, CompletedSession, Detector, DetectorConfig, PolicyConfig, PolicyEngine,
};
use botwall_http::request::ClientIp;
use botwall_http::{Method, Request, Response, StatusCode, Uri};
use botwall_instrument::{Classified, InstrumentConfig, Instrumenter};
use botwall_sessions::{SessionKey, SimTime};
use botwall_webgraph::{render, Web};
use std::sync::Arc;

/// Which detection features a node has deployed (drives the Figure-3
/// timeline: browser test arrived late August 2005, mouse detection
/// January 2006).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deployment {
    /// CSS probe + hidden link + JS-file tracking (standard browser test).
    pub browser_test: bool,
    /// Mouse-event beacons (human activity detection).
    pub mouse_detection: bool,
    /// Rate limiting + behavioural blocking of robot sessions.
    pub enforcement: bool,
    /// Optional CAPTCHA offers.
    pub captcha: bool,
}

impl Deployment {
    /// Nothing deployed (the pre-August-2005 state).
    pub fn none() -> Deployment {
        Deployment {
            browser_test: false,
            mouse_detection: false,
            enforcement: false,
            captcha: false,
        }
    }

    /// Browser test + enforcement (the late-August-2005 state).
    pub fn browser_test_only() -> Deployment {
        Deployment {
            browser_test: true,
            mouse_detection: false,
            enforcement: true,
            captcha: false,
        }
    }

    /// Everything (the January-2006 state, as measured in Table 1).
    pub fn full() -> Deployment {
        Deployment {
            browser_test: true,
            mouse_detection: true,
            enforcement: true,
            captcha: true,
        }
    }
}

/// One proxy node.
#[derive(Debug)]
pub struct ProxyNode {
    id: u32,
    web: Arc<Web>,
    instrumenter: Instrumenter,
    detector: Detector,
    policy: PolicyEngine,
    captcha: CaptchaService,
    deployment: Deployment,
    stats: NodeStats,
    bandwidth: BandwidthLedger,
}

impl ProxyNode {
    /// Creates a node over the shared web substrate.
    pub fn new(id: u32, web: Arc<Web>, deployment: Deployment, seed: u64) -> ProxyNode {
        let instrument_config = InstrumentConfig {
            css_probe: deployment.browser_test,
            hidden_link: deployment.browser_test,
            mouse_beacon: deployment.mouse_detection,
            ..InstrumentConfig::default()
        };
        ProxyNode {
            id,
            web,
            instrumenter: Instrumenter::new(instrument_config, seed),
            detector: Detector::new(DetectorConfig::default()),
            policy: PolicyEngine::new(PolicyConfig::default()),
            captcha: CaptchaService::new(
                if deployment.captcha {
                    ServingPolicy::OptionalWithIncentive
                } else {
                    ServingPolicy::Disabled
                },
                seed ^ 0x0c47_c4a0,
            ),
            deployment,
            stats: NodeStats::default(),
            bandwidth: BandwidthLedger::default(),
        }
    }

    /// The node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Node statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Bandwidth ledger.
    pub fn bandwidth(&self) -> BandwidthLedger {
        self.bandwidth
    }

    /// The deployment state.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Immutable access to the detector (verdicts, evidence).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Marks a CAPTCHA pass for a session.
    pub fn record_captcha_pass(&mut self, key: &SessionKey, now: SimTime) {
        self.detector.record_captcha_pass(key, now);
    }

    /// Expires idle sessions.
    pub fn sweep(&mut self, now: SimTime) -> Vec<CompletedSession> {
        self.instrumenter.sweep(now);
        self.detector.sweep(now)
    }

    /// Finalizes everything at the end of an experiment.
    pub fn drain(&mut self) -> Vec<CompletedSession> {
        self.detector.drain()
    }

    /// Serves one request end to end. This is the request path of §2:
    /// classify against instrumentation, let the detector observe, apply
    /// policy, and produce the response (origin content, probe body, or a
    /// policy error).
    pub fn serve(&mut self, request: &Request, now: SimTime) -> (Response, Option<PageViewParts>) {
        let classified = self.instrumenter.classify(request, now);
        let key = SessionKey::of(request);
        // Policy gate first (using the verdict as of the previous request:
        // the node decides before doing origin work).
        let action = if self.deployment.enforcement {
            let verdict = self.detector.verdict(&key);
            let (counters, rate) = self
                .detector
                .tracker()
                .get(&key)
                .map(|s| (s.counters().clone(), s.request_rate()))
                .unwrap_or_default();
            self.policy.decide(&key, verdict, &counters, rate, now)
        } else {
            Action::Allow
        };
        let (response, parts) = match action {
            Action::Block => {
                self.stats.blocked += 1;
                (Response::empty(StatusCode::FORBIDDEN), None)
            }
            Action::Throttle => {
                self.stats.throttled += 1;
                (Response::empty(StatusCode::TOO_MANY_REQUESTS), None)
            }
            Action::Allow => {
                self.stats.allowed += 1;
                self.respond(request, &classified, now)
            }
        };
        // The detector observes everything, including rejected requests —
        // error responses feed the behavioural thresholds.
        self.detector.observe(request, &response, &classified, now);
        let bytes = (request.wire_len() + response.wire_len()) as u64;
        match &classified {
            Classified::Ordinary => self.bandwidth.add_traffic(bytes),
            _ => self.bandwidth.add_overhead(bytes),
        }
        (response, parts)
    }

    /// Produces the content response for an allowed request.
    fn respond(
        &mut self,
        request: &Request,
        classified: &Classified,
        now: SimTime,
    ) -> (Response, Option<PageViewParts>) {
        if let Some(resp) = self.instrumenter.respond(classified) {
            return (resp, None);
        }
        let uri = request.uri();
        let web = Arc::clone(&self.web);
        let Some(site) = web.site_for(uri) else {
            return (Response::empty(StatusCode::BAD_GATEWAY), None);
        };
        let path = uri.path().to_string();
        if path.eq_ignore_ascii_case("/favicon.ico") {
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "image/x-icon")
                .body_bytes(vec![0u8; 318])
                .build();
            return (resp, None);
        }
        if path.eq_ignore_ascii_case("/robots.txt") {
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "text/plain")
                .body_bytes(b"User-agent: *\nDisallow: /cgi-bin/\n".to_vec())
                .build();
            return (resp, None);
        }
        if let Some(page) = site.page_by_path(&path) {
            // Redirect stubs answer 302 (the RESPCODE 3XX % signal).
            if let Some(target) = page.redirect_to {
                if let Some(t) = site.page(target) {
                    let resp = Response::builder(StatusCode::FOUND)
                        .header("Location", format!("http://{}{}", site.host(), t.path))
                        .build();
                    return (resp, None);
                }
            }
            let host = site.host().to_string();
            let raw = render::render_page(site, page);
            let (html, manifest) =
                self.instrumenter
                    .instrument_page(&raw, uri, request.client(), now);
            // The page's wire bytes are tallied by `serve`; only move the
            // injected share into the instrumentation column here.
            self.bandwidth.instrumentation_bytes += manifest.html_overhead as u64;
            let links = page
                .links
                .iter()
                .filter_map(|id| site.page(*id))
                .map(|p| Uri::absolute(&host, p.path.clone()))
                .collect();
            let embedded = page
                .assets
                .iter()
                .map(|a| Uri::absolute(&host, a.path.clone()))
                .collect();
            let cgi = page
                .cgi_endpoint
                .as_ref()
                .map(|c| Uri::absolute(&host, c.clone()));
            let mut resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "text/html")
                .body_bytes(html.clone().into_bytes())
                .build();
            Instrumenter::mark_uncacheable(&mut resp);
            return (
                resp,
                Some(PageViewParts {
                    links,
                    embedded,
                    cgi,
                    manifest: Some(manifest),
                    html,
                }),
            );
        }
        if let Some((_, body)) = render::render_asset(site, &path) {
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "application/octet-stream")
                .body_bytes(body)
                .build();
            return (resp, None);
        }
        // A known CGI endpoint answers; unknown dynamic paths 404.
        let is_known_cgi = site
            .pages()
            .filter_map(|p| p.cgi_endpoint.as_deref())
            .any(|c| path.starts_with(c));
        if is_known_cgi {
            let resp = Response::builder(StatusCode::OK)
                .header("Content-Type", "text/html")
                .body_bytes(b"<html><body>ok</body></html>".to_vec())
                .build();
            return (resp, None);
        }
        (Response::empty(StatusCode::NOT_FOUND), None)
    }

    /// Offers a CAPTCHA if the deployment serves them.
    pub fn offer_captcha(&mut self) -> Option<Challenge> {
        if !self.captcha.should_offer() {
            return None;
        }
        Some(self.captcha.issue())
    }

    /// Verifies a CAPTCHA answer; on success the session is marked
    /// ground-truth human.
    pub fn answer_captcha(
        &mut self,
        key: &SessionKey,
        id: u64,
        answer: &str,
        now: SimTime,
    ) -> bool {
        let ok = self.captcha.verify(id, answer);
        if ok {
            self.detector.record_captcha_pass(key, now);
        }
        ok
    }

    /// Notes that a session finished (stats bookkeeping).
    pub fn finish_session(&mut self) {
        self.stats.sessions += 1;
    }
}

/// The pieces a [`NodeSession`] needs to build a
/// [`botwall_agents::world::PageView`].
#[derive(Debug, Clone)]
pub struct PageViewParts {
    /// Visible links.
    pub links: Vec<Uri>,
    /// Origin embedded objects.
    pub embedded: Vec<Uri>,
    /// CGI endpoint.
    pub cgi: Option<Uri>,
    /// Instrumentation manifest.
    pub manifest: Option<botwall_instrument::ProbeManifest>,
    /// Raw HTML as served.
    pub html: String,
}

/// A per-session [`ClientWorld`] binding an agent to a node.
#[derive(Debug)]
pub struct NodeSession<'a> {
    node: &'a mut ProxyNode,
    ip: ClientIp,
    user_agent: String,
    entry: Uri,
    now: SimTime,
    captcha_offered: bool,
    /// Requests the policy allowed.
    pub allowed: u64,
    /// Requests throttled.
    pub throttled: u64,
    /// Requests blocked.
    pub blocked: u64,
    /// Total requests issued.
    pub requests: u64,
    /// Whether a CAPTCHA was passed.
    pub captcha_passed: bool,
}

impl<'a> NodeSession<'a> {
    /// Binds a session for `ip`/`user_agent` starting at `start`.
    pub fn new(
        node: &'a mut ProxyNode,
        ip: ClientIp,
        user_agent: String,
        entry: Uri,
        start: SimTime,
    ) -> NodeSession<'a> {
        NodeSession {
            node,
            ip,
            user_agent,
            entry,
            now: start,
            captcha_offered: false,
            allowed: 0,
            throttled: 0,
            blocked: 0,
            requests: 0,
            captcha_passed: false,
        }
    }

    /// The session key this world produces.
    pub fn key(&self) -> SessionKey {
        SessionKey::new(self.ip, self.user_agent.clone())
    }

    /// The session's current clock.
    pub fn clock(&self) -> SimTime {
        self.now
    }
}

impl ClientWorld for NodeSession<'_> {
    fn fetch(&mut self, spec: FetchSpec) -> FetchOutcome {
        self.now += 40; // Network round trip.
        self.requests += 1;
        let mut b = Request::builder(spec.method.clone(), spec.uri.to_string())
            .header("User-Agent", self.user_agent.clone())
            .client(self.ip);
        if let Some(r) = &spec.referer {
            b = b.header("Referer", r.clone());
        }
        if spec.method == Method::Post && !spec.body.is_empty() {
            b = b.body_bytes(spec.body.clone());
        }
        let Ok(request) = b.build() else {
            return FetchOutcome::default();
        };
        let (response, parts) = self.node.serve(&request, self.now);
        match response.status() {
            StatusCode::TOO_MANY_REQUESTS => self.throttled += 1,
            StatusCode::FORBIDDEN => self.blocked += 1,
            _ => self.allowed += 1,
        }
        FetchOutcome {
            status: response.status(),
            body_len: response.body().len(),
            page: parts.map(|p| PageView {
                links: p.links,
                embedded: p.embedded,
                cgi: p.cgi,
                manifest: p.manifest,
                html: p.html,
            }),
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn sleep(&mut self, ms: u64) {
        self.now += ms;
    }

    fn client_ip(&self) -> ClientIp {
        self.ip
    }

    fn entry_point(&self) -> Uri {
        self.entry.clone()
    }

    fn offer_captcha(&mut self) -> Option<Challenge> {
        if self.captcha_offered {
            return None;
        }
        self.captcha_offered = true;
        self.node.offer_captcha()
    }

    fn answer_captcha(&mut self, id: u64, answer: &str) -> bool {
        let key = self.key();
        let ok = self.node.answer_captcha(&key, id, answer, self.now);
        if ok {
            self.captcha_passed = true;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botwall_webgraph::WebConfig;

    fn node(deployment: Deployment) -> ProxyNode {
        let web = Arc::new(Web::generate(&WebConfig::small(), 5));
        ProxyNode::new(0, web, deployment, 42)
    }

    fn entry(node: &ProxyNode) -> Uri {
        let host = node.web.sites().next().unwrap().host().to_string();
        Uri::absolute(&host, "/index.html")
    }

    #[test]
    fn serves_instrumented_pages_under_full_deployment() {
        let mut n = node(Deployment::full());
        let e = entry(&n);
        let mut s = NodeSession::new(
            &mut n,
            ClientIp::new(1),
            "ua".into(),
            e.clone(),
            SimTime::ZERO,
        );
        let out = s.fetch(FetchSpec::get(e));
        assert_eq!(out.status, StatusCode::OK);
        let view = out.page.expect("page");
        let m = view.manifest.expect("manifest");
        assert!(m.css_probe.is_some());
        assert!(m.mouse_beacon.is_some());
    }

    #[test]
    fn browser_test_only_has_no_mouse_beacon() {
        let mut n = node(Deployment::browser_test_only());
        let e = entry(&n);
        let mut s = NodeSession::new(
            &mut n,
            ClientIp::new(1),
            "ua".into(),
            e.clone(),
            SimTime::ZERO,
        );
        let view = s.fetch(FetchSpec::get(e)).page.expect("page");
        let m = view.manifest.expect("manifest");
        assert!(m.css_probe.is_some());
        assert!(m.mouse_beacon.is_none(), "mouse detection not deployed");
    }

    #[test]
    fn no_deployment_serves_untouched_pages() {
        let mut n = node(Deployment::none());
        let e = entry(&n);
        let mut s = NodeSession::new(
            &mut n,
            ClientIp::new(1),
            "ua".into(),
            e.clone(),
            SimTime::ZERO,
        );
        let view = s.fetch(FetchSpec::get(e)).page.expect("page");
        let m = view.manifest.expect("manifest always present");
        assert!(m.css_probe.is_none());
        assert!(m.mouse_beacon.is_none());
        assert!(m.hidden_link.is_none());
    }

    #[test]
    fn unknown_host_is_bad_gateway() {
        let mut n = node(Deployment::full());
        let e = entry(&n);
        let mut s = NodeSession::new(&mut n, ClientIp::new(1), "ua".into(), e, SimTime::ZERO);
        let uri: Uri = "http://unknown.example/".parse().unwrap();
        let out = s.fetch(FetchSpec::get(uri));
        assert_eq!(out.status, StatusCode::BAD_GATEWAY);
    }

    #[test]
    fn vuln_paths_404_and_eventually_block() {
        let mut n = node(Deployment::full());
        let e = entry(&n);
        let host = e.host().unwrap().to_string();
        let mut s = NodeSession::new(&mut n, ClientIp::new(9), "scanner".into(), e, SimTime::ZERO);
        let mut saw_block = false;
        for i in 0..60 {
            let uri = Uri::absolute(&host, format!("/exploit_{i}.php"));
            let out = s.fetch(FetchSpec::get(uri));
            s.sleep(20);
            if out.status == StatusCode::FORBIDDEN {
                saw_block = true;
                break;
            }
        }
        assert!(saw_block, "an error storm must trip the blocking threshold");
    }

    #[test]
    fn redirect_pages_answer_302() {
        let mut n = node(Deployment::full());
        let web = n.web.clone();
        let site = web.sites().next().unwrap();
        let Some(stub) = site.pages().find(|p| p.redirect_to.is_some()) else {
            return; // This seed generated no redirect stubs; fine.
        };
        let uri = Uri::absolute(site.host(), stub.path.clone());
        let e = entry(&n);
        let mut s = NodeSession::new(&mut n, ClientIp::new(2), "ua".into(), e, SimTime::ZERO);
        let out = s.fetch(FetchSpec::get(uri));
        assert_eq!(out.status, StatusCode::FOUND);
    }

    #[test]
    fn bandwidth_ledger_tracks_overhead() {
        let mut n = node(Deployment::full());
        let e = entry(&n);
        let mut s = NodeSession::new(
            &mut n,
            ClientIp::new(1),
            "ua".into(),
            e.clone(),
            SimTime::ZERO,
        );
        let view = s.fetch(FetchSpec::get(e)).page.unwrap();
        let css = view.manifest.unwrap().css_probe.unwrap();
        s.fetch(FetchSpec::get(css));
        let bw = n.bandwidth();
        assert!(bw.total_bytes > 0);
        assert!(bw.instrumentation_bytes > 0);
        assert!(bw.instrumentation_bytes < bw.total_bytes);
    }
}
